"""Durable-state logging and recovery for M2Paxos.

What must survive a crash is exactly the acceptor-side promise/vote
state plus the decision log -- everything :meth:`M2Paxos.on_restart`
declares durable.  Three record types cover it:

- ``REC_ACCEPT``: the arguments of one absorbed (non-refused) Accept;
  replay re-runs :meth:`AcceptorMixin._absorb_accept` verbatim.
- ``REC_PROMISE``: the object-level promises and per-instance ``rnd``
  values one Prepare reply committed to; replay max-merges them
  (idempotent, so duplicated log tails are harmless).
- ``REC_DECIDE``: one newly learnt decision; replaying decisions in log
  order re-runs the delivery engine's pump, which rebuilds the
  delivered sequence byte-identically -- the property the chaos
  checker's cross-incarnation prefix check asserts.

Records are logged *inside* the handler (buffered by the storage) and
made durable by the env's end-of-event commit before the handler's
acks/deliveries are released: persist-before-ack without any I/O in
protocol code.  With :class:`~repro.consensus.base.NullStorage` bound
(``durable == False``) every ``_log_*`` call is a cheap no-op and the
protocol behaves exactly as before this layer existed.

Snapshots serialise the full durable state (object states, instance
states, the C-struct) with the binary wire codec; recovery restores the
snapshot, then replays the log tail, then continues as a normal durable
restart.
"""

from __future__ import annotations

from typing import Optional

from repro.core.messages import Accept, Instance
from repro.runtime.codec import decode_value_binary, encode_value_binary

REC_ACCEPT = 1
REC_PROMISE = 2
REC_DECIDE = 3


class DurabilityMixin:
    """Write-ahead logging + snapshot/restore for M2Paxos."""

    # True while recovery replays records: suppresses re-logging.
    _replaying = False

    # ------------------------------------------------------------------
    # Logging (called from the acceptor's handlers)
    # ------------------------------------------------------------------

    def _log_accept(self, sender: int, msg: Accept, ins_of: dict) -> None:
        storage = self.env.storage
        if not storage.durable or self._replaying:
            return
        storage.append(
            REC_ACCEPT,
            encode_value_binary(
                (sender, bool(msg.scoped), msg.eps, msg.to_decide, ins_of)
            ),
        )

    def _log_promise(self, objs: dict, insts: dict) -> None:
        storage = self.env.storage
        if not storage.durable or self._replaying:
            return
        storage.append(REC_PROMISE, encode_value_binary((objs, insts)))

    def _log_decide(self, inst: Instance, command) -> None:
        storage = self.env.storage
        if not storage.durable or self._replaying:
            return
        storage.append(REC_DECIDE, encode_value_binary((inst, command)))

    # ------------------------------------------------------------------
    # Recovery replay
    # ------------------------------------------------------------------

    def apply_log_record(self, rtype: int, payload: bytes) -> None:
        value = decode_value_binary(payload)
        self._replaying = True
        try:
            if rtype == REC_ACCEPT:
                sender, scoped, eps, to_decide, ins_of = value
                self._absorb_accept(sender, scoped, eps, to_decide, ins_of)
            elif rtype == REC_PROMISE:
                objs, insts = value
                self._absorb_promise(objs, insts)
            elif rtype == REC_DECIDE:
                inst, command = value
                self._decide(inst, command)
            # Unknown record types from a newer build are skipped.
        finally:
            self._replaying = False
        # Keep round identifiers clear of anything the dead incarnation
        # may still have in flight (strictly safer than an amnesia
        # restart, which resets the counter to zero).
        self._req_counter += 1

    def _absorb_promise(self, objs: dict, insts: dict) -> None:
        """Max-merge logged promises (replay-only; the live handlers
        interleave this state with reply construction)."""
        for l, (promised, epoch) in objs.items():
            obj = self.state.obj(l)
            obj.promised = max(obj.promised, promised)
            obj.epoch = max(obj.epoch, epoch)
            self.state.gap_candidates.add(l)
        for inst, rnd in insts.items():
            inst_state = self.state.inst(inst)
            inst_state.rnd = max(inst_state.rnd, rnd)
            self.state.obj(inst[0]).observe_position(inst[1])

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot_payload(self) -> Optional[bytes]:
        objects = {
            l: (
                obj.epoch,
                obj.promised,
                obj.owner,
                obj.owner_epoch,
                obj.appended,
                obj.next_slot,
                obj.decided,
            )
            for l, obj in self.state.objects.items()
        }
        instances = {
            inst: (state.rnd, state.rdec, state.vdec, tuple(state.vdec_ins))
            for inst, state in self.state.instances.items()
        }
        return encode_value_binary(
            {
                "objects": objects,
                "instances": instances,
                "cstruct": tuple(self.delivery.cstruct),
                "req": self._req_counter,
                "noop": self._noop_counter,
            }
        )

    def restore_snapshot(self, payload: bytes) -> None:
        value = decode_value_binary(payload)
        now = self.env.now()
        for l, fields in value["objects"].items():
            epoch, promised, owner, owner_epoch, appended, next_slot, decided = fields
            obj = self.state.obj(l)
            obj.epoch = epoch
            obj.promised = promised
            obj.owner = owner
            obj.owner_epoch = owner_epoch
            obj.appended = appended
            obj.next_slot = next_slot
            obj.decided = dict(decided)
            obj.last_progress = now  # no instant gap-recovery storm
            self.state.gap_candidates.add(l)
        for inst, (rnd, rdec, vdec, vdec_ins) in value["instances"].items():
            inst_state = self.state.inst(inst)  # registers active position
            inst_state.rnd = rnd
            inst_state.rdec = rdec
            inst_state.vdec = vdec
            inst_state.vdec_ins = tuple(vdec_ins)
        # The snapshot's object states already hold the final ``appended``
        # pointers, so the C-struct is re-seated without re-pumping; the
        # env re-delivers each command so the application log is rebuilt
        # in the original order.  The serving tier's read frontiers and
        # session dedup table are pure functions of this sequence, so
        # re-walking it rebuilds both exactly as the dead incarnation
        # had them -- truncation-safe with no extra snapshot payload
        # (the log tail after the snapshot replays through the ordinary
        # append path, which maintains the same state).
        self._replaying = True
        try:
            for command in value["cstruct"]:
                self.delivery.restore_append(command)
                if not command.noop:
                    for l in command.ls:
                        self.state.obj(l).reads_frontier += 1
                    if command.session is not None:
                        self._session_record(command)
                    self.env.deliver(command)
        finally:
            self._replaying = False
        self._req_counter = value["req"]
        self._noop_counter = value["noop"]
