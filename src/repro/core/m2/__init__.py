"""M2Paxos protocol state machine (Algorithms 1-4 of the paper).

The decision paths, in the paper's terms:

- **Fast path** (Section IV-A, Algorithm 1 lines 5-10): the proposer
  owns every object in ``c.LS`` -> one ``Accept`` broadcast + a classic
  quorum of ``AckAccept`` = decided in two communication delays.
- **Forward path** (Section IV-B, lines 11-15): a single other node
  owns all the objects -> forward, total three delays.
- **Acquisition path** (Section IV-C, Algorithm 4): no single owner ->
  per-object Paxos prepare with bumped epochs, then the accept phase,
  honouring any command *forced* by the prepare replies.

The implementation is split along those roles:

- :mod:`repro.core.m2.config` -- tunables and shared round records;
- :mod:`repro.core.m2.proposer` -- coordination + accept phases
  (Algorithms 1-2, coordinator side);
- :mod:`repro.core.m2.acceptor` -- voting, promises, learning and
  delivery (Algorithms 2-3, passive side);
- :mod:`repro.core.m2.ownership` -- acquisition rounds and SELECT
  (Algorithm 4);
- :mod:`repro.core.m2.recovery` -- gap checking and forced-command
  recovery.

:class:`M2Paxos` composes the mixins over :class:`Protocol`; message
routing uses the dispatch table built from the mixins' ``@handles``
registrations.  Deviations and hardenings beyond the pseudocode are
catalogued with rationale in DESIGN.md ("Protocol-hardening
decisions"); each mixin keeps the relevant commentary inline.
"""

from __future__ import annotations

from typing import Optional

from repro.consensus.base import Protocol, ProtocolCosts
from repro.core.delivery import DeliveryEngine
from repro.core.messages import Accept, Decide
from repro.core.policy import OnDemandPolicy, OwnershipPolicy
from repro.core.quorum import MajorityQuorums, QuorumSystem
from repro.core.m2.acceptor import AcceptorMixin
from repro.core.m2.config import (
    M2PaxosConfig,
    SafetyViolation,
    _PendingAccept,
    _PendingPrepare,
)
from repro.core.m2.durability import DurabilityMixin
from repro.core.m2.ownership import OwnershipMixin
from repro.core.m2.proposer import ProposerMixin
from repro.core.m2.recovery import RecoveryMixin
from repro.core.m2.serving import ServingMixin
from repro.core.state import M2PaxosState

__all__ = [
    "M2Paxos",
    "M2PaxosConfig",
    "SafetyViolation",
    "AcceptorMixin",
    "DurabilityMixin",
    "OwnershipMixin",
    "ProposerMixin",
    "RecoveryMixin",
    "ServingMixin",
]


class M2Paxos(
    ProposerMixin,
    AcceptorMixin,
    OwnershipMixin,
    RecoveryMixin,
    ServingMixin,
    DurabilityMixin,
    Protocol,
):
    """One node's M2Paxos instance.  Bind to an Env, then feed events."""

    # M2Paxos has no dependency computation and no shared metadata on
    # the critical path, hence the cheaper per-message handler and the
    # near-zero serial fraction ("there is no time consuming operation
    # performed on its critical path", Section I).
    costs = ProtocolCosts(base_cost=120e-6, serial_fraction=0.03)

    def __init__(self, config: Optional[M2PaxosConfig] = None) -> None:
        super().__init__()
        self.config = config or M2PaxosConfig()
        policy = self.config.policy
        if policy is not None and not isinstance(policy, OwnershipPolicy):
            # Factory form: policies hold per-node state, so a config
            # shared across a cluster supplies `lambda: Policy(...)`.
            policy = policy()
        self.policy = policy or OnDemandPolicy()
        # Bound at bind() time (needs the cluster size); None until then.
        self.quorums: Optional[QuorumSystem] = None
        self.state = M2PaxosState(home_hint=self.config.home_hint)
        self.delivery: Optional[DeliveryEngine] = None
        self._req_counter = 0
        self._noop_counter = 0
        self._pending_accepts: dict[int, _PendingAccept] = {}
        self._pending_prepares: dict[int, _PendingPrepare] = {}
        self._attempts: dict[tuple[int, int], int] = {}
        self._active_recoveries: set[tuple[int, int]] = set()
        self._acquiring: set[str] = set()
        self._deferred: list = []
        # Gap checker's view of each stuck frontier: obj -> (frontier
        # position, time it was first seen stuck).  Keyed on the
        # *position* so steady decision traffic at higher slots cannot
        # mask a frontier that is not moving (see _check_gaps).
        self._gap_stall: dict[str, tuple[int, float]] = {}
        # Instance set assigned to each of our in-flight commands.  A
        # NACKed round may nevertheless have been *chosen* (a quorum of
        # ACKs can coexist with the NACK we saw), so retries must fight
        # for the SAME positions; re-proposing elsewhere could decide
        # the command at two position sets, whose relative orders with
        # other commands can contradict across objects.  Fresh positions
        # are taken only once the old round is provably dead (one of its
        # instances decided with a different command).
        self._assigned: dict[tuple[int, int], dict[str, int]] = {}
        # Fast-path batch queue (see ProposerMixin._enqueue_fast).  With
        # ``config.max_batch == 1`` none of this is ever touched.
        self._batch: list = []
        self._batch_cids: set[tuple[int, int]] = set()
        self._batch_timer = None
        # Our own proposals not yet fully decided -- the depth gauge
        # behind ``config.batch_adaptive`` (see _effective_batch_wait).
        self._inflight_cids: set[tuple[int, int]] = set()
        self._init_serving()
        # Diagnostics consumed by the benchmark harness.
        self.stats = {
            "fast_path": 0,
            "forwarded": 0,
            "acquisitions": 0,
            "migrations": 0,
            "accept_nacks": 0,
            "prepare_nacks": 0,
            "gap_recoveries": 0,
            "read_local": 0,
            "read_fallback": 0,
            "session_hit": 0,
            "session_evict": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def bind(self, env) -> None:
        super().bind(env)
        spec = self.config.quorum or MajorityQuorums()
        self.quorums = spec.build(env.n_nodes)
        self.delivery = DeliveryEngine(self.state, self._on_append)

    def on_start(self) -> None:
        if self.config.gap_recovery:
            self._schedule_gap_check()
        self._serving_on_start()

    def on_restart(self) -> None:
        """Durable-log reboot: ``self.state`` (promises, accepted values,
        the decided log) and the delivery engine survive as if reloaded
        from disk; everything tied to in-flight rounds is volatile and
        must not leak into the new incarnation: stale pending records
        would count acks for rounds nobody is driving anymore, and the
        ``_acquiring``/``_active_recoveries`` guards would stay locked
        forever with no timer left to release them."""
        self._pending_accepts.clear()
        self._pending_prepares.clear()
        self._attempts.clear()
        self._active_recoveries.clear()
        self._acquiring.clear()
        self._deferred.clear()
        self._gap_stall.clear()
        self._assigned.clear()
        self._batch.clear()
        self._batch_cids.clear()
        self._batch_timer = None  # already cancelled by the substrate
        self._inflight_cids.clear()
        self._serving_on_restart()

    def processing_cost(self, message):
        """Charge multi-command rounds for their extra commands.

        A batched Accept/Decide is one message but carries several
        commands; when ``costs.per_command_cost`` is non-zero (the
        benchmark's honest-batching profile) each command beyond the
        first adds that much CPU, so batching amortises -- not erases --
        per-command work in the simulator.
        """
        cost, serial = self.costs.base_cost, self.costs.serial_fraction
        extra = self.costs.per_command_cost
        if extra and isinstance(message, (Accept, Decide)):
            n_commands = len({c.cid for c in message.to_decide.values()})
            if n_commands > 1:
                cost += extra * (n_commands - 1)
        return cost, serial

    def _next_req(self) -> int:
        self._req_counter += 1
        return self._req_counter
