"""Acceptor and learner sides (Algorithms 2-3): votes and decisions.

The mixin owns every passive role: voting on Accepts, answering
Prepares (with the tail-reporting ownership promise), learning from
Decides, and feeding decisions to the delivery engine.
"""

from __future__ import annotations

from typing import Optional

from repro.consensus.base import handles
from repro.consensus.commands import Command
from repro.core.messages import Accept, AckAccept, AckPrepare, Decide, Instance, Prepare
from repro.core.m2.config import _DECIDED_EPOCH, SafetyViolation


class AcceptorMixin:
    """Algorithm 2's acceptor half + Algorithm 3 (learning/delivery)."""

    @handles(Accept)
    def _on_accept(self, sender: int, msg: Accept) -> None:
        refused = False
        max_rnd = 0
        for inst, epoch in msg.eps.items():
            inst_state = self.state.inst(inst)
            obj = self.state.obj(inst[0])
            max_rnd = max(max_rnd, inst_state.rnd, obj.promised)
            if inst_state.rnd > epoch:
                refused = True
            if not msg.scoped and obj.promised > epoch:
                # Object-level leadership: a higher epoch was prepared,
                # so this accept comes from a dethroned owner.  Scoped
                # rounds arbitrate purely on the instance's rnd.
                refused = True
            existing = self.state.decided_at(inst)
            if existing is not None and existing.cid != msg.to_decide[inst].cid:
                # The instance is already burned with a different command;
                # never vote for a second value.
                refused = True
            # Either way, remember the position was used: our own picks
            # must steer clear of it.
            obj.observe_position(inst[1])

        if refused:
            self.env.send(
                sender,
                AckAccept(
                    req=msg.req,
                    coordinator=sender,
                    ok=False,
                    cids={},
                    eps=msg.eps,
                    max_rnd=max_rnd,
                ),
            )
            return

        # Each accepted value remembers the full instance set it was
        # proposed with (what a later forced recovery must cover
        # atomically): taken from the message's authoritative map when
        # present, else derived by grouping the round's instances.
        ins_of: dict[tuple[int, int], tuple[Instance, ...]] = dict(msg.cmd_ins)
        for inst, cmd in msg.to_decide.items():
            if cmd.cid not in ins_of:
                ins_of[cmd.cid] = tuple(
                    i for i, c in msg.to_decide.items() if c.cid == cmd.cid
                )

        self._absorb_accept(sender, msg.scoped, msg.eps, msg.to_decide, ins_of)
        self._log_accept(sender, msg, ins_of)

        ack = AckAccept(
            req=msg.req,
            coordinator=sender,
            ok=True,
            cids={inst: cmd.cid for inst, cmd in msg.to_decide.items()},
            eps=msg.eps,
        )
        if self.config.ack_to_all:
            self.env.broadcast(ack)
        else:
            self.env.send(sender, ack)
        if sender == self.env.node_id:
            # Our own accept landed: ownership is now recorded locally,
            # so deferred commands can take the fast path.
            self._drain_deferred()

    def _absorb_accept(
        self,
        sender: int,
        scoped: bool,
        eps: dict,
        to_decide: dict,
        ins_of: dict,
    ) -> None:
        """Apply one (non-refused) Accept's per-instance mutations.

        Shared by the live handler and storage-recovery replay: the
        replayed log record carries exactly these arguments, so replay
        reproduces the handler's state transition verbatim."""
        for inst, epoch in eps.items():
            l, position = inst
            inst_state = self.state.inst(inst)
            inst_state.rnd = epoch
            inst_state.rdec = epoch
            inst_state.vdec = to_decide[inst]
            inst_state.vdec_ins = ins_of[to_decide[inst].cid]
            obj = self.state.obj(l)
            if not scoped:
                # Only leadership rounds transfer ownership.
                if obj.owner is not None and obj.owner != sender:
                    self.note("owner_handoff", obj=l, old=obj.owner, new=sender)
                obj.owner = sender
                obj.owner_epoch = epoch
                obj.promised = max(obj.promised, epoch)
                obj.epoch = max(obj.epoch, epoch)
                if self.config.lease_duration > 0.0 and not self._replaying:
                    # Absorbing a leadership-round accept doubles as a
                    # read-lease grant: the sender provably holds the
                    # object's current epoch, and counting the window
                    # from *our receipt clock* keeps it a superset of
                    # the owner's send-clock window under bounded skew
                    # (see DESIGN.md, Serving tier).  Replay never
                    # re-grants: grants are deliberately volatile and a
                    # restarted acceptor runs the lease blackout instead.
                    obj.lease_holder = sender
                    obj.lease_epoch = epoch
                    obj.lease_until = (
                        self.env.now() + self.config.lease_duration
                    )
            obj.observe_position(position)
            self.state.gap_candidates.add(l)

    TAIL_REPORT_CAP = 64

    @handles(Prepare)
    def _on_prepare(self, sender: int, msg: Prepare) -> None:
        if self.config.lease_duration > 0.0:
            # Serving tier: a Prepare that would dethrone (or, for
            # scoped rounds, decide behind the back of) a leased owner
            # is *parked* until the grant runs out or the owner releases
            # it -- this is the acceptor-side half of the lease
            # invariant.  The holder's own objects never park the
            # message when this node IS the holder: processing it moves
            # our promise, which stops our local reads synchronously and
            # triggers the explicit ReleaseLease revoke.
            wake = self._lease_block_until(sender, msg.eps)
            if wake is not None:
                self._park_prepare(sender, msg, wake)
                return
        refused = False
        max_rnd = 0
        for inst, epoch in msg.eps.items():
            inst_state = self.state.inst(inst)
            obj = self.state.obj(inst[0])
            max_rnd = max(max_rnd, inst_state.rnd)
            if inst_state.rnd >= epoch:
                refused = True
            if not msg.scoped:
                max_rnd = max(max_rnd, obj.promised)
                if obj.promised >= epoch:
                    refused = True
            # Record the attempted position either way: our own next
            # picks must steer clear of it.
            obj.observe_position(inst[1])

        if refused:
            self.env.send(
                sender, AckPrepare(req=msg.req, ok=False, max_rnd=max_rnd)
            )
            return

        if msg.scoped:
            # Instance-scoped phase 1: promise and report only the
            # requested instances; the object's leadership is untouched.
            decs: dict[
                Instance, tuple[Optional[Command], int, tuple[Instance, ...]]
            ] = {}
            for inst, epoch in msg.eps.items():
                inst_state = self.state.inst(inst)
                inst_state.rnd = epoch
                self.state.gap_candidates.add(inst[0])
                decided = self.state.decided_at(inst)
                if decided is not None:
                    ins = (
                        inst_state.vdec_ins
                        if inst_state.vdec is not None
                        and inst_state.vdec.cid == decided.cid
                        else (inst,)
                    )
                    decs[inst] = (decided, _DECIDED_EPOCH, ins)
                else:
                    decs[inst] = (
                        inst_state.vdec,
                        inst_state.rdec,
                        inst_state.vdec_ins,
                    )
            self._log_promise(
                {}, {inst: self.state.inst(inst).rnd for inst in msg.eps}
            )
            self.env.send(sender, AckPrepare(req=msg.req, ok=True, decs=decs))
            return

        # A promise for epoch e covers the *whole object*, so the reply
        # reports every instance at/above the requested position that
        # carries activity -- exactly Multi-Paxos's view change, where
        # the new leader learns the log tail.  Without this, the new
        # owner could run fast-path rounds over instances where an
        # older-epoch quorum already chose a value it never saw.
        if self.config.lease_duration > 0.0 and sender != self.env.node_id:
            # We may hold read leases on some of these objects; promising
            # a foreign ownership round ends our tenure, so stop serving
            # *before* the promise leaves and tell the granters to wake
            # any parked acquisition (the explicit-revoke path).
            self._self_revoke_leases(inst[0] for inst in msg.eps)
        decs: dict[Instance, tuple[Optional[Command], int, tuple[Instance, ...]]] = {}
        for inst, epoch in msg.eps.items():
            l, position = inst
            obj = self.state.obj(l)
            obj.promised = max(obj.promised, epoch)
            obj.epoch = max(obj.epoch, epoch)
            self.state.gap_candidates.add(l)
            tail = self.state.positions_with_activity(l, position)
            for p in [position] + tail[: self.TAIL_REPORT_CAP]:
                report_inst = (l, p)
                inst_state = self.state.inst(report_inst)
                # The promise covers every reported instance, exactly as
                # a Multi-Paxos promise covers the whole log: otherwise a
                # lower-ballot scoped round could slip in between this
                # report and the new owner's hole-filling accept.
                inst_state.rnd = max(inst_state.rnd, epoch)
                decided = self.state.decided_at(report_inst)
                if decided is not None:
                    ins = (
                        inst_state.vdec_ins
                        if inst_state.vdec is not None
                        and inst_state.vdec.cid == decided.cid
                        else (report_inst,)
                    )
                    decs[report_inst] = (decided, _DECIDED_EPOCH, ins)
                else:
                    decs[report_inst] = (
                        inst_state.vdec,
                        inst_state.rdec,
                        inst_state.vdec_ins,
                    )
        self._log_promise(
            {
                inst[0]: (
                    self.state.obj(inst[0]).promised,
                    self.state.obj(inst[0]).epoch,
                )
                for inst in msg.eps
            },
            {report_inst: self.state.inst(report_inst).rnd for report_inst in decs},
        )
        self.env.send(sender, AckPrepare(req=msg.req, ok=True, decs=decs))

    # ------------------------------------------------------------------
    # Decision phase (Algorithm 3)
    # ------------------------------------------------------------------

    @handles(Decide)
    def _on_decide(self, sender: int, msg: Decide) -> None:
        ins_of: dict[tuple[int, int], tuple[Instance, ...]] = {}
        for inst, cmd in msg.to_decide.items():
            # A node that missed the Accept still learns the value and
            # its round's instance set, so its prepare replies can route
            # recoveries correctly.
            inst_state = self.state.inst(inst)
            if inst_state.vdec is None:
                if cmd.cid not in ins_of:
                    ins_of[cmd.cid] = tuple(
                        i for i, c in msg.to_decide.items() if c.cid == cmd.cid
                    )
                inst_state.vdec = cmd
                inst_state.vdec_ins = ins_of[cmd.cid]
            self._decide(inst, cmd)

    def _decide(self, inst: Instance, command: Command) -> None:
        l, position = inst
        existing = self.state.decided_at(inst)
        if existing is not None:
            if self.config.paranoid and existing.cid != command.cid:
                if existing.noop and command.noop:
                    # Two recovery rounds racing to fill the same hole
                    # may carry distinct no-op ids; no-ops are
                    # semantically identical (they only advance the
                    # frontier and are never delivered), so either one
                    # standing is consistent.
                    return
                raise SafetyViolation(
                    f"instance {inst}: {existing} already decided, got {command}"
                )
            return
        if not command.noop:
            self.note("decide", cid=command.cid)
        self._log_decide(inst, command)
        assert self.delivery is not None
        self.delivery.record_decision(l, position, command, self.env.now())
        if self._fully_decided(command):
            # A fully decided command needs no further proposer-side
            # bookkeeping.  Pruning here (not only at append, which can
            # lag behind a stalled frontier) bounds `_attempts` on long
            # runs and releases the recovery guard even when a
            # `kind="recover"` round we launched was won by a competing
            # node's decide -- the round's own ack path never announces
            # then, which used to strand the cid in `_active_recoveries`
            # and block every future recovery of it.
            self._attempts.pop(command.cid, None)
            self._active_recoveries.discard(command.cid)
            self._inflight_cids.discard(command.cid)
        appended = self.delivery.pump(dirty=command.ls)
        # Every object whose frontier may have moved goes (back) on the
        # gap checker's radar; the checker discards clean ones itself.
        self.state.gap_candidates.update(command.ls)
        for done in appended:
            self.state.gap_candidates.update(done.ls)

    def _on_append(self, command: Command) -> None:
        """A command reached the C-struct: deliver it upward."""
        self._attempts.pop(command.cid, None)
        self._assigned.pop(command.cid, None)
        if not command.noop:
            # Serving tier bookkeeping rides the append path so it is a
            # pure function of the delivered sequence: every node -- and
            # every replayed incarnation -- converges on the same read
            # frontier and session table.
            for l in command.ls:
                self.state.obj(l).reads_frontier += 1
            if command.session is not None:
                self._session_record(command)
            if command.proposer != self.env.node_id:
                # Exactly-once "decision elsewhere" signal for the
                # ownership policy (appends happen once per command per
                # node); our own proposals -- including ones the owner
                # decided for us after a forward -- stay out, so a
                # node's local demand keeps counting.
                self.policy.on_remote_decide(self.env.node_id, command)
            self.env.deliver(command)
