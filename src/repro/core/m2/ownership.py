"""Ownership acquisition (Algorithm 4): prepare rounds and SELECT.

The mixin owns phase 1: epoch bumping, prepare rounds (ownership,
gap, and recovery flavours), quorum collection, and turning the
replies into accept rounds that honour forced values.
"""

from __future__ import annotations

from typing import Optional

from repro.consensus.base import handles
from repro.consensus.commands import Command, make_noop
from repro.core.messages import AckPrepare, Instance, Prepare
from repro.core.m2.config import _DECIDED_EPOCH, _PendingPrepare


class OwnershipMixin:
    """Algorithm 4: acquire ownership, resolve prepared rounds."""

    def _acquisition_phase(self, command: Command) -> None:
        eps = self._pick_instances(command)
        if not eps:
            return
        # Only skip phase 1 for objects we currently own AND whose
        # assigned instance is still from our tenure: re-preparing our
        # own fresh pipeline would NACK it, but a stale instance may
        # have been touched at another epoch and must be prepared.
        stale = self._stale_instances(command)
        owned = {
            inst: epoch
            for inst, epoch in eps.items()
            if self._is_current_owner(inst[0]) and inst not in stale
        }
        missing = {inst: epoch for inst, epoch in eps.items() if inst not in owned}
        if not missing:
            # Races can make everything owned by the time we get here.
            self._accept_phase(command, eps)
            return
        self.stats["acquisitions"] += 1
        self.note_path(command, "acquisition")
        self._acquiring.update(inst[0] for inst in missing)
        full = self._full_ins(command, eps)
        self._prepare_round(
            command,
            list(missing),
            kind="acquisition",
            extra_eps=owned,
            fins=full or (),
        )

    def _prepare_round(
        self,
        command: Optional[Command],
        instances: list[Instance],
        kind: str,
        extra_eps: Optional[dict[Instance, int]] = None,
        fins: tuple[Instance, ...] = (),
    ) -> None:
        scoped = kind in ("gap", "recover")
        eps: dict[Instance, int] = {}
        bumped: set[str] = set()
        for inst in instances:
            obj = self.state.obj(inst[0])
            if scoped:
                # Instance-level ballot only: above anything seen, but
                # never claiming the object (no dethroning).
                floor = max(
                    self.state.inst(inst).rnd, obj.epoch, obj.promised
                )
                eps[inst] = self._next_epoch(floor)
            else:
                # One new epoch per *object* per round: instances of the
                # same object share it, so the follow-up accept is never
                # refused against the promise this round created.
                if inst[0] not in bumped:
                    obj.epoch = self._next_epoch(
                        max(obj.epoch, obj.promised)
                    )
                    bumped.add(inst[0])
                    self.note(
                        "epoch_bump",
                        obj=inst[0],
                        cid=command.cid if command is not None else None,
                    )
                eps[inst] = obj.epoch
            obj.observe_position(inst[1])
        req = self._next_req()
        self._pending_prepares[req] = _PendingPrepare(
            command=command,
            eps=eps,
            kind=kind,
            extra_eps=extra_eps or {},
            fins=fins,
        )
        self.env.broadcast(Prepare(req=req, eps=eps, scoped=scoped))
        if self.config.round_timeout > 0:
            self._arm_round_timeout(req)

    def _next_epoch(self, floor: int) -> int:
        """The smallest epoch above ``floor`` that belongs to this node.

        Epochs are striped ``k * N + node_id``, making every epoch value
        globally unique: no two nodes can ever run rounds at the same
        ballot, which is what rules out same-epoch duelling coordinators
        structurally.
        """
        n = self.env.n_nodes
        k = floor // n + 1
        return k * n + self.env.node_id

    def _arm_round_timeout(self, req: int) -> None:
        def expire() -> None:
            pending = self._pending_prepares.pop(req, None)
            if pending is None or pending.done:
                return
            pending.done = True
            if pending.kind == "acquisition":
                self._acquiring.difference_update(l for l, _p in pending.eps)
                self._drain_deferred()
            elif pending.kind == "recover" and pending.command is not None:
                self._active_recoveries.discard(pending.command.cid)

        jitter = 1.0 + 0.5 * self.env.rng.random()
        self.env.set_timer(self.config.round_timeout * jitter, expire)

    @handles(AckPrepare)
    def _on_ack_prepare(self, sender: int, msg: AckPrepare) -> None:
        pending = self._pending_prepares.get(msg.req)
        if pending is None or pending.done:
            return

        if not msg.ok:
            pending.done = True
            self.stats["prepare_nacks"] += 1
            for (l, _position) in pending.eps:
                obj = self.state.obj(l)
                obj.epoch = max(obj.epoch, msg.max_rnd)
            if pending.kind == "acquisition":
                self._acquiring.difference_update(l for l, _p in pending.eps)
                self._retry(pending.command)
                self._drain_deferred()
            elif pending.kind == "recover":
                # A competing round is active; the gap checker re-fires
                # recovery if the frontier stays stuck.
                self._active_recoveries.discard(pending.command.cid)
            return

        pending.replies[sender] = msg.decs
        if not self.quorums.is_prepare_quorum(pending.replies):
            return
        pending.done = True
        if pending.kind == "acquisition":
            self._acquiring.difference_update(l for l, _p in pending.eps)
        self._resolve_prepared(pending)

    def _resolve_prepared(self, pending: _PendingPrepare) -> None:
        """Turn a prepared round into accept rounds, honouring forced
        values (Paxos phase 2a over multiple instances).

        The replies may report *more* instances than were asked for: the
        object's whole active tail.  Decided reports are learned on the
        spot; accepted-but-undecided ones are forced like any phase-1
        discovery, at the object's prepared epoch.
        """
        # Union of requested and reported instances, each with an epoch.
        object_epoch: dict[str, int] = {}
        for (l, _p), epoch in pending.eps.items():
            object_epoch[l] = max(object_epoch.get(l, 0), epoch)
        eps = dict(pending.eps)
        for decs in pending.replies.values():
            for inst in decs:
                eps.setdefault(inst, object_epoch.get(inst[0], 0))
        selected = self._select(eps, pending.replies)

        # Learn decided reports immediately; they leave the round.
        decided_foreign = False
        for inst in list(selected):
            forced, fep, _fins = selected[inst]
            self.state.obj(inst[0]).observe_position(inst[1])
            if forced is not None and fep >= _DECIDED_EPOCH:
                self._decide(inst, forced)
                if pending.command is not None and (
                    inst in pending.eps and forced.cid != pending.command.cid
                ):
                    decided_foreign = True
                del selected[inst]
                eps.pop(inst, None)

        if pending.kind == "acquisition":
            # Serving tier: the quorum's reports just taught us the
            # objects' full tails; pin each object's serve floor so
            # leased reads wait for the local log to cover them.
            self._note_tenure_established(l for (l, _p) in pending.eps)

        round_insts = set(eps)
        target = pending.command

        clean = (
            target is not None
            and not decided_foreign
            and all(
                forced is None
                or (forced.cid == target.cid and set(fins) <= round_insts)
                for (forced, _epoch, fins) in selected.values()
            )
        )
        if clean:
            to_decide: dict[Instance, Command] = {}
            accept_eps = dict(pending.extra_eps)
            for inst in pending.extra_eps:
                to_decide[inst] = target
            for inst in pending.eps:
                if inst in eps:  # not learned as decided above
                    accept_eps[inst] = eps[inst]
                    to_decide[inst] = target
            # Reported-but-empty instances are holes the previous owner
            # left behind (reserved or refused rounds); fill them with
            # no-ops in the same atomic round so the frontier can never
            # stall on them.
            for inst in eps:
                if inst not in to_decide and selected.get(inst, (None,))[0] is None:
                    self._noop_counter += 1
                    to_decide[inst] = make_noop(
                        inst[0], self.env.node_id, self._noop_counter
                    )
                    accept_eps[inst] = eps[inst]
            cmd_ins = (
                {target.cid: pending.fins} if pending.fins else None
            )
            self._send_accept_round(
                to_decide,
                accept_eps,
                retry_command=target,
                cmd_ins=cmd_ins,
                scoped=pending.kind in ("gap", "recover"),
            )
            return

        # Conflicted (or pure gap) round: honour every forced value.
        # Multi-object forced commands whose recorded instance set is
        # not fully covered here are re-proposed atomically over that
        # set; unforced instances are filled with no-ops so the round's
        # prepared positions can never become permanent delivery gaps.
        to_decide: dict[Instance, Command] = {}
        cmd_ins: dict[tuple[int, int], tuple[Instance, ...]] = {}
        recoveries: dict[tuple[int, int], tuple[Command, tuple[Instance, ...]]] = {}
        for inst, (forced, _epoch, fins) in selected.items():
            if forced is None:
                self._noop_counter += 1
                to_decide[inst] = make_noop(
                    inst[0], self.env.node_id, self._noop_counter
                )
                continue
            fins_set = set(fins) if fins else {inst}
            if self._round_is_dead(forced, fins_set):
                # One of the forced command's sibling instances is
                # already decided with a *different* command, so its
                # round never reached a quorum anywhere (the quorum
                # would have covered the sibling too).  The stale
                # acceptance is safe to overwrite with a no-op --
                # resurrecting it would split its decision.
                self._noop_counter += 1
                to_decide[inst] = make_noop(
                    inst[0], self.env.node_id, self._noop_counter
                )
                continue
            group_ok = fins_set <= round_insts and all(
                selected[i][0] is not None and selected[i][0].cid == forced.cid
                for i in fins_set
            )
            if len(forced.ls) > 1 and fins_set != {inst} and not group_ok:
                recoveries[forced.cid] = (forced, tuple(fins))
                continue
            to_decide[inst] = forced
            if fins:
                cmd_ins[forced.cid] = tuple(fins)
        if to_decide:
            self._send_accept_round(
                to_decide,
                eps,
                retry_command=None,
                cmd_ins=cmd_ins,
                scoped=pending.kind in ("gap", "recover"),
            )
        for forced, fins in recoveries.values():
            self._schedule_recover_command(forced, fins)
        if pending.kind == "recover" and target is not None:
            self._active_recoveries.discard(target.cid)
        if pending.kind == "acquisition" and target is not None:
            self._retry(target)

    def _round_is_dead(
        self, command: Command, fins_set: set[Instance]
    ) -> bool:
        """True if any of the command's round instances is decided with
        a different command (hence the round never reached a quorum)."""
        for inst in fins_set:
            decided = self.state.decided_at(inst)
            if decided is not None and decided.cid != command.cid:
                return True
        return False

    @staticmethod
    def _select(
        eps: dict[Instance, int],
        replies: dict[
            int, dict[Instance, tuple[Optional[Command], int, tuple[Instance, ...]]]
        ],
    ) -> dict[Instance, tuple[Optional[Command], int, tuple[Instance, ...]]]:
        """Paxos phase-2a value selection per instance (Algorithm 4,
        lines 22-28): the command accepted in the highest epoch wins,
        along with the instance set of the round that accepted it."""
        out: dict[Instance, tuple[Optional[Command], int, tuple[Instance, ...]]] = {}
        for inst in eps:
            best: tuple[Optional[Command], int, tuple[Instance, ...]] = (None, -1, ())
            for decs in replies.values():
                cmd, epoch, fins = decs.get(inst, (None, -1, ()))
                if cmd is not None and epoch > best[1]:
                    best = (cmd, epoch, fins)
            out[inst] = best if best[0] is not None else (None, 0, ())
        return out
