"""Serving tier: leased owner-local reads + exactly-once sessions.

Two orthogonal mechanisms live here, both inert under default config:

**Ownership leases** (``config.lease_duration > 0``).  Every leadership
Accept an acceptor absorbs doubles as a time-bounded *read lease* grant
to the sender, counted from the acceptor's receipt clock; the owner
counts the same window from its *send* clock minus ``lease_margin``.
Send time <= receipt time in real time, so the owner's serving window
always ends before any granter's parking window, and the margin
additionally absorbs clock *rate* drift of up to ``margin / duration``
over one window.  While the owner's window covers a set of granters
that intersects every prepare quorum, no competing acquisition can
complete -- granters park foreign Prepares -- so the owner may answer
read-only commands from its already-appended local state with zero
consensus messages, and the answer is still linearizable.  A valid
lease alone is not enough, though: after re-acquiring an object the
owner's *log* may still trail writes decided under the previous tenure
(they arrive asynchronously via learn resends and gap recovery), so
each acquisition also pins a per-object *serve floor* -- the highest
position its prepare quorum reported in use -- and reads fall back to
the full round until the local append frontier covers it.  Idle objects
are kept leased by a RenewLease heartbeat; a foreign Prepare reaching
the owner itself revokes explicitly (promise moves -> reads stop ->
ReleaseLease wakes parked acquirers).  Grants are deliberately
volatile: every incarnation (first boot, durable or amnesia restart)
opens with a *lease blackout* -- it parks all Prepares for one full
lease window -- so grants forgotten across a crash can never
un-protect a lease that is still live somewhere.

**Exactly-once sessions** (``command.session = (client_id, seq)``).
Every node keeps a dedup table mapping client id to the highest applied
seq and that command's cached result.  The table is updated at append
time, making it a pure function of the delivered sequence: all nodes
(and every replayed incarnation) converge on the same table, which is
what lets it survive restarts through the ordinary Storage API with no
extra log records.  A retried command whose seq is at or below the
watermark is answered from cache without a consensus round.  The table
is bounded by ``session_cap``: beyond it the least-recently-active
session is evicted (counted in telemetry).  An evicted session's
*cached response* is lost -- a retry after eviction re-runs consensus
-- but exactly-once application still holds, because the delivery
engine's cid dedup refuses a second append of the same command.

Read results are ``{object: reads_frontier}`` snapshots -- the count of
non-noop commands applied per object -- delivered on the env's separate
read channel (:meth:`repro.consensus.base.Env.deliver_read`): served
reads must never enter the decision log, which is replicated and
byte-compared across nodes, while a served read happens at the owner
alone.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.consensus.base import handles
from repro.consensus.commands import Command
from repro.core.messages import (
    AckRenew,
    Decide,
    Prepare,
    ReleaseLease,
    RenewLease,
)


class ServingMixin:
    """Leases, the session dedup table, and accept-quorum targeting."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _init_serving(self) -> None:
        # Owner-side grant ledger: obj -> {granter -> expiry on *our*
        # lease clock}.  Pruned when ownership moves (renew pass) and on
        # self-revoke.
        self._lease_grants: dict[str, dict[int, float]] = {}
        # Test-injectable offset added to this node's lease clock
        # (satellite: lease-safety-under-skew).  The protocol only ever
        # compares its own stamps against its own clock, so a *constant*
        # offset is harmless by construction; a mid-run step (or rate
        # drift beyond the margin) makes the owner's window lapse early
        # and forces the slow path -- never a stale read.
        self._lease_clock_skew = 0.0
        # Per-object serve floor: the highest position known used when
        # this tenure began (see _note_tenure_established).  Local reads
        # refuse until ``appended`` has caught up to it.
        self._serve_floor: dict[str, int] = {}
        self._lease_blackout_until = 0.0
        # Parked foreign Prepares: park id -> (sender, message, timer).
        self._parked_prepares: dict[int, tuple] = {}
        self._park_counter = 0
        # Renewal heartbeat correlation (only the latest round counts).
        self._renew_req = 0
        self._renew_sent_at = 0.0
        # Exactly-once dedup: client -> (seq watermark, cached result),
        # in least-recently-active-first insertion order (plain dict
        # order + pop/reinsert touches = an O(1) LRU).
        self._sessions: dict[int, tuple[int, object]] = {}
        # Satellite: preferred min-max-RTT accept quorum, resolved
        # lazily from config.quorum_rtt (None = broadcast, the default).
        self._accept_quorum_cache: Optional[tuple[int, ...]] = None

    def _serving_on_start(self) -> None:
        if self.config.lease_duration <= 0.0:
            return
        self._arm_lease_blackout()
        self._schedule_lease_renew()
        # A storage-backed restart replays the log into a fresh protocol
        # *before* on_start: any recovered object gets its serve floor
        # re-derived from the recovered tail (no-op on a true first boot
        # where the state is empty).
        self._reset_serve_floors()

    def _serving_on_restart(self) -> None:
        """Durable-log reboot: grants and parked rounds are volatile."""
        self._lease_grants.clear()
        self._parked_prepares.clear()  # timers already cancelled
        self._renew_req = 0
        self._renew_sent_at = 0.0
        # The session table is a function of the (durable) delivered
        # log, so it legitimately survives alongside it.
        if self.config.lease_duration > 0.0:
            self._arm_lease_blackout()
            self._reset_serve_floors()

    def _reset_serve_floors(self) -> None:
        """Re-derive every serve floor from the surviving state: a new
        incarnation must not serve below the recovered tail."""
        for l, obj in self.state.objects.items():
            floor = obj.next_slot - 1
            if floor > self._serve_floor.get(l, 0):
                self._serve_floor[l] = floor

    def _note_tenure_established(self, objs: Iterable[str]) -> None:
        """An acquisition's prepare quorum just resolved for ``objs``.

        Record each object's serve floor: the highest position the
        quorum reported in use.  Any write that *completed* under a
        previous tenure was accepted by a full accept quorum, which
        intersects our prepare quorum, so some reply reported its
        position and ``next_slot`` moved past it -- but its *value* may
        still be in flight towards us (learn resend, gap recovery, or
        our own forced accept round).  Until ``appended`` reaches the
        floor, the local state may be missing a completed write and
        reads must take the full round (see _try_serve_read).
        """
        if self.config.lease_duration <= 0.0:
            return
        for l in set(objs):
            floor = self.state.obj(l).next_slot - 1
            if floor > self._serve_floor.get(l, 0):
                self._serve_floor[l] = floor

    def _arm_lease_blackout(self) -> None:
        cfg = self.config
        until = self.env.now() + cfg.lease_duration + cfg.lease_margin
        self._lease_blackout_until = max(self._lease_blackout_until, until)

    # ------------------------------------------------------------------
    # Clocks and lease validity (owner side)
    # ------------------------------------------------------------------

    def _lease_now(self) -> float:
        """This node's lease clock (env time + injected test skew)."""
        return self.env.now() + self._lease_clock_skew

    def _lease_live_granters(self, l: str, at: float) -> set[int]:
        grants = self._lease_grants.get(l)
        if not grants:
            return set()
        return {node for node, expiry in grants.items() if expiry > at}

    def _lease_valid(self, l: str, at: Optional[float] = None) -> bool:
        """True while our granters block every possible acquisition.

        The condition is exactly "the complement of the live granter set
        contains no prepare quorum": any node trying to take the object
        over needs a prepare quorum, every prepare quorum then includes
        a live granter, and that granter is parking the Prepare until
        after our own (strictly earlier-ending) window closes.  Works
        unchanged for flexible and zone quorum systems because it asks
        the quorum family itself, not a count.
        """
        if at is None:
            at = self._lease_now()
        live = self._lease_live_granters(l, at)
        if not live:
            return False
        return not self.quorums.is_prepare_quorum(set(self.env.nodes) - live)

    def _record_lease_grants(self, sender: int, pending) -> None:
        """A positive AckAccept renews the sender's grants: it absorbed
        our leadership Accept, so it granted from its receipt clock; we
        record the conservative end of the window from our *send* stamp.
        """
        expiry = (
            pending.sent_at
            + self.config.lease_duration
            - self.config.lease_margin
        )
        for (l, _position) in pending.eps:
            grants = self._lease_grants.setdefault(l, {})
            if expiry > grants.get(sender, 0.0):
                grants[sender] = expiry

    # ------------------------------------------------------------------
    # Read serving
    # ------------------------------------------------------------------

    def _intercept_propose(self, command: Command) -> bool:
        """Serving-tier front door; True when fully handled locally."""
        if command.session is not None and self._session_replay(command):
            return True
        if command.is_read:
            if self._try_serve_read(command):
                return True
            if self.config.lease_duration > 0.0:
                self.stats["read_fallback"] += 1
        return False

    def _try_serve_read(self, command: Command) -> bool:
        cfg = self.config
        # ack_to_all lets *other* nodes complete a write from the ack
        # fan-in possibly before the owner appends it, which would let a
        # leased read miss a completed write; leases stay off under it.
        if cfg.lease_duration <= 0.0 or cfg.ack_to_all:
            return False
        now = self._lease_now()
        for l in command.ls:
            # Ownership in flight (our epoch bumped past our tenure, or
            # an acquisition guard is up) forces the full round: the
            # believed owner is about to change, so local state may
            # already be behind.
            if l in self._acquiring or not self._is_current_owner(l):
                return False
            if not self._lease_valid(l, at=now):
                return False
            # Tenure completeness: a fresh lease does not imply a fresh
            # *log*.  Writes decided under the previous tenure (say,
            # while we sat behind a partition) reach us asynchronously
            # -- learn resends, gap recovery -- possibly well after the
            # re-acquisition that made our lease valid.  The serve
            # floor pins the tail the prepare quorum knew about; until
            # the local append frontier covers it, a local read could
            # miss a completed write.
            if self.state.obj(l).appended < self._serve_floor.get(l, 0):
                return False
        result = {l: self.state.obj(l).reads_frontier for l in command.ls}
        if command.session is not None:
            self._session_store(command, result)
        self.stats["read_local"] += 1
        self.note("read_local", cid=command.cid)
        self.env.deliver_read(command, result)
        return True

    # ------------------------------------------------------------------
    # Acceptor-side parking (the granter's half of the invariant)
    # ------------------------------------------------------------------

    def _lease_block_until(self, sender: int, eps: dict) -> Optional[float]:
        """Latest time a live grant (or the blackout) blocks this
        Prepare, or None when it may proceed.

        Scoped rounds park too: a gap/recovery round does not dethrone
        the owner, but it can *decide* (and hence complete) a write the
        leased owner has not appended yet, which a local read would then
        miss.  The holder itself never parks its own objects' Prepares:
        when this node is the holder, processing the message is the
        revoke; when the holder is the sender, it is reclaiming its own
        object.
        """
        now = self.env.now()
        wake: Optional[float] = None
        if self._lease_blackout_until > now:
            wake = self._lease_blackout_until
        me = self.env.node_id
        for inst in eps:
            obj = self.state.objects.get(inst[0])
            if obj is None or obj.lease_holder is None:
                continue
            if obj.lease_holder == sender or obj.lease_holder == me:
                continue
            if obj.lease_until > now and (
                wake is None or obj.lease_until > wake
            ):
                wake = obj.lease_until
        return wake

    def _park_prepare(self, sender: int, msg: Prepare, wake: float) -> None:
        # Parking must not starve a *learner*.  The common reason a
        # round knocks on a leased object at all is a gap/recovery
        # prepare from a node with a hole in its log -- and with the
        # lease renewed indefinitely it would park forever.  Decided
        # positions are immutable, so resending the decisions we know
        # for the requested instances is promise-free and lease-neutral,
        # and it fills the sender's holes without the round ever waking.
        known = {}
        for inst in msg.eps:
            decided = self.state.decided_at(inst)
            if decided is not None:
                known[inst] = decided
        if known:
            self.env.send(sender, Decide(to_decide=known))
        self._park_counter += 1
        pid = self._park_counter

        def fire() -> None:
            entry = self._parked_prepares.pop(pid, None)
            if entry is not None:
                # Re-dispatch; a renewed grant simply re-parks it.
                self._on_prepare(entry[0], entry[1])

        delay = max(0.0, wake - self.env.now())
        handle = self.env.set_timer(delay, fire)
        self._parked_prepares[pid] = (sender, msg, handle)
        self.note("lease_wait", req=msg.req, sender=sender)

    def _wake_parked_prepares(self) -> None:
        if not self._parked_prepares:
            return
        entries, self._parked_prepares = self._parked_prepares, {}
        for sender, msg, handle in entries.values():
            handle.cancel()
            self._on_prepare(sender, msg)

    def _self_revoke_leases(self, objs: Iterable[str]) -> None:
        """A foreign ownership Prepare reached us: our tenure on these
        objects is over.  Reads stop *now* (grants dropped before the
        promise is issued), and granters are told to wake any parked
        acquisition instead of waiting out the wall clock."""
        me = self.env.node_id
        released: dict[str, int] = {}
        for l in set(objs):
            dropped = self._lease_grants.pop(l, None) is not None
            obj = self.state.objects.get(l)
            if obj is not None and obj.lease_holder == me:
                released[l] = obj.lease_epoch
                obj.lease_holder = None
                obj.lease_until = 0.0
            elif dropped:
                released[l] = obj.owner_epoch if obj is not None else 0
        if released:
            self.note("lease_release", objs=len(released))
            self.env.broadcast(ReleaseLease(objs=released), include_self=False)

    @handles(ReleaseLease)
    def _on_release_lease(self, sender: int, msg: ReleaseLease) -> None:
        for l in msg.objs:
            obj = self.state.objects.get(l)
            if obj is not None and obj.lease_holder == sender:
                obj.lease_holder = None
                obj.lease_until = 0.0
        self._wake_parked_prepares()

    # ------------------------------------------------------------------
    # Renewal heartbeat (idle, read-heavy objects)
    # ------------------------------------------------------------------

    def _schedule_lease_renew(self) -> None:
        period = self.config.lease_duration * self.config.lease_renew_fraction

        def fire() -> None:
            self._renew_leases()
            self._schedule_lease_renew()

        self.env.set_timer(period, fire)

    def _renew_leases(self) -> None:
        cfg = self.config
        now = self._lease_now()
        period = cfg.lease_duration * cfg.lease_renew_fraction
        objs: dict[str, int] = {}
        for l in list(self._lease_grants):
            if not self._is_current_owner(l):
                # Ownership moved since the grants were recorded; the
                # ledger entry can only mislead validity checks.
                del self._lease_grants[l]
                continue
            if self._lease_valid(l, at=now + 2.0 * period):
                continue  # accept traffic is keeping this one fresh
            objs[l] = self.state.obj(l).owner_epoch
        if not objs:
            return
        self._renew_req = self._next_req()
        self._renew_sent_at = now
        self.env.broadcast(RenewLease(req=self._renew_req, objs=objs))

    @handles(RenewLease)
    def _on_renew_lease(self, sender: int, msg: RenewLease) -> None:
        if self.config.lease_duration <= 0.0:
            return
        granted: list[str] = []
        until = self.env.now() + self.config.lease_duration
        for l, epoch in msg.objs.items():
            obj = self.state.objects.get(l)
            if obj is None:
                continue
            # Re-grant only while the sender provably still holds the
            # epoch: a restarted or dethroned owner whose object moved
            # on gets nothing and must run a full round.
            if (
                obj.owner == sender
                and obj.owner_epoch == epoch
                and obj.promised <= epoch
            ):
                obj.lease_holder = sender
                obj.lease_epoch = epoch
                if until > obj.lease_until:
                    obj.lease_until = until
                granted.append(l)
        if granted:
            self.env.send(
                sender, AckRenew(req=msg.req, granted=tuple(granted))
            )

    @handles(AckRenew)
    def _on_ack_renew(self, sender: int, msg: AckRenew) -> None:
        if msg.req != self._renew_req:
            return
        expiry = (
            self._renew_sent_at
            + self.config.lease_duration
            - self.config.lease_margin
        )
        for l in msg.granted:
            grants = self._lease_grants.get(l)
            if grants is None:
                continue  # released or lost since the heartbeat left
            if expiry > grants.get(sender, 0.0):
                grants[sender] = expiry

    # ------------------------------------------------------------------
    # Exactly-once session table
    # ------------------------------------------------------------------

    def _session_replay(self, command: Command) -> bool:
        """Answer a retry at or below the client's watermark from cache
        (called at propose time, before any consensus work)."""
        client, seq = command.session
        entry = self._sessions.get(client)
        if entry is None or seq > entry[0]:
            return False
        self.stats["session_hit"] += 1
        self.note("session_hit", cid=command.cid)
        self.env.deliver_read(command, entry[1])
        return True

    def _session_record(self, command: Command) -> None:
        """Append-time table update: runs on every node for every
        delivered sessioned command, so the table is a deterministic
        function of the delivered sequence (and replay rebuilds it)."""
        client, seq = command.session
        entry = self._sessions.pop(client, None)
        if entry is not None and seq <= entry[0]:
            self._sessions[client] = entry  # LRU touch only
            return
        result = {l: self.state.obj(l).reads_frontier for l in command.ls}
        self._sessions[client] = (seq, result)
        self._evict_sessions_over_cap()

    def _session_store(self, command: Command, result: object) -> None:
        """Cache a locally-served read's result under its session."""
        client, seq = command.session
        entry = self._sessions.pop(client, None)
        if entry is not None and seq <= entry[0]:
            self._sessions[client] = entry
            return
        self._sessions[client] = (seq, result)
        self._evict_sessions_over_cap()

    def _evict_sessions_over_cap(self) -> None:
        cap = self.config.session_cap
        while len(self._sessions) > cap:
            evicted = next(iter(self._sessions))
            del self._sessions[evicted]
            self.stats["session_evict"] += 1
            if not self._replaying:
                self.note("session_evict", client=evicted)

    # ------------------------------------------------------------------
    # Latency-aware accept-quorum targeting (satellite)
    # ------------------------------------------------------------------

    def _accept_targets(self, retry_command, scoped: bool) -> Optional[list[int]]:
        """Destinations for an Accept round, or None for broadcast.

        With ``config.nearest_accept`` and an RTT matrix configured, the
        first attempt of a non-scoped round goes only to the accept
        quorum minimising the worst RTT from this node (plus ourselves:
        our own absorb is what records our ownership locally).  Retries
        and recoveries always broadcast -- liveness must not hinge on
        the preferred quorum staying up.
        """
        cfg = self.config
        if not cfg.nearest_accept or cfg.quorum_rtt is None or scoped:
            return None
        if retry_command is None or self._attempts.get(retry_command.cid, 0):
            return None
        targets = self._accept_quorum_cache
        if targets is None:
            targets = self._pick_nearest_accept_quorum()
            self._accept_quorum_cache = targets
        return list(targets)

    def _pick_nearest_accept_quorum(self) -> tuple[int, ...]:
        rtt = self.config.quorum_rtt[self.env.node_id]
        best: Optional[frozenset[int]] = None
        best_cost: Optional[tuple] = None
        for quorum in self.quorums.accept_quorums():
            # Our own vote is free; rank by the slowest *remote* member.
            cost = (
                max((rtt[node] for node in quorum if node != self.env.node_id),
                    default=0.0),
                sorted(quorum),
            )
            if best_cost is None or cost < best_cost:
                best, best_cost = quorum, cost
        members = set(best) | {self.env.node_id}
        return tuple(sorted(members))
