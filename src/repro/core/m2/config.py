"""Shared configuration and bookkeeping records for M2Paxos.

Everything here is pure data: tunables, the safety-violation alarm, and
the in-flight round records the proposer/ownership phases share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.consensus.commands import Command
from repro.core.messages import Instance

_DECIDED_EPOCH = 1 << 30
"""Sentinel epoch reported for already-decided instances in prepare
replies, so SELECT always re-forces the decided command."""


class SafetyViolation(AssertionError):
    """Two different commands decided for the same instance."""


@dataclass(frozen=True)
class M2PaxosConfig:
    """Tunables (timeouts in seconds of env time)."""

    forward_timeout: float = 0.05
    retry_backoff: float = 0.002
    gap_check_period: float = 0.2
    gap_timeout: float = 0.4
    # Proposer-side supervision: re-coordinate a command that has not
    # been decided after this long.  NACK-triggered retries cover rounds
    # that fail loudly; this covers rounds lost to message drops or
    # crashes.  Must exceed worst-case decision latency (tune up for
    # saturation benchmarks).
    supervise_timeout: float = 1.5
    # Abandon a prepare round whose quorum of replies never arrives
    # (message loss), releasing the per-object acquisition guard.
    round_timeout: float = 0.6
    # After announcing a decided round, re-send it to nodes whose ack
    # never arrived.  A node that misses both the Accept and the Decide
    # has *no local record* of the instance, so its gap checker can
    # never notice the hole; only the coordinator knows who went
    # unheard.  Quiet clusters send nothing extra (everyone acks long
    # before the first timeout).
    learn_resend_timeout: float = 0.25
    learn_resend_attempts: int = 12
    # Accept-round batching (CAESAR-style leader batching): while this
    # node owns all objects of its queued fast-path proposals, up to
    # ``max_batch`` commands coalesce into a single multi-command Accept
    # round -- one broadcast, one quorum of acks, one Decide -- instead
    # of one full round per command.  The first queued command waits at
    # most ``batch_wait`` env-seconds for company.  ``max_batch=1``
    # bypasses the queue entirely: the code path, message flow, and RNG
    # draws are exactly the unbatched protocol's, so decision logs stay
    # byte-identical to pre-batching builds.  Per-object delivery order
    # is unaffected either way: instances are assigned at enqueue time
    # in submission order, and a batch decides the same (instance ->
    # command) pairs the sequential rounds would have.
    max_batch: int = 1
    batch_wait: float = 0.0
    # Adaptive batch_wait (pipelined clients): instead of a fixed wait,
    # the proposer self-tunes to its *observed in-flight depth* -- the
    # number of its own proposals submitted but not yet fully decided.
    # A shallow pipeline (<= 1 in flight) flushes immediately, adding
    # zero latency for trickle traffic; a deep pipeline waits up to
    # ``batch_wait`` (scaled by ``depth / max_batch``, capped at 1.0)
    # because more company is provably on the way.  Off by default:
    # with it off -- and ``max_batch=1`` -- the code path and decision
    # logs are byte-identical to the seed.
    batch_adaptive: bool = False
    ack_to_all: bool = False
    max_forward_hops: int = 1
    gap_recovery: bool = True
    paranoid: bool = True
    # Optional deterministic epoch-0 ownership map (``l -> node id``),
    # identical on every node.  Lets an application with a natural data
    # partitioning (e.g. TPC-C warehouses) start on the fast path
    # without first-touch acquisitions; any node can still take objects
    # over by preparing epoch 1.
    home_hint: Optional[Callable[[str], int]] = None
    # When-to-acquire policy (Section IV-C calls this an orthogonal
    # problem); None means the paper's on-demand policy.  Accepts either
    # a policy instance (legacy; fine for single-node configs) or a
    # zero-argument factory returning one -- policies hold per-node
    # state, so a config shared by every node of a cluster must use the
    # factory form.  See repro.core.policy.
    policy: Optional[object] = None
    # Quorum system spec (see repro.core.quorum): None means the seed's
    # classic-majority pair.  Bound to the cluster size (and validated
    # against the prepare∩accept intersection condition) at bind time.
    quorum: Optional[object] = None
    # ------------------------------------------------------------------
    # Serving tier (leased owner-local reads + exactly-once sessions).
    # ------------------------------------------------------------------
    # Ownership leases: > 0 enables time-bounded read leases.  Every
    # positive AckAccept (and AckRenew heartbeat) grants the owner the
    # right to serve linearizable reads on its objects locally -- zero
    # consensus messages -- for ``lease_duration`` seconds counted from
    # the owner's *send* clock, while each granting acceptor refuses (or
    # parks) ownership-moving Prepares for ``lease_duration`` counted
    # from its *receipt* clock.  Send time <= receipt time in real time,
    # so the owner's window ends before any granter's as long as clocks
    # agree to within ``lease_margin``, which the owner additionally
    # subtracts from its own window.  0.0 (the default) disables every
    # lease code path: no timers, no extra messages, no RNG draws --
    # decision logs stay byte-identical to the seed.
    lease_duration: float = 0.0
    # Conservative clock-skew margin: the owner stops serving reads
    # ``lease_margin`` before its lease nominally expires.  Must be >=
    # the worst pairwise clock skew for reads to be linearizable.
    lease_margin: float = 0.002
    # Idle renewal cadence as a fraction of ``lease_duration``; the
    # owner's heartbeat timer re-grants leases on owned objects that
    # accept traffic has not refreshed recently.
    lease_renew_fraction: float = 0.34
    # Exactly-once session table bound (satellite: 10^6 sessions must
    # not OOM a node): beyond ``session_cap`` live client entries the
    # least-recently-active session is evicted (counted in telemetry).
    # Entries are O(1) each -- a watermark plus the last cached result.
    session_cap: int = 65536
    # Latency-aware accept-quorum selection: when the quorum system
    # admits several accept quorums, send the first attempt of each
    # non-scoped Accept round only to the quorum minimising the worst
    # RTT from this node (plus ourselves), instead of broadcasting.
    # Retries always broadcast, so liveness never hinges on the
    # preferred quorum.  Requires ``quorum_rtt``: a full n x n matrix of
    # one-way latencies (seconds), identical on every node -- protocols
    # cannot see the network model, so the deployment passes its
    # topology in.  Off by default: broadcast, byte-identical to seed.
    nearest_accept: bool = False
    quorum_rtt: Optional[tuple] = None


@dataclass
class _PendingAccept:
    command: Optional[Command]  # retried on NACK when set
    to_decide: dict[Instance, Command]
    eps: dict[Instance, int]
    scoped: bool = False
    done: bool = False  # a NACK arrived; retry handling has run
    announced: bool = False  # Decide broadcast sent
    acked: set = field(default_factory=set)  # nodes whose AckAccept arrived
    # Batched rounds: every command of the batch, each re-coordinated
    # individually on NACK (``command`` stays None for them).
    batch: tuple[Command, ...] = ()
    # Lease bookkeeping: owner-clock send time of the Accept broadcast.
    # A positive ack renews the sender's grant from this timestamp (the
    # conservative end of the skew interval); 0.0 when leases are off.
    sent_at: float = 0.0


@dataclass
class _PendingPrepare:
    """An in-flight prepare round.

    ``kind`` is one of:

    - ``"acquisition"``: ownership acquisition for our own ``command``
      (Algorithm 4);
    - ``"gap"``: frontier recovery of one stalled instance
      (``command`` is None; unforced instances become no-ops);
    - ``"recover"``: atomic re-proposal of a forced multi-object
      ``command`` over its recorded instance set.
    """

    command: Optional[Command]
    eps: dict[Instance, int]
    kind: str = "acquisition"
    replies: dict[
        int, dict[Instance, tuple[Optional[Command], int, tuple[Instance, ...]]]
    ] = field(default_factory=dict)
    done: bool = False
    # Instances of objects we already owned when the round started (at
    # their current epochs): not prepared -- re-electing ourselves would
    # dethrone our own pipeline -- but included in the clean accept.
    extra_eps: dict[Instance, int] = field(default_factory=dict)
    # For kind == "recover": the command's authoritative full instance
    # set (this round may cover only its still-undecided subset).
    fins: tuple[Instance, ...] = ()
