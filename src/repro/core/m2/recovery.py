"""Gap and crash recovery (Section IV intro): healing stalled frontiers.

The mixin owns the periodic gap checker and the two recovery round
flavours it launches: instance-scoped gap fills (no-ops) and atomic
re-proposals of forced multi-object commands.
"""

from __future__ import annotations

from repro.consensus.commands import Command
from repro.core.messages import Instance


class RecoveryMixin:
    """Frontier recovery: gap rounds and forced-command re-proposals."""

    GAP_BATCH = 16

    def _recover_gap(self, l: str, position: int) -> None:
        """Prepare the stalled instances of ``l`` to either learn their
        pending commands or fill them with no-ops (crash recovery,
        Section IV intro).  Batched: one round covers every open
        position up to the highest decided one, so a burst of abandoned
        reservations heals in one shot instead of one per timeout."""
        self.stats["gap_recoveries"] += 1
        obj = self.state.obj(l)
        top = min(obj.max_decided(), position + self.GAP_BATCH)
        instances = [
            (l, p)
            for p in range(position, max(top, position) + 1)
            if p not in obj.decided
        ] or [(l, position)]
        self._prepare_round(None, instances, kind="gap")

    def _schedule_recover_command(
        self, command: Command, fins: tuple[Instance, ...]
    ) -> None:
        """Atomically re-propose a forced multi-object command over the
        full instance set its original accept round used.

        Re-deciding it at a single instance could split its decision
        across positions chosen at different times, which can knot the
        per-object delivery orders into a cycle -- so recovery always
        covers the recorded set.
        """
        if command.cid in self._active_recoveries:
            return
        self._active_recoveries.add(command.cid)

        def fire() -> None:
            remaining = [
                inst for inst in fins if self.state.decided_at(inst) is None
            ]
            if not remaining:
                self._active_recoveries.discard(command.cid)
                return
            if self._round_is_dead(command, set(fins)):
                # The command lost one of its instances to another
                # command: fill the leftovers as plain gaps (no-ops).
                self._active_recoveries.discard(command.cid)
                self._prepare_round(None, remaining, kind="gap")
                return
            self._prepare_round(command, remaining, kind="recover", fins=fins)

        jitter = self.config.retry_backoff * (0.5 + self.env.rng.random())
        self.env.set_timer(jitter, fire)

    # ------------------------------------------------------------------
    # Gap recovery timer
    # ------------------------------------------------------------------

    def _schedule_gap_check(self) -> None:
        period = self.config.gap_check_period * (0.75 + 0.5 * self.env.rng.random())

        def check() -> None:
            self._check_gaps()
            self._schedule_gap_check()

        self.env.set_timer(period, check)

    def _check_gaps(self) -> None:
        assert self.delivery is not None
        now = self.env.now()
        for l in list(self.state.gap_candidates):
            gap = self.delivery.undelivered_gap(l)
            if gap is None:
                self.state.gap_candidates.discard(l)
                self._gap_stall.pop(l, None)
                continue
            stalled = self._gap_stall.get(l)
            if stalled is None or stalled[0] != gap:
                # A frontier we have not seen stuck before (or it moved
                # since last time): start its stall clock.  The clock is
                # keyed on the frontier *position*, not on decision
                # activity (``last_progress``): a busy object keeps
                # deciding at higher slots the whole time its frontier
                # is wedged, and counting that as progress would starve
                # recovery exactly when ownership churn burns positions
                # under live traffic.
                self._gap_stall[l] = (gap, now)
                continue
            if now - stalled[1] >= self.config.gap_timeout:
                self._gap_stall[l] = (gap, now)  # rate-limit re-recovery
                self._recover_gap(l, gap)
