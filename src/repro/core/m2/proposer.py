"""Coordination and accept phases (Algorithms 1-2): the proposer side.

The mixin owns everything a node does for commands it coordinates:
picking instances, the fast/forward decision, the accept round and its
ack counting, retries, and proposer-side supervision.
"""

from __future__ import annotations

from typing import Optional

from repro.consensus.base import handles
from repro.consensus.commands import Command
from repro.core.messages import Accept, AckAccept, Decide, Forward, Instance
from repro.core.m2.config import _PendingAccept
from repro.core.policy import FORWARD


class ProposerMixin:
    """Algorithm 1 (coordination) + Algorithm 2's coordinator half."""

    # ------------------------------------------------------------------
    # Coordination phase (Algorithm 1)
    # ------------------------------------------------------------------

    def propose(self, command: Command) -> None:
        if self._intercept_propose(command):
            # Serving tier: a leased owner-local read, or a session
            # retry answered from the dedup cache -- either way the
            # command is complete with zero consensus messages.
            return
        self.policy.on_local_request(self.env.node_id, command)
        # In-flight gauge feeding the adaptive batch_wait: our own
        # proposals not yet fully decided (pruned in ``_decide``).
        self._inflight_cids.add(command.cid)
        self._coordinate(command, hops=0)
        self._supervise(command)

    def _supervise(self, command: Command) -> None:
        """Watch our own proposal until it is decided (liveness under
        message loss: a silently lost round never produces a NACK)."""
        if self.config.supervise_timeout <= 0:
            return
        period = self.config.supervise_timeout * (1.0 + 0.5 * self.env.rng.random())

        def check() -> None:
            if not self._fully_decided(command):
                self._coordinate(command, hops=0)
                self._supervise(command)

        self.env.set_timer(period, check)

    def _pick_instances(self, command: Command) -> dict[Instance, int]:
        """Choose the next free position per still-undecided object.

        Returns ``{(l, in): epoch}`` with the *current* epoch (fast
        path); the acquisition path overwrites the epochs.  Positions
        are reserved immediately so pipelined proposals on the same
        object never collide.
        """
        assigned = self._assigned.get(command.cid)
        if assigned is not None:
            fins = {(l, position) for l, (position, _e) in assigned.items()}
            if self._round_is_dead(command, fins):
                assigned = None  # provably unchoosable; safe to move
        if assigned is None:
            assigned = {}
            for l in sorted(command.ls):
                obj = self.state.obj(l)
                position = max(obj.next_slot, obj.appended + 1)
                # Remember the epoch the position was allocated under:
                # if the object's epoch moves on, the position may have
                # been touched by an interim owner and must be prepared
                # (phase 1) before any further accept.
                assigned[l] = (position, obj.epoch)
            self._assigned[command.cid] = assigned
        eps: dict[Instance, int] = {}
        for l, (position, _alloc_epoch) in assigned.items():
            if self.state.is_decided_for(l, command):
                continue
            obj = self.state.obj(l)
            obj.observe_position(position)
            eps[(l, position)] = obj.epoch
        return eps

    def _stale_instances(self, command: Command) -> set[Instance]:
        """Assigned instances whose object epoch moved since allocation."""
        assigned = self._assigned.get(command.cid) or {}
        stale = set()
        for l, (position, alloc_epoch) in assigned.items():
            if self.state.obj(l).epoch != alloc_epoch:
                stale.add((l, position))
        return stale

    def _coordinate(self, command: Command, hops: int) -> None:
        undecided = [
            l for l in command.ls if not self.state.is_decided_for(l, command)
        ]
        if not undecided:
            return

        me = self.env.node_id
        if all(self._is_current_owner(l) for l in undecided):
            eps = self._pick_instances(command)
            if eps and not self._stale_instances(command):
                self.stats["fast_path"] += 1
                self.note_path(command, "fast")
                if self.config.max_batch > 1:
                    # Positions are already reserved (in submission
                    # order) by _pick_instances; the round itself waits
                    # in the batch queue for company.
                    self._enqueue_fast(command)
                    return
                self._accept_phase(
                    command, eps, full_ins=self._full_ins(command, eps)
                )
                return
            if eps:
                # A pinned position outlived an ownership change: it may
                # have been touched at another epoch, so run phase 1.
                self._acquisition_phase(command)
            return

        if any(l in self._acquiring for l in undecided):
            # We are already acquiring (some of) these objects for an
            # earlier command; queue FIFO and re-coordinate once that
            # settles, rather than launching a second epoch war against
            # ourselves.  Preserving order here is what keeps a burst of
            # pipelined proposals delivered in submission order.
            self._deferred.append(command)
            return

        owners = {self.state.obj(l).owner for l in undecided}
        if (
            len(owners) == 1
            and None not in owners
            and me not in owners
            and hops < self.config.max_forward_hops
            and not self.policy.wants_single_owner
        ):
            (owner,) = owners
            self.stats["forwarded"] += 1
            self.note_path(command, "forward", hops=hops + 1)
            self.env.send(owner, Forward(command=command, hops=hops + 1))
            self._arm_forward_timeout(command)
            return

        # No usable single owner: the ownership policy decides between
        # reshuffling here or forwarding to a better-placed node
        # (Section IV-C: when-to-acquire is a pluggable, orthogonal
        # choice; the default acquires on demand, as in the paper).
        owner_map = {l: self._believed_owner(l) for l in undecided}
        action, target = self.policy.decide(me, command, owner_map)
        if (
            action == FORWARD
            and target is not None
            and target != me
            and hops < self.config.max_forward_hops
        ):
            self.stats["forwarded"] += 1
            self.note_path(command, "forward", hops=hops + 1)
            self.env.send(target, Forward(command=command, hops=hops + 1))
            self._arm_forward_timeout(command)
            return
        if any(owner is not None and owner != me for owner in owner_map.values()):
            # The policy chose to take over objects somebody else owns:
            # an ownership *migration*, as opposed to a first-touch
            # acquisition.  Geo benches and the telemetry layer count
            # these to show placement converging toward the traffic.
            self.stats["migrations"] += 1
            self.note("migration", cid=command.cid, objs=len(owner_map))
        self._acquisition_phase(command)

    @handles(Forward)
    def _on_forward(self, sender: int, msg: Forward) -> None:
        self.policy.on_forwarded_request(self.env.node_id, msg.command)
        self._coordinate(msg.command, hops=msg.hops)

    def _full_ins(
        self, command: Command, eps: dict[Instance, int]
    ) -> Optional[tuple[Instance, ...]]:
        """The command's authoritative full instance set, when the round
        at hand covers only part of it (siblings already decided)."""
        assigned = self._assigned.get(command.cid)
        if assigned is None or len(assigned) == len(eps):
            return None
        return tuple(
            (l, position) for l, (position, _epoch) in sorted(assigned.items())
        )

    def _drain_deferred(self) -> None:
        if not self._deferred:
            return
        queued, self._deferred = self._deferred, []
        for command in queued:
            self._coordinate(command, hops=0)

    def _believed_owner(self, l: str) -> Optional[int]:
        """The node the policy should treat as ``l``'s owner.

        Usually the recorded owner -- but while an acquisition is in
        flight the record still names the *old* owner, and a policy
        acting on it starts (or joins) an epoch war: the dethroned
        owner reads "we hold it: finish here", and a second would-be
        acquirer reads "steal it from the old owner" instead of
        forwarding to the one already taking over.  Epochs are striped
        ``k*N + node`` (ownership.py), so a raised epoch itself names
        the contender; when one is in flight (``epoch`` above the
        recorded ``owner_epoch``), report the contender and let the
        policy forward to where ownership is headed.  If the contender
        crashed mid-takeover, the forward timeout still falls back to
        acquisition.  Only the policy branch sees this view: the plain
        forward path keeps the recorded owners, byte-identical to the
        seed."""
        obj = self.state.obj(l)
        if obj.epoch > obj.owner_epoch:
            return obj.epoch % self.env.n_nodes
        return obj.owner

    def _is_current_owner(self, l: str) -> bool:
        """IsOwner(p_i, l): we acquired ``l`` and nobody has started a
        higher epoch since (a raised epoch means our leadership is being
        taken over, so fast-path rounds would only be refused)."""
        obj = self.state.obj(l)
        return (
            obj.owner == self.env.node_id
            and obj.owner_epoch == obj.epoch
            and obj.promised <= obj.epoch
        )

    def _arm_forward_timeout(self, command: Command) -> None:
        def on_timeout() -> None:
            if not self._fully_decided(command):
                # Take over: the owner may have crashed or lost ownership.
                self._acquisition_phase(command)

        jitter = 1.0 + 0.2 * self.env.rng.random()
        self.env.set_timer(self.config.forward_timeout * jitter, on_timeout)

    def _fully_decided(self, command: Command) -> bool:
        return all(self.state.is_decided_for(l, command) for l in command.ls)

    def _retry(self, command: Command) -> None:
        """Re-run the coordination phase after a randomised backoff.

        The backoff grows with the attempt count; this is the practical
        concession the paper makes in Section IV-C ("an unbounded
        sequence of restarts") -- safety never depends on it.
        """
        attempt = self._attempts.get(command.cid, 0) + 1
        self._attempts[command.cid] = attempt
        delay = self.config.retry_backoff * attempt * (0.5 + self.env.rng.random())

        def fire() -> None:
            if not self._fully_decided(command):
                self._coordinate(command, hops=0)

        self.env.set_timer(delay, fire)

    # ------------------------------------------------------------------
    # Fast-path batching
    # ------------------------------------------------------------------
    #
    # While this node owns all objects of its queued proposals, up to
    # ``max_batch`` of them coalesce into one multi-command Accept round
    # (single broadcast, single quorum, single Decide) -- the CAESAR /
    # Mencius leader-batching trick, which amortises the per-round
    # message cost that otherwise dominates at saturation.  Correctness
    # rides entirely on the unbatched machinery: instances were assigned
    # at enqueue time in submission order, the batch proposes exactly
    # the (instance -> command) pairs the sequential rounds would have,
    # and acceptors vote per instance, so the decided per-object total
    # order is identical to sequential rounds.

    def _effective_batch_wait(self) -> float:
        """How long the first queued command should wait for company.

        Fixed mode returns ``batch_wait`` untouched.  Adaptive mode
        self-tunes to the observed in-flight depth: with at most one of
        our proposals undecided there is nobody to coalesce with, so
        the wait is zero (flush immediately, no latency tax); with a
        deep pipeline the wait scales toward the full ``batch_wait``
        because the next proposals are already in flight and a fuller
        batch amortises the round cost further.
        """
        cfg = self.config
        if not cfg.batch_adaptive:
            return cfg.batch_wait
        depth = len(self._inflight_cids)
        if depth <= 1:
            return 0.0
        return cfg.batch_wait * min(1.0, depth / cfg.max_batch)

    def _enqueue_fast(self, command: Command) -> None:
        """Queue a fast-path command for the next batched Accept round."""
        if command.cid in self._batch_cids:
            return  # supervision re-coordinated a command already queued
        self._batch_cids.add(command.cid)
        self._batch.append(command)
        if len(self._batch) >= self.config.max_batch:
            self._flush_batch()
        elif self._batch_timer is None:
            wait = self._effective_batch_wait()
            if wait <= 0.0 and self.config.batch_adaptive:
                # Shallow pipeline: waiting cannot attract company.
                self._flush_batch()
                return

            def fire() -> None:
                self._batch_timer = None
                self._flush_batch()

            self._batch_timer = self.env.set_timer(wait, fire)

    def _flush_batch(self) -> None:
        """Emit one Accept round covering every still-eligible queued
        command; commands whose ownership or instances went stale while
        queued are re-coordinated individually, after a backoff.

        The backoff matters: a stale batch member means another node is
        (re)taking the object, and re-coordinating immediately answers
        every flush with a counter-acquisition -- two nodes can duel
        epochs indefinitely that way.  The randomised, attempt-scaled
        retry delay breaks the symmetry, exactly as it does for NACKed
        rounds on the unbatched path."""
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None
        queued, self._batch = self._batch, []
        self._batch_cids.clear()
        batch: list[Command] = []
        to_decide: dict[Instance, Command] = {}
        eps: dict[Instance, int] = {}
        cmd_ins: dict[tuple[int, int], tuple[Instance, ...]] = {}
        requeue: list[Command] = []
        for command in queued:
            undecided = [
                l for l in command.ls if not self.state.is_decided_for(l, command)
            ]
            if not undecided:
                continue
            if not all(self._is_current_owner(l) for l in undecided):
                requeue.append(command)
                continue
            cmd_eps = self._pick_instances(command)
            if not cmd_eps:
                continue
            if self._stale_instances(command):
                requeue.append(command)
                continue
            batch.append(command)
            for inst, epoch in cmd_eps.items():
                to_decide[inst] = command
                eps[inst] = epoch
            full = self._full_ins(command, cmd_eps)
            if full:
                cmd_ins[command.cid] = full
        if to_decide:
            self._send_accept_round(
                to_decide,
                eps,
                retry_command=batch[0] if len(batch) == 1 else None,
                cmd_ins=cmd_ins or None,
                batch=tuple(batch) if len(batch) > 1 else (),
            )
        for command in requeue:
            self._retry(command)

    # ------------------------------------------------------------------
    # Accept phase (Algorithm 2)
    # ------------------------------------------------------------------

    def _accept_phase(
        self,
        command: Command,
        eps: dict[Instance, int],
        full_ins: Optional[tuple[Instance, ...]] = None,
        scoped: bool = False,
    ) -> None:
        """Plain accept of ``command`` at all its instances (fast path,
        clean acquisitions, and full-set recoveries)."""
        cmd_ins = {command.cid: full_ins} if full_ins else None
        self._send_accept_round(
            {inst: command for inst in eps},
            eps,
            retry_command=command,
            cmd_ins=cmd_ins,
            scoped=scoped,
        )

    def _send_accept_round(
        self,
        to_decide: dict[Instance, Command],
        eps: dict[Instance, int],
        retry_command: Optional[Command],
        cmd_ins: Optional[dict[tuple[int, int], tuple[Instance, ...]]] = None,
        scoped: bool = False,
        batch: tuple[Command, ...] = (),
    ) -> None:
        req = self._next_req()
        self._pending_accepts[req] = _PendingAccept(
            command=retry_command,
            to_decide=dict(to_decide),
            eps={inst: eps[inst] for inst in to_decide},
            scoped=scoped,
            batch=batch,
            # Owner-clock send stamp: positive acks renew the sender's
            # lease grants from this (conservative) end of the window.
            sent_at=(
                self._lease_now() if self.config.lease_duration > 0.0 else 0.0
            ),
        )
        msg = Accept(
            req=req,
            to_decide=dict(to_decide),
            eps={inst: eps[inst] for inst in to_decide},
            cmd_ins=cmd_ins or {},
            scoped=scoped,
        )
        targets = self._accept_targets(retry_command, scoped)
        if targets is None:
            self.env.broadcast(msg)
        else:
            # Latency-aware quorum targeting: first attempts go to the
            # min-max-RTT accept quorum only; everyone else learns via
            # the Decide broadcast (and the learn-resend sweep).
            for dst in targets:
                self.env.send(dst, msg)

    @handles(AckAccept)
    def _on_ack_accept(self, sender: int, msg: AckAccept) -> None:
        if not msg.ok:
            pending = self._pending_accepts.get(msg.req)
            if pending is None or pending.done:
                return
            pending.done = True
            self.stats["accept_nacks"] += 1
            for (l, _position), _epoch in msg.eps.items():
                obj = self.state.obj(l)
                obj.epoch = max(obj.epoch, msg.max_rnd)
            # Failed recoveries must be re-runnable (by us or by the gap
            # checker); a leaked active flag would block them forever.
            for cmd in pending.to_decide.values():
                self._active_recoveries.discard(cmd.cid)
            if pending.command is not None:
                self._retry(pending.command)
            for cmd in pending.batch:
                self._retry(cmd)
            return

        if msg.coordinator == self.env.node_id:
            ours = self._pending_accepts.get(msg.req)
            if ours is not None:
                ours.acked.add(sender)
                if ours.sent_at and not ours.scoped:
                    # The acceptor absorbed our leadership round, which
                    # doubles as a lease grant on its side; mirror it.
                    self._record_lease_grants(sender, ours)

        # Count votes per instance; with ack_to_all every node runs this
        # and learns in two delays (Algorithm 3, lines 6-10); otherwise
        # only the coordinator does and the others learn via Decide.
        ready = True
        for inst, cid in msg.cids.items():
            voters = self.state.record_ack(inst, msg.eps[inst], cid, sender)
            if not self.quorums.is_accept_quorum(voters):
                ready = False
        if not ready:
            return

        pending = (
            self._pending_accepts.get(msg.req)
            if msg.coordinator == self.env.node_id
            else None
        )
        # The ack carries ids only; resolve the command bodies from the
        # coordinator's pending round or from our own accepted values
        # (a node that missed the Accept learns from the Decide instead).
        for inst, cid in msg.cids.items():
            command = pending.to_decide.get(inst) if pending is not None else None
            if command is None or command.cid != cid:
                inst_state = self.state.instances.get(inst)
                vdec = inst_state.vdec if inst_state is not None else None
                command = vdec if vdec is not None and vdec.cid == cid else None
            if command is not None:
                self._decide(inst, command)

        if pending is not None and not pending.announced:
            # Announce even if a NACK marked the round done earlier: a
            # quorum of ACKs means the values ARE chosen, and silence
            # here would strand the decision at this node alone.
            pending.announced = True
            pending.done = True
            for cmd in pending.to_decide.values():
                self.note("quorum", cid=cmd.cid)
            self.env.broadcast(
                Decide(to_decide=pending.to_decide), include_self=False
            )
            for cmd in pending.to_decide.values():
                self._active_recoveries.discard(cmd.cid)
            self._arm_learn_resend(msg.req)

    def _arm_learn_resend(self, req: int, attempt: int = 1) -> None:
        """Chase nodes whose ack for an announced round never arrived.

        A node that missed both the round's Accept and its Decide holds
        no trace of the instance, so its own gap recovery can never
        trigger; re-sending both (they travel in one flush batch) both
        decides it there outright and elicits the missing ack.  Stops
        as soon as every node acked, if a decision was superseded
        (laggards then heal via gap recovery on the activity the resent
        Accept recorded), or after the configured attempt cap."""
        cfg = self.config
        if cfg.learn_resend_timeout <= 0 or attempt > cfg.learn_resend_attempts:
            return

        def fire() -> None:
            pending = self._pending_accepts.get(req)
            if pending is None or len(pending.acked) >= self.env.n_nodes:
                return
            for inst, cmd in pending.to_decide.items():
                decided = self.state.decided_at(inst)
                if decided is None or decided.cid != cmd.cid:
                    return
            for dst in self.env.nodes:
                if dst not in pending.acked:
                    self.env.send(
                        dst,
                        Accept(
                            req=req,
                            to_decide=pending.to_decide,
                            eps=pending.eps,
                            cmd_ins={},
                            scoped=pending.scoped,
                        ),
                    )
                    self.env.send(dst, Decide(to_decide=pending.to_decide))
            self._arm_learn_resend(req, attempt + 1)

        jitter = 1.0 + 0.5 * self.env.rng.random()
        self.env.set_timer(cfg.learn_resend_timeout * attempt * jitter, fire)
