"""Pluggable quorum systems for M2Paxos (Fast Flexible Paxos sizing).

The seed protocol hard-coded one quorum: a classic majority, used both
for counting ``AckAccept`` votes (phase 2, including the fast path) and
for counting ``AckPrepare`` replies (phase 1, acquisitions and
recovery).  This module makes the pair pluggable:

- :class:`MajorityQuorums` -- the seed behaviour, both phases at
  ``floor(n/2) + 1``.  The default everywhere; decision logs stay
  byte-identical to the seed.
- :class:`FlexibleQuorums` -- explicit phase-1/phase-2 sizes traded
  against each other per *Flexible Paxos* / *Fast Flexible Paxos*:
  any ``prepare + accept > n`` split is safe, so a WAN deployment can
  shrink the latency-critical accept quorum (every fast-path round) by
  growing the rare prepare quorum (acquisitions only).
- :class:`ZoneQuorums` -- WPaxos-style grid quorums over a zone
  assignment: an accept quorum is a per-zone majority in ``Z - f_Z``
  zones, a prepare quorum a per-zone majority in ``f_Z + 1`` zones.
  Any two such quorums share a zone (``(f_Z+1) + (Z-f_Z) > Z``) and two
  majorities of one zone intersect, so the intersection condition holds
  structurally while tolerating ``f_Z`` whole-zone failures.

Why the *pairwise* classic∩fast condition is the load-bearing one here:
in Fast Paxos (SNIPPETS.md FastPaxos.tla) any two fast quorums and any
classic quorum must share an acceptor, because distinct proposers may
race values into the *same* fast round.  M2Paxos stripes epochs
``k*N + node_id`` (see ``OwnershipMixin._next_epoch``), so every accept
round -- fast path included -- has a unique coordinator and same-round
collisions cannot exist; what safety needs is exactly the Flexible
Paxos condition that every prepare quorum intersects every accept
quorum.  :func:`check_intersections` verifies that for a configured
system; :func:`check_fast_collision_intersections` additionally reports
the stricter FastPaxos triple condition for systems meant to serve
uncoordinated fast rounds.  ``repro modelcheck`` drives both, plus a
state-space search under the configured families (`core/modelcheck.py`).
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from itertools import combinations, product
from typing import Iterable, Optional


class QuorumSystem(ABC):
    """A (prepare, accept) quorum family pair for one cluster size.

    Instances are specs until :meth:`build` binds them to a concrete
    cluster size ``n`` (and validates the intersection condition); the
    bound copy is what the protocol queries.  Specs are cheap immutable
    value objects, safe to share between the nodes of a cluster -- each
    node queries, never mutates.
    """

    name: str = "quorum"
    n: Optional[int] = None

    def build(self, n: int) -> "QuorumSystem":
        """Bind to a cluster of ``n`` nodes, validating safety."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        bound = copy.copy(self)
        bound.n = n
        bound._validate()
        problems = check_intersections(bound)
        if problems:
            raise ValueError(
                f"{bound.describe()} violates the prepare/accept "
                f"intersection condition: {problems[0]}"
            )
        return bound

    def _validate(self) -> None:
        """Subclass hook: parameter checks against the bound ``n``."""

    # -- membership predicates (the protocol's hot-path queries) -------

    @abstractmethod
    def is_accept_quorum(self, voters: Iterable[int]) -> bool:
        """Phase-2 quorum test: do ``voters`` decide an accept round?"""

    @abstractmethod
    def is_prepare_quorum(self, voters: Iterable[int]) -> bool:
        """Phase-1 quorum test: do ``voters`` complete a prepare round?"""

    # -- family enumeration (modelcheck / validation) ------------------

    @abstractmethod
    def accept_quorums(self) -> list[frozenset[int]]:
        """The minimal accept (classic-phase-2 / fast-path) quorums."""

    @abstractmethod
    def prepare_quorums(self) -> list[frozenset[int]]:
        """The minimal prepare (classic-phase-1) quorums."""

    def describe(self) -> str:
        return f"{self.name}(n={self.n})"


class MajorityQuorums(QuorumSystem):
    """The seed's hard-coded system: classic majority for both phases."""

    name = "majority"

    def _size(self) -> int:
        assert self.n is not None
        return self.n // 2 + 1

    def _validate(self) -> None:
        pass

    def is_accept_quorum(self, voters) -> bool:
        return len(set(voters)) >= self._size()

    def is_prepare_quorum(self, voters) -> bool:
        return len(set(voters)) >= self._size()

    def accept_quorums(self) -> list[frozenset[int]]:
        assert self.n is not None
        return [frozenset(q) for q in combinations(range(self.n), self._size())]

    def prepare_quorums(self) -> list[frozenset[int]]:
        return self.accept_quorums()

    def describe(self) -> str:
        if self.n is None:
            return "majority"
        return f"majority(n={self.n}, quorum={self._size()})"


class FlexibleQuorums(QuorumSystem):
    """Explicit ``(prepare, accept)`` sizes per Fast Flexible Paxos.

    ``prepare + accept > n`` is required (checked at :meth:`build`):
    every phase-1 quorum then overlaps every phase-2 quorum, which is
    the whole safety argument for coordinated rounds.  The interesting
    WAN configuration is ``accept < n//2 + 1``: the fast path waits for
    fewer, nearer acks on *every* command, paid for by larger prepare
    quorums on the rare ownership changes.
    """

    name = "flexible"

    def __init__(self, prepare: int, accept: int, unsafe: bool = False) -> None:
        if prepare < 1 or accept < 1:
            raise ValueError("quorum sizes must be >= 1")
        self.prepare = prepare
        self.accept = accept
        # ``unsafe=True`` skips the intersection validation -- for tests
        # that need a broken system to prove the checkers have teeth.
        self.unsafe = unsafe

    def build(self, n: int) -> "QuorumSystem":
        if not self.unsafe:
            return super().build(n)
        bound = copy.copy(self)
        bound.n = n
        bound._validate()
        return bound

    def _validate(self) -> None:
        assert self.n is not None
        if self.prepare > self.n or self.accept > self.n:
            raise ValueError(
                f"quorum sizes ({self.prepare}, {self.accept}) exceed "
                f"cluster size {self.n}"
            )

    def is_accept_quorum(self, voters) -> bool:
        return len(set(voters)) >= self.accept

    def is_prepare_quorum(self, voters) -> bool:
        return len(set(voters)) >= self.prepare

    def accept_quorums(self) -> list[frozenset[int]]:
        assert self.n is not None
        return [frozenset(q) for q in combinations(range(self.n), self.accept)]

    def prepare_quorums(self) -> list[frozenset[int]]:
        assert self.n is not None
        return [frozenset(q) for q in combinations(range(self.n), self.prepare)]

    def describe(self) -> str:
        return (
            f"flexible(n={self.n}, prepare={self.prepare}, "
            f"accept={self.accept})"
        )


class ZoneQuorums(QuorumSystem):
    """WPaxos-flavoured grid quorums over a zone assignment.

    ``zones[i]`` is the zone of node ``i``.  With ``Z`` distinct zones
    and zone-fault tolerance ``f_Z`` (default ``(Z-1)//2``):

    - an **accept** quorum holds a per-zone majority in at least
      ``Z - f_Z`` distinct zones;
    - a **prepare** quorum holds a per-zone majority in at least
      ``f_Z + 1`` distinct zones.

    ``(f_Z+1) + (Z-f_Z) = Z+1 > Z`` forces a common zone, and two
    majorities of one zone intersect -- the intersection condition by
    construction.  The geo win: an accept quorum can be assembled from
    the ``Z - f_Z`` *nearest* zones, and the cluster survives ``f_Z``
    whole-zone outages.
    """

    name = "zone"

    def __init__(self, zones, zone_faults: Optional[int] = None) -> None:
        self.zones = tuple(zones)
        if not self.zones:
            raise ValueError("zones must be non-empty")
        self._members: dict[int, list[int]] = {}
        for node, zone in enumerate(self.zones):
            self._members.setdefault(zone, []).append(node)
        n_zones = len(self._members)
        if zone_faults is None:
            zone_faults = (n_zones - 1) // 2
        if not 0 <= zone_faults < n_zones:
            raise ValueError(
                f"zone_faults must be in [0, {n_zones - 1}], got {zone_faults}"
            )
        self.zone_faults = zone_faults
        self._accept_zones = n_zones - zone_faults
        self._prepare_zones = zone_faults + 1

    def _validate(self) -> None:
        assert self.n is not None
        if len(self.zones) != self.n:
            raise ValueError(
                f"zone assignment covers {len(self.zones)} nodes, "
                f"cluster has {self.n}"
            )

    def _zones_with_majority(self, voters: set[int]) -> int:
        count = 0
        for members in self._members.values():
            inside = sum(1 for node in members if node in voters)
            if inside >= len(members) // 2 + 1:
                count += 1
        return count

    def is_accept_quorum(self, voters) -> bool:
        return self._zones_with_majority(set(voters)) >= self._accept_zones

    def is_prepare_quorum(self, voters) -> bool:
        return self._zones_with_majority(set(voters)) >= self._prepare_zones

    def _family(self, zones_needed: int) -> list[frozenset[int]]:
        quorums: set[frozenset[int]] = set()
        zone_ids = sorted(self._members)
        for chosen in combinations(zone_ids, zones_needed):
            majorities_per_zone = []
            for zone in chosen:
                members = self._members[zone]
                size = len(members) // 2 + 1
                majorities_per_zone.append(
                    [frozenset(c) for c in combinations(members, size)]
                )
            for parts in product(*majorities_per_zone):
                quorums.add(frozenset().union(*parts))
        return sorted(quorums, key=sorted)

    def accept_quorums(self) -> list[frozenset[int]]:
        return self._family(self._accept_zones)

    def prepare_quorums(self) -> list[frozenset[int]]:
        return self._family(self._prepare_zones)

    def describe(self) -> str:
        return (
            f"zone(n={self.n}, zones={len(self._members)}, "
            f"f_Z={self.zone_faults})"
        )


def check_intersections(system: QuorumSystem) -> list[str]:
    """The classic∩fast condition: every prepare (classic, phase-1)
    quorum must intersect every accept (fast-path, phase-2) quorum.

    This is exactly what M2Paxos safety rests on -- a new owner's
    prepare must see any value a phase-2 quorum may have chosen -- and
    it is the Flexible Paxos relaxation of FastPaxos.tla's assumption
    (the triple condition is only needed for *uncoordinated* fast
    rounds, which striped epochs rule out; see
    :func:`check_fast_collision_intersections`).  Returns a list of
    human-readable violations, empty when the system is safe.
    """
    problems = []
    accepts = system.accept_quorums()
    for prepare in system.prepare_quorums():
        for accept in accepts:
            if not prepare & accept:
                problems.append(
                    f"prepare quorum {sorted(prepare)} and accept quorum "
                    f"{sorted(accept)} are disjoint"
                )
    return problems


def check_fast_collision_intersections(system: QuorumSystem) -> list[str]:
    """FastPaxos.tla's full condition: every classic quorum must
    intersect every *pair* of fast quorums.

    Required only when distinct proposers can race values into the same
    fast round (classic Fast Paxos's any-value rounds).  M2Paxos never
    runs such rounds, so a system may legitimately fail this while
    passing :func:`check_intersections`; the modelcheck CLI reports it
    for information.
    """
    problems = []
    accepts = system.accept_quorums()
    for prepare in system.prepare_quorums():
        for f1, f2 in combinations(accepts, 2):
            if not prepare & f1 & f2:
                problems.append(
                    f"classic {sorted(prepare)} ∩ fast {sorted(f1)} ∩ "
                    f"fast {sorted(f2)} is empty"
                )
                break  # one witness per classic quorum keeps output sane
    return problems
