"""Adaptive protocol switching (the paper's Section IV-C extension).

"To keep the performance consistent across varying workloads, we could
use the approach described in [28] to combine M2PAXOS with algorithms
that perform well on workloads not favorable to M2PAXOS.  For example,
we could obtain an algorithm that dynamically switches between M2PAXOS
and MultiPaxos according to the workload characteristics."

This module implements that hybrid.  Both constituent protocols run on
every node; an epoch-per-mode regime keeps them from interfering:

- commands proposed in mode k are tagged with k and handled by that
  mode's protocol instance;
- every node monitors its local conflict signals (the fraction of
  M2Paxos proposals that needed the acquisition path over a sliding
  window);
- when the rate crosses ``to_fallback`` the node votes to switch; a
  deterministic coordinator (node 0) decides mode changes and announces
  them through the *current* mode's consensus (a mode-change command),
  so every replica switches at the same point in the delivery order --
  the linearizable handover of [28];
- delivery order is: all commands of mode k, then the mode-change
  marker, then mode k+1.  Commands proposed in an old mode after the
  switch are re-proposed in the new one.

The switcher is itself a :class:`Protocol`, so it runs under the
simulator and the asyncio runtime unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.consensus.base import Env, Message, Protocol, ProtocolCosts, handles
from repro.consensus.commands import Command
from repro.consensus.multipaxos import MultiPaxos, MultiPaxosConfig
from repro.core.protocol import M2Paxos, M2PaxosConfig

MODE_M2 = "m2paxos"
MODE_MP = "multipaxos"

_MODE_MARKER = "__mode_switch__"


@dataclass(frozen=True)
class Tagged(Message):
    """Envelope binding an inner protocol message to a mode."""

    mode: str
    inner: Message


@dataclass(frozen=True)
class SwitchVote(Message):
    """A node's signal to the coordinator that its conflict rate crossed
    the threshold for ``want`` mode."""

    want: str
    conflict_rate: float


@dataclass(frozen=True)
class SwitcherConfig:
    window: int = 64  # proposals per conflict-rate sample
    to_fallback: float = 0.35  # acquisition fraction that trips M2 -> MP
    to_fast: float = 0.05  # fraction below which MP -> M2
    min_votes: int = 1  # votes the coordinator needs
    check_period: float = 0.25
    # Hysteresis: minimum time in a mode before voting to leave it, and
    # a full sample window before any verdict -- prevents flapping right
    # after a switch clears the window.
    min_dwell: float = 1.0


class _SubEnv(Env):
    """Env adapter: wraps a sub-protocol's traffic in mode envelopes."""

    def __init__(self, switcher: "AdaptiveSwitcher", mode: str) -> None:
        self._switcher = switcher
        self._mode = mode
        self.node_id = switcher.env.node_id
        self.n_nodes = switcher.env.n_nodes

    def _transmit(self, dst: int, message: Message) -> None:
        self._switcher.env.send(dst, Tagged(mode=self._mode, inner=message))

    def send(self, dst: int, message: Message) -> None:
        # Always wrap-and-forward immediately: batching happens in the
        # switcher's own Env, whose outbox this send lands in.
        self._transmit(dst, message)

    def set_timer(self, delay, callback):
        return self._switcher.env.set_timer(delay, callback)

    def now(self) -> float:
        return self._switcher.env.now()

    def _deliver(self, command: Command) -> None:
        self._switcher._on_sub_deliver(self._mode, command)

    def observe(self, kind: str, **fields) -> None:
        # Forward structured notes (path / decide / epoch_bump / ...) to
        # the *outer* env, where observers are attached -- without this,
        # sub-protocol decision paths are invisible to the obs layer.
        self._switcher.env.observe(kind, **fields)

    @property
    def rng(self):
        return self._switcher.env.rng


class AdaptiveSwitcher(Protocol):
    """M2Paxos when the workload is partitionable, Multi-Paxos when not."""

    costs = ProtocolCosts(base_cost=160e-6, serial_fraction=0.05)

    def __init__(
        self,
        config: Optional[SwitcherConfig] = None,
        m2_config: Optional[M2PaxosConfig] = None,
        mp_config: Optional[MultiPaxosConfig] = None,
    ) -> None:
        super().__init__()
        self.config = config or SwitcherConfig()
        self._m2 = M2Paxos(m2_config)
        self._mp = MultiPaxos(mp_config)
        self.mode = MODE_M2
        self._mode_seq = 0
        self._pending: dict[tuple[int, int], Command] = {}
        self._delivered: set[tuple[int, int]] = set()
        # Conflict-rate window: (time, sample); 1 = needed acquisition
        # (or non-local in MP mode), 0 = fast/forward.  Samples expire,
        # so a quiet period can never trigger a switch on stale data.
        self._samples: list[tuple[float, int]] = []
        self._marker_seq = 0
        self._marker_pending = False
        self._last_switch_at = 0.0
        # Locality proxy while in Multi-Paxos mode: when another node's
        # command last touched each object (from the delivered stream).
        self._foreign_touch: dict[str, float] = {}
        self.stats = {"switches": 0, "votes_sent": 0, "health_events": 0}

    # ------------------------------------------------------------------

    def bind(self, env: Env) -> None:
        super().bind(env)
        self._m2.bind(_SubEnv(self, MODE_M2))
        self._mp.bind(_SubEnv(self, MODE_MP))

    def on_start(self) -> None:
        self._m2.on_start()
        self._mp.on_start()
        self._schedule_check()

    @property
    def coordinator(self) -> int:
        return 0

    def _sub(self, mode: str) -> Protocol:
        return self._m2 if mode == MODE_M2 else self._mp

    # ------------------------------------------------------------------
    # Propose path + conflict monitoring
    # ------------------------------------------------------------------

    def propose(self, command: Command) -> None:
        self._pending[command.cid] = command
        before = self._m2.stats["acquisitions"]
        self._sub(self.mode).propose(command)
        if self.mode == MODE_M2:
            sample = 1 if self._m2.stats["acquisitions"] > before else 0
        else:
            # In Multi-Paxos mode: would this command have been
            # non-local?  Objects recently touched by another proposer
            # are the contention M2Paxos would pay for.
            horizon = self.env.now() - self.SAMPLE_TTL
            sample = (
                1
                if any(
                    self._foreign_touch.get(l, -1.0) >= horizon
                    for l in command.ls
                )
                else 0
            )
        self._samples.append((self.env.now(), sample))
        if len(self._samples) > self.config.window:
            self._samples.pop(0)

    SAMPLE_TTL = 2.0

    def _fresh_samples(self) -> list[int]:
        horizon = self.env.now() - self.SAMPLE_TTL
        return [s for (t, s) in self._samples if t >= horizon]

    def conflict_rate(self) -> float:
        fresh = self._fresh_samples()
        if not fresh:
            return 0.0
        return sum(fresh) / len(fresh)

    def _schedule_check(self) -> None:
        period = self.config.check_period * (0.8 + 0.4 * self.env.rng.random())

        def check() -> None:
            self._evaluate()
            self._schedule_check()

        self.env.set_timer(period, check)

    def _evaluate(self) -> None:
        fresh = self._fresh_samples()
        if len(fresh) < self.config.window:
            return  # not enough recent evidence since the last switch
        if self.env.now() - self._last_switch_at < self.config.min_dwell:
            return
        rate = sum(fresh) / len(fresh)
        want = None
        if self.mode == MODE_M2 and rate >= self.config.to_fallback:
            want = MODE_MP
        elif self.mode == MODE_MP and rate <= self.config.to_fast:
            want = MODE_M2
        if want is None:
            return
        self.stats["votes_sent"] += 1
        self.env.send(self.coordinator, SwitchVote(want=want, conflict_rate=rate))

    def on_health_event(self, event) -> None:
        """Consume a live-telemetry :class:`HealthEvent`.

        The :class:`~repro.obs.telemetry.health.HealthDetector` sees the
        whole cluster's decision paths per interval, so a ``contention``
        event is direct evidence of the acquisition-path regime -- vote
        to fall back to Multi-Paxos immediately instead of waiting for a
        full local sample window.  Dwell hysteresis still applies, and
        the coordinator still decides through the current mode's
        consensus, so the handover stays linearizable.
        """
        self.stats["health_events"] += 1
        if event.kind != "contention" or self.mode != MODE_M2:
            return
        if self.env.now() - self._last_switch_at < self.config.min_dwell:
            return
        rate = float(event.details.get("acquisition_ratio", 1.0))
        self.stats["votes_sent"] += 1
        self.env.send(
            self.coordinator, SwitchVote(want=MODE_MP, conflict_rate=rate)
        )

    @handles(SwitchVote)
    def _on_vote(self, sender: int, msg: SwitchVote) -> None:
        if self.env.node_id != self.coordinator:
            return
        if msg.want == self.mode or self._marker_pending:
            return
        self._marker_pending = True
        # Announce the switch through the *current* mode's consensus so
        # every replica changes mode at the same delivery position.
        self._marker_seq += 1
        marker = Command.make(
            self.env.node_id,
            -(1_000_000 + self._marker_seq),
            [_MODE_MARKER],
            payload_bytes=8,
        )
        self._pending[marker.cid] = marker
        self._sub(self.mode).propose(marker)

    # ------------------------------------------------------------------
    # Delivery + mode change
    # ------------------------------------------------------------------

    def _on_sub_deliver(self, mode: str, command: Command) -> None:
        if _MODE_MARKER in command.ls:
            if mode == self.mode:
                self._switch_from(mode)
            return
        if command.cid in self._delivered:
            return
        self._delivered.add(command.cid)
        self._pending.pop(command.cid, None)
        if command.proposer != self.env.node_id:
            now = self.env.now()
            for l in command.ls:
                self._foreign_touch[l] = now
        self.env.deliver(command)

    def _switch_from(self, old_mode: str) -> None:
        self.mode = MODE_MP if old_mode == MODE_M2 else MODE_M2
        self._mode_seq += 1
        self._samples.clear()
        self._last_switch_at = self.env.now()
        self._marker_pending = False
        self.stats["switches"] += 1
        # Re-propose our still-undelivered commands in the new mode.
        for command in list(self._pending.values()):
            if _MODE_MARKER not in command.ls:
                self._sub(self.mode).propose(command)

    # ------------------------------------------------------------------

    @handles(Tagged)
    def _on_tagged(self, sender: int, msg: Tagged) -> None:
        self._sub(msg.mode).on_message(sender, msg.inner)

    def processing_cost(self, message):
        if isinstance(message, Tagged):
            return self._sub(message.mode).processing_cost(message.inner)
        return self.costs.base_cost, self.costs.serial_fraction
