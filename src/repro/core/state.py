"""Per-node M2Paxos bookkeeping (Section V-A of the paper).

The paper's multidimensional arrays become dictionaries keyed by object
id or by instance ``(l, in)``; defaults mirror the paper's initial
values (epochs/rounds 0, votes NULL, owners NULL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.consensus.commands import Command
from repro.core.messages import Instance


@dataclass
class ObjectState:
    """Everything node-local about one object ``l``.

    ``epoch``       -- ``Epoch[l]``: current epoch number observed.
    ``promised``    -- object-level promise: the highest epoch this node
                       has acknowledged a PREPARE or ACCEPT for on this
                       object.  Because the owner pipelines commands
                       into *fresh* instances (whose per-instance
                       ``rnd`` is still 0), leadership must be enforced
                       at the object level, exactly as Multi-Paxos
                       enforces it per-log: accepts below ``promised``
                       are refused, making the owner of each epoch
                       unique.
    ``owner``       -- ``Owners[l]``: believed current owner (or None).
    ``owner_epoch`` -- epoch at which ``owner`` acquired the object; a
                       node is *currently* owner only while no higher
                       epoch has been observed.
    ``appended``    -- ``LastDecided[l]``: last position whose command
                       has been appended to the local C-struct.
    ``next_slot``   -- the next position this node would propose at; it
                       is kept ahead of every position the node has seen
                       used (decided, accepted, or prepared), which is
                       how the owner pipelines commands on one object
                       without self-collision.
    """

    epoch: int = 0
    promised: int = 0
    owner: Optional[int] = None
    owner_epoch: int = 0
    appended: int = 0
    next_slot: int = 1
    decided: dict[int, Command] = field(default_factory=dict)
    last_progress: float = 0.0  # for gap-recovery timeouts
    # Acceptor-side read-lease grant (serving tier; inert unless the
    # config enables leases).  While ``lease_until`` (this node's clock)
    # lies in the future, ownership-moving Prepares from nodes other
    # than ``lease_holder`` are parked rather than promised, which is
    # what makes the holder's local reads linearizable.  Deliberately
    # volatile: a restarted acceptor instead refuses early promises for
    # one full lease window (the lease blackout), so forgetting grants
    # across a crash can never un-protect a live lease.
    lease_holder: Optional[int] = None
    lease_epoch: int = 0
    lease_until: float = 0.0
    # Serving-tier read frontier: count of non-noop commands delivered
    # on this object, the "result" a leased local read observes (and
    # what the chaos stale-read audit compares against the decided
    # write log).  Maintained unconditionally at append time so session
    # results stay a pure function of the delivered sequence.
    reads_frontier: int = 0

    def observe_position(self, position: int) -> None:
        """Keep ``next_slot`` strictly ahead of any used position."""
        if position >= self.next_slot:
            self.next_slot = position + 1

    def max_decided(self) -> int:
        return max(self.decided, default=0)


@dataclass
class InstanceState:
    """Acceptor-side state for one instance ``(l, in)``.

    ``rnd``  -- ``Rnd[l][in]``: highest epoch participated in.
    ``rdec`` -- ``Rdec[l][in]``: highest epoch a command was accepted in.
    ``vdec`` -- ``Vdec[l][in]``: the command accepted at ``rdec``.
    ``vdec_ins`` -- the full instance set of the accept round that
    placed ``vdec`` here.  Recovery of a multi-object command must
    re-propose it over this *whole* set: re-deciding it at a single
    instance could leave it decided at positions chosen at different
    times on different objects, which can knot the per-object delivery
    orders into a cycle (see DESIGN.md).
    """

    rnd: int = 0
    rdec: int = 0
    vdec: Optional[Command] = None
    vdec_ins: tuple[Instance, ...] = ()


class M2PaxosState:
    """Aggregates the dictionaries and provides defaulting accessors."""

    def __init__(self, home_hint=None) -> None:
        # ``home_hint(l) -> node id`` statically assigns epoch-0
        # ownership (all nodes must share the same deterministic map).
        # Equivalent to Multi-Paxos's pre-agreed initial leader, per
        # object: safe because the epoch-0 owner is unique by
        # construction, and any node can still take over by preparing
        # epoch 1.  Used for workloads like TPC-C where the application
        # declares which node "homes" each object.
        self.home_hint = home_hint
        self.objects: dict[str, ObjectState] = {}
        self.instances: dict[Instance, InstanceState] = {}
        # Per-object index of positions with acceptor activity, so a
        # prepare can report the object's tail without scanning every
        # instance in the system.
        self.active_positions: dict[str, set[int]] = {}
        # Objects whose delivery frontier might be stuck; the gap checker
        # scans only these (workloads like TPC-C touch 10^4..10^5 objects,
        # so scanning everything every period would dominate).
        self.gap_candidates: set[str] = set()
        # Acks[l][in][e] of the paper, keyed further by command id so a
        # quorum is only counted for matching votes:
        # acks[(instance, epoch, cid)] = set of voter node ids.
        self.acks: dict[tuple[Instance, int, tuple[int, int]], set[int]] = {}

    def obj(self, l: str) -> ObjectState:
        state = self.objects.get(l)
        if state is None:
            state = ObjectState()
            if self.home_hint is not None:
                state.owner = self.home_hint(l)
            self.objects[l] = state
        return state

    def inst(self, instance: Instance) -> InstanceState:
        state = self.instances.get(instance)
        if state is None:
            state = InstanceState()
            self.instances[instance] = state
            self.active_positions.setdefault(instance[0], set()).add(instance[1])
        return state

    def positions_with_activity(self, l: str, at_or_above: int) -> list[int]:
        """Positions >= ``at_or_above`` of ``l`` with any recorded
        activity (acceptance or decision) -- the tail a new owner's
        phase 1 must learn about."""
        positions = {
            p
            for p in self.active_positions.get(l, ())
            if p >= at_or_above
        }
        obj = self.objects.get(l)
        if obj is not None:
            positions.update(p for p in obj.decided if p >= at_or_above)
        return sorted(positions)

    def decided_at(self, instance: Instance) -> Optional[Command]:
        l, position = instance
        state = self.objects.get(l)
        if state is None:
            return None
        return state.decided.get(position)

    def is_decided_for(self, l: str, command: Command) -> bool:
        """``exists in : Decided[l][in] = c`` (Algorithm 1, line 2)."""
        state = self.objects.get(l)
        if state is None:
            return False
        return any(c.cid == command.cid for c in state.decided.values())

    def record_ack(
        self, instance: Instance, epoch: int, cid: tuple[int, int], voter: int
    ) -> set[int]:
        """Register one ACKACCEPT vote; return the voter set so far.

        Returning the set (not just its size) lets membership-based
        quorum systems (zone grids) judge the round, not only counting
        ones.
        """
        key = (instance, epoch, cid)
        voters = self.acks.setdefault(key, set())
        voters.add(voter)
        return voters
