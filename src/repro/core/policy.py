"""Ownership policies: *when* to take an object over (Section IV-C).

"In this paper we do not focus on defining optimized policies that
regulate when an object ownership is better to change because we
believe it is an orthogonal problem ... In our implementation we use a
simple on-demand policy that attempts to change the ownership when a
request is issued by the application."

This module makes that decision point pluggable:

- :class:`OnDemandPolicy` -- the paper's default: acquire whenever a
  command needs objects with no usable single owner.
- :class:`StickyPolicy` -- a Lilac-TM-flavoured migration policy:
  prefer forwarding to the current owner of the *majority* of the
  command's objects, and acquire only after the same object has been
  requested locally ``threshold`` times in a row -- objects migrate to
  where their traffic actually is, and one-off remote accesses do not
  bounce ownership around.

A policy only *redirects* commands (forward vs acquire); safety is
entirely the protocol's, so any policy is safe by construction.

Policies hold per-node state (request streaks): construct one instance
per protocol instance -- do not share a policy object between the nodes
of an in-process cluster.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.consensus.commands import Command

ACQUIRE = "acquire"
FORWARD = "forward"


class OwnershipPolicy(ABC):
    """Decides how to handle a command with no usable single owner."""

    @abstractmethod
    def decide(
        self,
        node_id: int,
        command: Command,
        owners: dict[str, Optional[int]],
    ) -> tuple[str, Optional[int]]:
        """Return ``(ACQUIRE, None)`` or ``(FORWARD, target_node)``.

        ``owners`` maps each *undecided* object of the command to its
        believed current owner (possibly None).  Called only when the
        plain paths did not apply: the proposer is not the owner of
        everything, and no single other node owns everything.
        """

    def on_local_request(self, node_id: int, command: Command) -> None:
        """Observe a local proposal (for request-counting policies)."""


class OnDemandPolicy(OwnershipPolicy):
    """The paper's default: always acquire."""

    def decide(self, node_id, command, owners):
        return ACQUIRE, None


class StickyPolicy(OwnershipPolicy):
    """Majority-owner forwarding with a migration threshold.

    ``threshold`` local requests for an object (without an intervening
    decision elsewhere) are required before this node will steal it; in
    the meantime commands are forwarded to whichever node owns the most
    of their objects (it acquires the stragglers itself, which is
    cheaper than a full reshuffle when most objects already co-reside).
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self._streak: dict[str, int] = {}

    def on_local_request(self, node_id: int, command: Command) -> None:
        for obj in command.ls:
            self._streak[obj] = self._streak.get(obj, 0) + 1

    def decide(self, node_id, command, owners):
        known = [owner for owner in owners.values() if owner is not None]
        hot_enough = all(
            self._streak.get(obj, 0) >= self.threshold for obj in owners
        )
        if hot_enough or not known:
            # Earned the migration (or nobody owns anything yet).
            for obj in owners:
                self._streak[obj] = 0
            return ACQUIRE, None
        tally: dict[int, int] = {}
        for owner in known:
            tally[owner] = tally.get(owner, 0) + 1
        majority_owner = max(tally, key=lambda node: (tally[node], -node))
        if majority_owner == node_id:
            return ACQUIRE, None  # we already hold the majority: finish it
        return FORWARD, majority_owner
