"""Ownership policies: *when* to take an object over (Section IV-C).

"In this paper we do not focus on defining optimized policies that
regulate when an object ownership is better to change because we
believe it is an orthogonal problem ... In our implementation we use a
simple on-demand policy that attempts to change the ownership when a
request is issued by the application."

This module makes that decision point pluggable:

- :class:`OnDemandPolicy` -- the paper's default: acquire whenever a
  command needs objects with no usable single owner.
- :class:`StickyPolicy` -- a Lilac-TM-flavoured migration policy:
  prefer forwarding to the current owner of the *majority* of the
  command's objects, and acquire only after the same object has been
  requested locally ``threshold`` times in a row -- objects migrate to
  where their traffic actually is, and one-off remote accesses do not
  bounce ownership around.
- :class:`ZoneAffinityPolicy` -- the WPaxos-flavoured geo policy:
  per-object decayed demand counters *per zone*; ownership migrates
  toward the zone generating the traffic, and while it has not earned
  the move, commands forward to a zone-local owner when one exists
  (forwarding inside a region beats stealing across an ocean).

A policy only *redirects* commands (forward vs acquire); safety is
entirely the protocol's, so any policy is safe by construction.

Policies hold per-node state (request streaks): construct one instance
per protocol instance -- do not share a policy object between the nodes
of an in-process cluster.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.consensus.commands import Command

ACQUIRE = "acquire"
FORWARD = "forward"


class OwnershipPolicy(ABC):
    """Decides how to handle a command with no usable single owner."""

    # When True, the proposer consults ``decide`` even when a single
    # other node owns every undecided object (the plain forward path).
    # Placement-aware policies need that interception to migrate hot
    # single-object traffic; the default keeps the seed's direct
    # forward, byte-identical.
    wants_single_owner = False

    @abstractmethod
    def decide(
        self,
        node_id: int,
        command: Command,
        owners: dict[str, Optional[int]],
    ) -> tuple[str, Optional[int]]:
        """Return ``(ACQUIRE, None)`` or ``(FORWARD, target_node)``.

        ``owners`` maps each *undecided* object of the command to its
        believed current owner (possibly None).  Called only when the
        plain paths did not apply: the proposer is not the owner of
        everything, and no single other node owns everything (unless
        ``wants_single_owner`` asked for that case too).
        """

    def on_local_request(self, node_id: int, command: Command) -> None:
        """Observe a local proposal (for request-counting policies)."""

    def on_remote_decide(self, node_id: int, command: Command) -> None:
        """Observe a command *proposed elsewhere* reaching our log.

        The protocol calls this once per remotely-proposed command as it
        is appended to the local C-struct -- the "intervening decision
        elsewhere" signal that request-counting policies need to cancel
        a pending migration claim.  Commands this node proposed itself
        (including ones it forwarded to the current owner) do not come
        through here: our own demand keeps counting.
        """

    def on_forwarded_request(self, node_id: int, command: Command) -> None:
        """Observe a command another node forwarded to us to coordinate.

        Fires on Forward receipt, *before* the command decides -- the
        demand signal a placement policy must not miss: an owner that
        only counted decided commands would, while a migration stalls
        the pipeline, see nothing but its own local traffic and
        conclude its zone dominates demand for objects some other
        region is hammering (and steal them right back).
        """


class OnDemandPolicy(OwnershipPolicy):
    """The paper's default: always acquire."""

    def decide(self, node_id, command, owners):
        return ACQUIRE, None


class StickyPolicy(OwnershipPolicy):
    """Majority-owner forwarding with a migration threshold.

    ``threshold`` local requests for an object (without an intervening
    decision elsewhere) are required before this node will steal it; in
    the meantime commands are forwarded to whichever node owns the most
    of their objects (it acquires the stragglers itself, which is
    cheaper than a full reshuffle when most objects already co-reside).

    A decision proposed by another node resets the object's streak
    (``on_remote_decide``): interleaved remote traffic means the object
    is *shared*, not hot-local, and stealing it would only start a
    ping-pong in which every node's threshold is trivially reached.
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self._streak: dict[str, int] = {}

    def on_local_request(self, node_id: int, command: Command) -> None:
        for obj in command.ls:
            self._streak[obj] = self._streak.get(obj, 0) + 1

    def on_remote_decide(self, node_id: int, command: Command) -> None:
        # "In a row" means without an intervening decision elsewhere:
        # remote traffic on the object voids the streak earned so far.
        for obj in command.ls:
            if obj in self._streak:
                self._streak[obj] = 0

    def decide(self, node_id, command, owners):
        if not owners:
            raise ValueError(
                "StickyPolicy.decide called with no undecided objects "
                f"for command {command.cid}"
            )
        known = [owner for owner in owners.values() if owner is not None]
        hot_enough = all(
            self._streak.get(obj, 0) >= self.threshold for obj in owners
        )
        if hot_enough or not known:
            # Earned the migration (or nobody owns anything yet).
            for obj in owners:
                self._streak[obj] = 0
            return ACQUIRE, None
        tally: dict[int, int] = {}
        for owner in known:
            tally[owner] = tally.get(owner, 0) + 1
        majority_owner = max(tally, key=lambda node: (tally[node], -node))
        if majority_owner == node_id:
            return ACQUIRE, None  # we already hold the majority: finish it
        return FORWARD, majority_owner


class ZoneAffinityPolicy(OwnershipPolicy):
    """Zone-aware placement for geo deployments (ROADMAP item 3).

    ``zones[i]`` is the zone of node ``i`` (the same map every node
    gets).  The policy keeps one decayed demand counter per object per
    zone: every local request bumps our zone, every remotely-proposed
    decision bumps the proposer's zone, and each bump first decays all
    of the object's counters by ``decay`` -- so the counters track
    *recent* traffic share, not lifetime totals.

    ``decide`` then migrates an object group only when this node's zone
    generated at least ``dominance`` of the recent demand (and at least
    ``threshold`` weight of it in absolute terms -- one early request
    must not trigger a steal).  Short of that it forwards: to an owner
    in our own zone when one exists (intra-zone RTT), else to whichever
    node owns the most of the command's objects (one WAN hop beats a
    WAN-wide acquisition round).

    Unlike the LAN policies, this one also intercepts the plain
    single-owner forward path (``wants_single_owner``): a zone cannot
    attract a hot object if the proposer short-circuits to the remote
    owner before the policy ever sees the request.
    """

    wants_single_owner = True

    def __init__(
        self,
        zones,
        threshold: float = 3.0,
        decay: float = 0.8,
        dominance: float = 0.6,
    ) -> None:
        self.zones = tuple(zones)
        if not self.zones:
            raise ValueError("zones must be non-empty")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if not 0.0 < dominance <= 1.0:
            raise ValueError("dominance must be in (0, 1]")
        self.threshold = threshold
        self.decay = decay
        self.dominance = dominance
        # obj -> zone -> decayed demand weight.
        self._demand: dict[str, dict[int, float]] = {}

    def _bump(self, obj: str, zone: int) -> None:
        per_zone = self._demand.setdefault(obj, {})
        for z in per_zone:
            per_zone[z] *= self.decay
        per_zone[zone] = per_zone.get(zone, 0.0) + 1.0

    def on_local_request(self, node_id: int, command: Command) -> None:
        zone = self.zones[node_id]
        for obj in command.ls:
            self._bump(obj, zone)

    def on_remote_decide(self, node_id: int, command: Command) -> None:
        zone = self.zones[command.proposer]
        for obj in command.ls:
            self._bump(obj, zone)

    def on_forwarded_request(self, node_id: int, command: Command) -> None:
        # A forward is demand from the proposer's zone, observed at the
        # moment it matters (while we are the owner being asked to
        # coordinate); counting it only at decide time would blind the
        # owner to the very traffic a stalled migration is queueing up.
        zone = self.zones[command.proposer]
        for obj in command.ls:
            self._bump(obj, zone)

    def decide(self, node_id, command, owners):
        if not owners:
            raise ValueError(
                "ZoneAffinityPolicy.decide called with no undecided "
                f"objects for command {command.cid}"
            )
        my_zone = self.zones[node_id]
        known = [owner for owner in owners.values() if owner is not None]
        if not known:
            return ACQUIRE, None  # first touch: nobody to forward to
        tally: dict[int, int] = {}
        for owner in known:
            tally[owner] = tally.get(owner, 0) + 1
        if node_id in tally:
            return ACQUIRE, None  # we already hold some: finish it here
        zone_local = {
            owner: count
            for owner, count in tally.items()
            if self.zones[owner] == my_zone
        }
        if zone_local:
            # A same-zone owner already satisfies zone affinity: stealing
            # from it would just ping-pong ownership between the zone's
            # own nodes (both see the same "our zone dominates" signal),
            # so intra-zone traffic always forwards.
            return FORWARD, max(
                zone_local, key=lambda node: (zone_local[node], -node)
            )
        local_weight = total_weight = 0.0
        for obj in owners:
            for zone, weight in self._demand.get(obj, {}).items():
                total_weight += weight
                if zone == my_zone:
                    local_weight += weight
        if (
            total_weight >= self.threshold
            and local_weight >= self.dominance * total_weight
        ):
            # Our zone earned the migration -- and *spends* the demand
            # that earned it: re-stealing requires re-earning dominance
            # from zero, so two zones trading bursts of traffic settle
            # into forwarding instead of migrating the object back and
            # forth on every burst (hysteresis against ownership wars).
            for obj in owners:
                self._demand.pop(obj, None)
            return ACQUIRE, None
        return FORWARD, max(tally, key=lambda node: (tally[node], -node))
