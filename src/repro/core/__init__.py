"""M2Paxos: the paper's primary contribution.

A multi-leader Generalized Consensus implementation that orders
commands through per-object Multi-Paxos incarnations.  A node that owns
every object a command accesses decides it in two communication delays
with a classic (majority) quorum; otherwise the command is forwarded to
the single owner (three delays) or ownership is re-acquired with a
Paxos prepare phase (Algorithms 1-4 of the paper).
"""

from repro.core.messages import (
    Accept,
    AckAccept,
    AckPrepare,
    Decide,
    Forward,
    Prepare,
)
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.core.policy import OnDemandPolicy, OwnershipPolicy, StickyPolicy
from repro.core.switcher import AdaptiveSwitcher, SwitcherConfig

__all__ = [
    "M2Paxos",
    "M2PaxosConfig",
    "AdaptiveSwitcher",
    "SwitcherConfig",
    "OwnershipPolicy",
    "OnDemandPolicy",
    "StickyPolicy",
    "Accept",
    "AckAccept",
    "Decide",
    "Prepare",
    "AckPrepare",
    "Forward",
]
