"""Exhaustive state-space checker mirroring the paper's TLA+ appendix.

The appendix models M2Paxos abstractly as *GFPaxos*: one MultiPaxos
incarnation per object, where an acceptor votes for a command
atomically in one instance of every object the command accesses.  The
checked property (``CorrectnessSimple``) is that any two commands
chosen on two common objects are chosen in the same relative order --
the heart of the paper's Consistency argument (claim B in Section V-C).

This module re-implements that abstract specification in Python and
explores it exhaustively with breadth-first search.  Bounds are
configurable; the defaults (3 acceptors, 2 objects, 2 commands, 2
instances, single ballot) finish in seconds and still cover the
interesting interleavings of atomic multi-object voting.  A two-ballot
configuration (adding JoinBallot/recovery interleavings, closer to the
appendix's reported run) is exercised by the slower benchmark-style
test and the ``python -m repro.core.modelcheck`` entry point.

The explored transition system follows the appendix's ``Spec2``:

- ``Propose(c)``       -- make a command eligible for voting;
- ``JoinBallot(a,o,b)``-- acceptor ``a`` moves object ``o`` to ballot ``b``;
- ``Vote(a,c,is)``     -- acceptor ``a`` votes for ``c`` in instance
  ``is[o]`` of every object ``o`` it accesses, subject to MultiPaxos's
  safety conditions (value proved safe at the ballot, ballot
  conservative, instances at most one past the last complete one).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import product
from typing import Iterable, Optional

from repro.core.quorum import (
    MajorityQuorums,
    QuorumSystem,
    check_intersections,
)


@dataclass(frozen=True)
class ModelConfig:
    n_acceptors: int = 3
    objects: tuple[str, ...] = ("o1", "o2")
    # command -> objects accessed; mirrors the appendix's model of one
    # command accessing both objects and one accessing a single object.
    commands: dict = None  # type: ignore[assignment]
    n_instances: int = 2
    n_ballots: int = 1
    max_states: int = 2_000_000
    # Quorum system under test (see repro.core.quorum); None means the
    # classic-majority pair.  Vote quorums that choose a value use the
    # system's *accept* family; the "quorum reached our ballot / proved
    # safe" precondition (the abstract phase 1) uses its *prepare*
    # family -- so the BFS explores exactly the interleavings the
    # configured system admits.
    quorum_system: Optional[QuorumSystem] = None

    def __post_init__(self) -> None:
        if self.commands is None:
            object.__setattr__(
                self,
                "commands",
                {"c1": ("o1", "o2"), "c2": ("o1",)},
            )

    @property
    def quorum(self) -> int:
        return self.n_acceptors // 2 + 1

    def bound_system(self) -> QuorumSystem:
        """The quorum system bound to ``n_acceptors``."""
        system = self.quorum_system or MajorityQuorums()
        if system.n is None:
            return system.build(self.n_acceptors)
        if system.n != self.n_acceptors:
            raise ValueError(
                f"quorum system is bound to n={system.n}, "
                f"model has {self.n_acceptors} acceptors"
            )
        return system


class Violation(Exception):
    """CorrectnessSimple does not hold in some reachable state."""


# A state is a pair of frozensets:
#   proposed: frozenset[str]
#   ballots:  tuple[tuple[int, ...], ...]        [acceptor][object] -> ballot
#   votes:    frozenset[(acceptor, object, instance, ballot, command)]
State = tuple[frozenset, tuple, frozenset]


class ModelChecker:
    """BFS over the abstract GFPaxos transition system."""

    def __init__(self, config: Optional[ModelConfig] = None) -> None:
        self.config = config or ModelConfig()
        self.states_explored = 0
        # Quorum families are fixed for the whole search; enumerate once.
        self.system = self.config.bound_system()
        self._accept_quorums = self.system.accept_quorums()
        self._prepare_quorums = self.system.prepare_quorums()

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------

    def initial_state(self) -> State:
        cfg = self.config
        ballots = tuple(
            tuple(-1 for _o in cfg.objects) for _a in range(cfg.n_acceptors)
        )
        return (frozenset(), ballots, frozenset())

    def _vote_at(self, votes, acceptor, obj, instance, ballot) -> Optional[str]:
        for (a, o, i, b, c) in votes:
            if (a, o, i, b) == (acceptor, obj, instance, ballot):
                return c
        return None

    def _chosen(self, votes, obj, instance) -> Optional[str]:
        """The command chosen at (obj, instance), if any: some *accept*
        quorum of the configured system voted for it in one ballot."""
        cfg = self.config
        for ballot in range(cfg.n_ballots):
            tally: dict[str, set[int]] = {}
            for (a, o, i, b, c) in votes:
                if (o, i, b) == (obj, instance, ballot):
                    tally.setdefault(c, set()).add(a)
            for command, voters in tally.items():
                if self.system.is_accept_quorum(voters):
                    return command
        return None

    def _next_instance(self, votes, obj) -> int:
        """First instance of ``obj`` with nothing chosen yet (1-based)."""
        for instance in range(1, self.config.n_instances + 1):
            if self._chosen(votes, obj, instance) is None:
                return instance
        return self.config.n_instances + 1

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def successors(self, state: State) -> Iterable[State]:
        proposed, ballots, votes = state
        cfg = self.config

        # Propose(c)
        for command in cfg.commands:
            if command not in proposed:
                yield (proposed | {command}, ballots, votes)

        # JoinBallot(a, o, b)
        for a in range(cfg.n_acceptors):
            for oi, obj in enumerate(cfg.objects):
                for b in range(cfg.n_ballots):
                    if ballots[a][oi] < b:
                        new_ballots = tuple(
                            tuple(
                                b if (a2 == a and o2 == oi) else ballots[a2][o2]
                                for o2 in range(len(cfg.objects))
                            )
                            for a2 in range(cfg.n_acceptors)
                        )
                        yield (proposed, new_ballots, votes)

        # Vote(a, c, is): atomic across the command's objects.
        for a in range(cfg.n_acceptors):
            for command in proposed:
                accessed = cfg.commands[command]
                choices = []
                feasible = True
                for obj in accessed:
                    oi = cfg.objects.index(obj)
                    ballot = ballots[a][oi]
                    if ballot < 0:
                        feasible = False
                        break
                    limit = min(self._next_instance(votes, obj), cfg.n_instances)
                    valid = [
                        i
                        for i in range(1, limit + 1)
                        if self._vote_ok(votes, ballots, a, obj, oi, i, command)
                    ]
                    if not valid:
                        feasible = False
                        break
                    choices.append((obj, valid))
                if not feasible:
                    continue
                for picks in product(*(valid for _obj, valid in choices)):
                    new_votes = set(votes)
                    replaced = False
                    for (obj, _valid), instance in zip(choices, picks):
                        oi = cfg.objects.index(obj)
                        ballot = ballots[a][oi]
                        existing = self._vote_at(votes, a, obj, instance, ballot)
                        if existing == command:
                            continue
                        new_votes.add((a, obj, instance, ballot, command))
                        replaced = True
                    if replaced:
                        yield (proposed, ballots, frozenset(new_votes))

    def _vote_ok(self, votes, ballots, a, obj, oi, instance, command) -> bool:
        """MultiPaxos Vote preconditions for one (object, instance)."""
        cfg = self.config
        ballot = ballots[a][oi]
        existing = self._vote_at(votes, a, obj, instance, ballot)
        if existing is not None and existing != command:
            return False
        # A quorum must have reached our ballot and prove the value safe.
        quorum_found = False
        for quorum in self._quorums():
            if all(ballots[q][oi] >= ballot for q in quorum):
                safe = self._proved_safe(votes, quorum, obj, instance, ballot)
                if command in safe:
                    quorum_found = True
                    break
        if not quorum_found:
            return False
        # Conservative ballot: no other acceptor voted differently in
        # this ballot at this instance.
        for (a2, o2, i2, b2, c2) in votes:
            if (o2, i2, b2) == (obj, instance, ballot) and c2 != command:
                return False
        return True

    def _proved_safe(self, votes, quorum, obj, instance, ballot) -> set[str]:
        """ProvedSafeAt: the vote in the highest ballot below ``ballot``
        among the quorum, or every proposed command if none."""
        best_ballot = -1
        best_value: Optional[str] = None
        for (a, o, i, b, c) in votes:
            if o == obj and i == instance and a in quorum and b < ballot:
                if b > best_ballot:
                    best_ballot = b
                    best_value = c
        if best_value is not None:
            return {best_value}
        return set(self.config.commands)

    def _quorums(self):
        """Prepare (phase-1) quorums: what JoinBallot/ProvedSafeAt use."""
        return self._prepare_quorums

    # ------------------------------------------------------------------
    # Invariant
    # ------------------------------------------------------------------

    def check_state(self, state: State) -> None:
        """CorrectnessSimple: shared-object choices agree on order."""
        _proposed, _ballots, votes = state
        cfg = self.config
        chosen: dict[str, dict[str, int]] = {}  # obj -> command -> instance
        for obj in cfg.objects:
            chosen[obj] = {}
            for instance in range(1, cfg.n_instances + 1):
                command = self._chosen(votes, obj, instance)
                if command is not None and command not in chosen[obj]:
                    chosen[obj][command] = instance
        commands = list(cfg.commands)
        for idx, c1 in enumerate(commands):
            for c2 in commands[idx + 1 :]:
                shared = set(cfg.commands[c1]) & set(cfg.commands[c2])
                orders = set()
                for obj in shared:
                    if c1 in chosen[obj] and c2 in chosen[obj]:
                        orders.add(chosen[obj][c1] < chosen[obj][c2])
                if len(orders) > 1:
                    raise Violation(
                        f"{c1} and {c2} chosen in different orders: {chosen}"
                    )

    # ------------------------------------------------------------------

    def run(self) -> int:
        """Explore exhaustively; return number of distinct states.

        Raises :class:`Violation` if CorrectnessSimple fails anywhere.
        """
        initial = self.initial_state()
        seen = {initial}
        frontier = deque([initial])
        self.check_state(initial)
        while frontier:
            state = frontier.popleft()
            self.states_explored += 1
            if self.states_explored > self.config.max_states:
                raise RuntimeError(
                    f"state cap {self.config.max_states} exceeded"
                )
            for successor in self.successors(state):
                if successor not in seen:
                    seen.add(successor)
                    self.check_state(successor)
                    frontier.append(successor)
        return len(seen)


def verify_intersections(system: QuorumSystem, n_lo: int = 3, n_hi: int = 5):
    """Exhaustively check the classic∩fast condition at each cluster
    size in ``[n_lo, n_hi]``.

    ``system`` is an unbound spec; each size gets its own bound copy and
    a full pairwise sweep of its prepare×accept families.  Returns
    ``{n: [problems]}`` -- all lists empty for a safe system.  Sizes the
    spec cannot bind to (a zone map pinned to one n) are skipped.
    """
    results: dict[int, list[str]] = {}
    for n in range(n_lo, n_hi + 1):
        try:
            bound = system.build(n)
        except ValueError as exc:
            if "intersection" in str(exc):
                results[n] = [str(exc)]
            continue  # spec not applicable at this size (e.g. zone map)
        results[n] = check_intersections(bound)
    return results


def main() -> None:  # pragma: no cover - CLI entry point
    import sys

    ballots = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    cap = int(sys.argv[2]) if len(sys.argv) > 2 else 2_000_000
    config = ModelConfig(n_ballots=ballots, max_states=cap)
    checker = ModelChecker(config)
    bounds = (
        f"acceptors=3, objects=2, commands=2, instances=2, ballots={ballots}"
    )
    try:
        states = checker.run()
    except RuntimeError:
        print(
            f"bounded exploration: {checker.states_explored} states visited "
            f"(cap {cap}), no violation of CorrectnessSimple ({bounds}); "
            f"raise the cap for exhaustive coverage"
        )
        return
    print(
        f"exhaustive exploration complete: {states} distinct states, "
        f"no violation of CorrectnessSimple ({bounds})"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
