"""Stable import façade for the M2Paxos implementation.

The protocol formerly lived here as one module; it is now the
:mod:`repro.core.m2` package, split by role:

- :mod:`repro.core.m2.config` -- tunables (:class:`M2PaxosConfig`),
  :class:`SafetyViolation`, and shared in-flight round records;
- :mod:`repro.core.m2.proposer` -- coordination + accept phases
  (Algorithms 1-2, coordinator side);
- :mod:`repro.core.m2.acceptor` -- voting, promises, learning and
  delivery (Algorithms 2-3, passive side);
- :mod:`repro.core.m2.ownership` -- acquisition rounds and SELECT
  (Algorithm 4);
- :mod:`repro.core.m2.recovery` -- gap checking and forced-command
  recovery.

``from repro.core.protocol import M2Paxos, M2PaxosConfig`` keeps
working; new code may import from :mod:`repro.core.m2` directly.
"""

from __future__ import annotations

from repro.core.m2 import M2Paxos, M2PaxosConfig, SafetyViolation
from repro.core.m2.config import _DECIDED_EPOCH

__all__ = ["M2Paxos", "M2PaxosConfig", "SafetyViolation", "_DECIDED_EPOCH"]
