"""M2Paxos protocol state machine (Algorithms 1-4 of the paper).

The decision paths, in the paper's terms:

- **Fast path** (Section IV-A, Algorithm 1 lines 5-10): the proposer
  owns every object in ``c.LS`` -> one ``Accept`` broadcast + a classic
  quorum of ``AckAccept`` = decided in two communication delays.
- **Forward path** (Section IV-B, lines 11-15): a single other node
  owns all the objects -> forward, total three delays.
- **Acquisition path** (Section IV-C, Algorithm 4): no single owner ->
  per-object Paxos prepare with bumped epochs, then the accept phase,
  honouring any command *forced* by the prepare replies.

Deviations and hardenings beyond the pseudocode -- each taken where the
pseudocode is ambiguous, and catalogued with rationale in DESIGN.md
("Protocol-hardening decisions"):

- object-level ``promised`` epochs (Multi-Paxos-style leadership) and
  globally unique striped epochs (``k*N + node_id``);
- tail-reporting ownership prepares (the new owner learns the object's
  whole active log tail, like a Multi-Paxos view change);
- position pinning: retries fight for their original instances until
  the round is provably dead, so a command can never be chosen at two
  position sets;
- tenure staleness: pinned positions that outlive an ownership change
  are re-prepared before any accept;
- full-set recovery of forced multi-object commands over the instance
  set their accept round used (``vdec_ins`` / ``Accept.cmd_ins``), and
  dead-round no-op overwrites for unchoosable stale acceptances;
- instance-scoped (non-dethroning) gap/recovery rounds;
- no-op filling of holes discovered by prepares, NACK epoch catch-up,
  jittered gap/forward/supervision timers for liveness under crashes
  and message loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.consensus.base import (
    Message,
    Protocol,
    ProtocolCosts,
    classic_quorum_size,
)
from repro.consensus.commands import Command, make_noop
from repro.core.delivery import DeliveryEngine
from repro.core.policy import ACQUIRE, FORWARD, OnDemandPolicy
from repro.core.messages import (
    Accept,
    AckAccept,
    AckPrepare,
    Decide,
    Forward,
    Instance,
    Prepare,
)
from repro.core.state import M2PaxosState

_DECIDED_EPOCH = 1 << 30
"""Sentinel epoch reported for already-decided instances in prepare
replies, so SELECT always re-forces the decided command."""


class SafetyViolation(AssertionError):
    """Two different commands decided for the same instance."""


@dataclass(frozen=True)
class M2PaxosConfig:
    """Tunables (timeouts in seconds of env time)."""

    forward_timeout: float = 0.05
    retry_backoff: float = 0.002
    gap_check_period: float = 0.2
    gap_timeout: float = 0.4
    # Proposer-side supervision: re-coordinate a command that has not
    # been decided after this long.  NACK-triggered retries cover rounds
    # that fail loudly; this covers rounds lost to message drops or
    # crashes.  Must exceed worst-case decision latency (tune up for
    # saturation benchmarks).
    supervise_timeout: float = 1.5
    # Abandon a prepare round whose quorum of replies never arrives
    # (message loss), releasing the per-object acquisition guard.
    round_timeout: float = 0.6
    ack_to_all: bool = False
    max_forward_hops: int = 1
    gap_recovery: bool = True
    paranoid: bool = True
    # Optional deterministic epoch-0 ownership map (``l -> node id``),
    # identical on every node.  Lets an application with a natural data
    # partitioning (e.g. TPC-C warehouses) start on the fast path
    # without first-touch acquisitions; any node can still take objects
    # over by preparing epoch 1.
    home_hint: Optional[Callable[[str], int]] = None
    # When-to-acquire policy (Section IV-C calls this an orthogonal
    # problem); None means the paper's on-demand policy.  See
    # repro.core.policy.
    policy: Optional[object] = None


@dataclass
class _PendingAccept:
    command: Optional[Command]  # retried on NACK when set
    to_decide: dict[Instance, Command]
    eps: dict[Instance, int]
    done: bool = False  # a NACK arrived; retry handling has run
    announced: bool = False  # Decide broadcast sent


@dataclass
class _PendingPrepare:
    """An in-flight prepare round.

    ``kind`` is one of:

    - ``"acquisition"``: ownership acquisition for our own ``command``
      (Algorithm 4);
    - ``"gap"``: frontier recovery of one stalled instance
      (``command`` is None; unforced instances become no-ops);
    - ``"recover"``: atomic re-proposal of a forced multi-object
      ``command`` over its recorded instance set.
    """

    command: Optional[Command]
    eps: dict[Instance, int]
    kind: str = "acquisition"
    replies: dict[
        int, dict[Instance, tuple[Optional[Command], int, tuple[Instance, ...]]]
    ] = field(default_factory=dict)
    done: bool = False
    # Instances of objects we already owned when the round started (at
    # their current epochs): not prepared -- re-electing ourselves would
    # dethrone our own pipeline -- but included in the clean accept.
    extra_eps: dict[Instance, int] = field(default_factory=dict)
    # For kind == "recover": the command's authoritative full instance
    # set (this round may cover only its still-undecided subset).
    fins: tuple[Instance, ...] = ()


class M2Paxos(Protocol):
    """One node's M2Paxos instance.  Bind to an Env, then feed events."""

    # M2Paxos has no dependency computation and no shared metadata on
    # the critical path, hence the cheaper per-message handler and the
    # near-zero serial fraction ("there is no time consuming operation
    # performed on its critical path", Section I).
    costs = ProtocolCosts(base_cost=120e-6, serial_fraction=0.03)

    def __init__(self, config: Optional[M2PaxosConfig] = None) -> None:
        super().__init__()
        self.config = config or M2PaxosConfig()
        self.policy = self.config.policy or OnDemandPolicy()
        self.state = M2PaxosState(home_hint=self.config.home_hint)
        self.delivery: Optional[DeliveryEngine] = None
        self._req_counter = 0
        self._noop_counter = 0
        self._pending_accepts: dict[int, _PendingAccept] = {}
        self._pending_prepares: dict[int, _PendingPrepare] = {}
        self._attempts: dict[tuple[int, int], int] = {}
        self._active_recoveries: set[tuple[int, int]] = set()
        self._acquiring: set[str] = set()
        self._deferred: list[Command] = []
        # Instance set assigned to each of our in-flight commands.  A
        # NACKed round may nevertheless have been *chosen* (a quorum of
        # ACKs can coexist with the NACK we saw), so retries must fight
        # for the SAME positions; re-proposing elsewhere could decide
        # the command at two position sets, whose relative orders with
        # other commands can contradict across objects.  Fresh positions
        # are taken only once the old round is provably dead (one of its
        # instances decided with a different command).
        self._assigned: dict[tuple[int, int], dict[str, int]] = {}
        # Diagnostics consumed by the benchmark harness.
        self.stats = {
            "fast_path": 0,
            "forwarded": 0,
            "acquisitions": 0,
            "accept_nacks": 0,
            "prepare_nacks": 0,
            "gap_recoveries": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def bind(self, env) -> None:
        super().bind(env)
        self.delivery = DeliveryEngine(self.state, self._on_append)

    def on_start(self) -> None:
        if self.config.gap_recovery:
            self._schedule_gap_check()

    @property
    def quorum(self) -> int:
        return classic_quorum_size(self.env.n_nodes)

    def _next_req(self) -> int:
        self._req_counter += 1
        return self._req_counter

    # ------------------------------------------------------------------
    # Coordination phase (Algorithm 1)
    # ------------------------------------------------------------------

    def propose(self, command: Command) -> None:
        self.policy.on_local_request(self.env.node_id, command)
        self._coordinate(command, hops=0)
        self._supervise(command)

    def _supervise(self, command: Command) -> None:
        """Watch our own proposal until it is decided (liveness under
        message loss: a silently lost round never produces a NACK)."""
        if self.config.supervise_timeout <= 0:
            return
        period = self.config.supervise_timeout * (1.0 + 0.5 * self.env.rng.random())

        def check() -> None:
            if not self._fully_decided(command):
                self._coordinate(command, hops=0)
                self._supervise(command)

        self.env.set_timer(period, check)

    def _pick_instances(self, command: Command) -> dict[Instance, int]:
        """Choose the next free position per still-undecided object.

        Returns ``{(l, in): epoch}`` with the *current* epoch (fast
        path); the acquisition path overwrites the epochs.  Positions
        are reserved immediately so pipelined proposals on the same
        object never collide.
        """
        assigned = self._assigned.get(command.cid)
        if assigned is not None:
            fins = {(l, position) for l, (position, _e) in assigned.items()}
            if self._round_is_dead(command, fins):
                assigned = None  # provably unchoosable; safe to move
        if assigned is None:
            assigned = {}
            for l in sorted(command.ls):
                obj = self.state.obj(l)
                position = max(obj.next_slot, obj.appended + 1)
                # Remember the epoch the position was allocated under:
                # if the object's epoch moves on, the position may have
                # been touched by an interim owner and must be prepared
                # (phase 1) before any further accept.
                assigned[l] = (position, obj.epoch)
            self._assigned[command.cid] = assigned
        eps: dict[Instance, int] = {}
        for l, (position, _alloc_epoch) in assigned.items():
            if self.state.is_decided_for(l, command):
                continue
            obj = self.state.obj(l)
            obj.observe_position(position)
            eps[(l, position)] = obj.epoch
        return eps

    def _stale_instances(self, command: Command) -> set[Instance]:
        """Assigned instances whose object epoch moved since allocation."""
        assigned = self._assigned.get(command.cid) or {}
        stale = set()
        for l, (position, alloc_epoch) in assigned.items():
            if self.state.obj(l).epoch != alloc_epoch:
                stale.add((l, position))
        return stale

    def _coordinate(self, command: Command, hops: int) -> None:
        undecided = [
            l for l in command.ls if not self.state.is_decided_for(l, command)
        ]
        if not undecided:
            return

        me = self.env.node_id
        if all(self._is_current_owner(l) for l in undecided):
            eps = self._pick_instances(command)
            if eps and not self._stale_instances(command):
                self.stats["fast_path"] += 1
                self._accept_phase(
                    command, eps, full_ins=self._full_ins(command, eps)
                )
                return
            if eps:
                # A pinned position outlived an ownership change: it may
                # have been touched at another epoch, so run phase 1.
                self._acquisition_phase(command)
            return

        if any(l in self._acquiring for l in undecided):
            # We are already acquiring (some of) these objects for an
            # earlier command; queue FIFO and re-coordinate once that
            # settles, rather than launching a second epoch war against
            # ourselves.  Preserving order here is what keeps a burst of
            # pipelined proposals delivered in submission order.
            self._deferred.append(command)
            return

        owners = {self.state.obj(l).owner for l in undecided}
        if (
            len(owners) == 1
            and None not in owners
            and me not in owners
            and hops < self.config.max_forward_hops
        ):
            (owner,) = owners
            self.stats["forwarded"] += 1
            self.env.send(owner, Forward(command=command, hops=hops + 1))
            self._arm_forward_timeout(command)
            return

        # No usable single owner: the ownership policy decides between
        # reshuffling here or forwarding to a better-placed node
        # (Section IV-C: when-to-acquire is a pluggable, orthogonal
        # choice; the default acquires on demand, as in the paper).
        owner_map = {l: self.state.obj(l).owner for l in undecided}
        action, target = self.policy.decide(me, command, owner_map)
        if (
            action == FORWARD
            and target is not None
            and target != me
            and hops < self.config.max_forward_hops
        ):
            self.stats["forwarded"] += 1
            self.env.send(target, Forward(command=command, hops=hops + 1))
            self._arm_forward_timeout(command)
            return
        self._acquisition_phase(command)

    def _full_ins(
        self, command: Command, eps: dict[Instance, int]
    ) -> Optional[tuple[Instance, ...]]:
        """The command's authoritative full instance set, when the round
        at hand covers only part of it (siblings already decided)."""
        assigned = self._assigned.get(command.cid)
        if assigned is None or len(assigned) == len(eps):
            return None
        return tuple(
            (l, position) for l, (position, _epoch) in sorted(assigned.items())
        )

    def _drain_deferred(self) -> None:
        if not self._deferred:
            return
        queued, self._deferred = self._deferred, []
        for command in queued:
            self._coordinate(command, hops=0)

    def _is_current_owner(self, l: str) -> bool:
        """IsOwner(p_i, l): we acquired ``l`` and nobody has started a
        higher epoch since (a raised epoch means our leadership is being
        taken over, so fast-path rounds would only be refused)."""
        obj = self.state.obj(l)
        return (
            obj.owner == self.env.node_id
            and obj.owner_epoch == obj.epoch
            and obj.promised <= obj.epoch
        )

    def _arm_forward_timeout(self, command: Command) -> None:
        def on_timeout() -> None:
            if not self._fully_decided(command):
                # Take over: the owner may have crashed or lost ownership.
                self._acquisition_phase(command)

        jitter = 1.0 + 0.2 * self.env.rng.random()
        self.env.set_timer(self.config.forward_timeout * jitter, on_timeout)

    def _fully_decided(self, command: Command) -> bool:
        return all(self.state.is_decided_for(l, command) for l in command.ls)

    def _retry(self, command: Command) -> None:
        """Re-run the coordination phase after a randomised backoff.

        The backoff grows with the attempt count; this is the practical
        concession the paper makes in Section IV-C ("an unbounded
        sequence of restarts") -- safety never depends on it.
        """
        attempt = self._attempts.get(command.cid, 0) + 1
        self._attempts[command.cid] = attempt
        delay = self.config.retry_backoff * attempt * (0.5 + self.env.rng.random())

        def fire() -> None:
            if not self._fully_decided(command):
                self._coordinate(command, hops=0)

        self.env.set_timer(delay, fire)

    # ------------------------------------------------------------------
    # Accept phase (Algorithm 2)
    # ------------------------------------------------------------------

    def _accept_phase(
        self,
        command: Command,
        eps: dict[Instance, int],
        full_ins: Optional[tuple[Instance, ...]] = None,
        scoped: bool = False,
    ) -> None:
        """Plain accept of ``command`` at all its instances (fast path,
        clean acquisitions, and full-set recoveries)."""
        cmd_ins = {command.cid: full_ins} if full_ins else None
        self._send_accept_round(
            {inst: command for inst in eps},
            eps,
            retry_command=command,
            cmd_ins=cmd_ins,
            scoped=scoped,
        )

    def _send_accept_round(
        self,
        to_decide: dict[Instance, Command],
        eps: dict[Instance, int],
        retry_command: Optional[Command],
        cmd_ins: Optional[dict[tuple[int, int], tuple[Instance, ...]]] = None,
        scoped: bool = False,
    ) -> None:
        req = self._next_req()
        self._pending_accepts[req] = _PendingAccept(
            command=retry_command,
            to_decide=dict(to_decide),
            eps={inst: eps[inst] for inst in to_decide},
        )
        self.env.broadcast(
            Accept(
                req=req,
                to_decide=dict(to_decide),
                eps={inst: eps[inst] for inst in to_decide},
                cmd_ins=cmd_ins or {},
                scoped=scoped,
            )
        )

    def _on_accept(self, sender: int, msg: Accept) -> None:
        refused = False
        max_rnd = 0
        for inst, epoch in msg.eps.items():
            inst_state = self.state.inst(inst)
            obj = self.state.obj(inst[0])
            max_rnd = max(max_rnd, inst_state.rnd, obj.promised)
            if inst_state.rnd > epoch:
                refused = True
            if not msg.scoped and obj.promised > epoch:
                # Object-level leadership: a higher epoch was prepared,
                # so this accept comes from a dethroned owner.  Scoped
                # rounds arbitrate purely on the instance's rnd.
                refused = True
            existing = self.state.decided_at(inst)
            if existing is not None and existing.cid != msg.to_decide[inst].cid:
                # The instance is already burned with a different command;
                # never vote for a second value.
                refused = True
            # Either way, remember the position was used: our own picks
            # must steer clear of it.
            obj.observe_position(inst[1])

        if refused:
            self.env.send(
                sender,
                AckAccept(
                    req=msg.req,
                    coordinator=sender,
                    ok=False,
                    cids={},
                    eps=msg.eps,
                    max_rnd=max_rnd,
                ),
            )
            return

        # Each accepted value remembers the full instance set it was
        # proposed with (what a later forced recovery must cover
        # atomically): taken from the message's authoritative map when
        # present, else derived by grouping the round's instances.
        ins_of: dict[tuple[int, int], tuple[Instance, ...]] = dict(msg.cmd_ins)
        for inst, cmd in msg.to_decide.items():
            if cmd.cid not in ins_of:
                ins_of[cmd.cid] = tuple(
                    i for i, c in msg.to_decide.items() if c.cid == cmd.cid
                )

        for inst, epoch in msg.eps.items():
            l, position = inst
            inst_state = self.state.inst(inst)
            inst_state.rnd = epoch
            inst_state.rdec = epoch
            inst_state.vdec = msg.to_decide[inst]
            inst_state.vdec_ins = ins_of[msg.to_decide[inst].cid]
            obj = self.state.obj(l)
            if not msg.scoped:
                # Only leadership rounds transfer ownership.
                obj.owner = sender
                obj.owner_epoch = epoch
                obj.promised = max(obj.promised, epoch)
                obj.epoch = max(obj.epoch, epoch)
            obj.observe_position(position)
            self.state.gap_candidates.add(l)

        ack = AckAccept(
            req=msg.req,
            coordinator=sender,
            ok=True,
            cids={inst: cmd.cid for inst, cmd in msg.to_decide.items()},
            eps=msg.eps,
        )
        if self.config.ack_to_all:
            self.env.broadcast(ack)
        else:
            self.env.send(sender, ack)
        if sender == self.env.node_id:
            # Our own accept landed: ownership is now recorded locally,
            # so deferred commands can take the fast path.
            self._drain_deferred()

    def _on_ack_accept(self, sender: int, msg: AckAccept) -> None:
        if not msg.ok:
            pending = self._pending_accepts.get(msg.req)
            if pending is None or pending.done:
                return
            pending.done = True
            self.stats["accept_nacks"] += 1
            for (l, _position), _epoch in msg.eps.items():
                obj = self.state.obj(l)
                obj.epoch = max(obj.epoch, msg.max_rnd)
            # Failed recoveries must be re-runnable (by us or by the gap
            # checker); a leaked active flag would block them forever.
            for cmd in pending.to_decide.values():
                self._active_recoveries.discard(cmd.cid)
            if pending.command is not None:
                self._retry(pending.command)
            return

        # Count votes per instance; with ack_to_all every node runs this
        # and learns in two delays (Algorithm 3, lines 6-10); otherwise
        # only the coordinator does and the others learn via Decide.
        ready = True
        for inst, cid in msg.cids.items():
            votes = self.state.record_ack(inst, msg.eps[inst], cid, sender)
            if votes < self.quorum:
                ready = False
        if not ready:
            return

        pending = (
            self._pending_accepts.get(msg.req)
            if msg.coordinator == self.env.node_id
            else None
        )
        # The ack carries ids only; resolve the command bodies from the
        # coordinator's pending round or from our own accepted values
        # (a node that missed the Accept learns from the Decide instead).
        for inst, cid in msg.cids.items():
            command = pending.to_decide.get(inst) if pending is not None else None
            if command is None or command.cid != cid:
                inst_state = self.state.instances.get(inst)
                vdec = inst_state.vdec if inst_state is not None else None
                command = vdec if vdec is not None and vdec.cid == cid else None
            if command is not None:
                self._decide(inst, command)

        if pending is not None and not pending.announced:
            # Announce even if a NACK marked the round done earlier: a
            # quorum of ACKs means the values ARE chosen, and silence
            # here would strand the decision at this node alone.
            pending.announced = True
            pending.done = True
            self.env.broadcast(
                Decide(to_decide=pending.to_decide), include_self=False
            )
            for cmd in pending.to_decide.values():
                self._active_recoveries.discard(cmd.cid)

    # ------------------------------------------------------------------
    # Decision phase (Algorithm 3)
    # ------------------------------------------------------------------

    def _on_decide(self, sender: int, msg: Decide) -> None:
        ins_of: dict[tuple[int, int], tuple[Instance, ...]] = {}
        for inst, cmd in msg.to_decide.items():
            # A node that missed the Accept still learns the value and
            # its round's instance set, so its prepare replies can route
            # recoveries correctly.
            inst_state = self.state.inst(inst)
            if inst_state.vdec is None:
                if cmd.cid not in ins_of:
                    ins_of[cmd.cid] = tuple(
                        i for i, c in msg.to_decide.items() if c.cid == cmd.cid
                    )
                inst_state.vdec = cmd
                inst_state.vdec_ins = ins_of[cmd.cid]
            self._decide(inst, cmd)

    def _decide(self, inst: Instance, command: Command) -> None:
        l, position = inst
        existing = self.state.decided_at(inst)
        if existing is not None:
            if self.config.paranoid and existing.cid != command.cid:
                if existing.noop and command.noop:
                    # Two recovery rounds racing to fill the same hole
                    # may carry distinct no-op ids; no-ops are
                    # semantically identical (they only advance the
                    # frontier and are never delivered), so either one
                    # standing is consistent.
                    return
                raise SafetyViolation(
                    f"instance {inst}: {existing} already decided, got {command}"
                )
            return
        assert self.delivery is not None
        self.delivery.record_decision(l, position, command, self.env.now())
        appended = self.delivery.pump(dirty=command.ls)
        # Every object whose frontier may have moved goes (back) on the
        # gap checker's radar; the checker discards clean ones itself.
        self.state.gap_candidates.update(command.ls)
        for done in appended:
            self.state.gap_candidates.update(done.ls)

    def _on_append(self, command: Command) -> None:
        """A command reached the C-struct: deliver it upward."""
        self._attempts.pop(command.cid, None)
        self._assigned.pop(command.cid, None)
        if not command.noop:
            self.env.deliver(command)

    # ------------------------------------------------------------------
    # Acquisition phase (Algorithm 4)
    # ------------------------------------------------------------------

    def _prepare_round(
        self,
        command: Optional[Command],
        instances: list[Instance],
        kind: str,
        extra_eps: Optional[dict[Instance, int]] = None,
        fins: tuple[Instance, ...] = (),
    ) -> None:
        scoped = kind in ("gap", "recover")
        eps: dict[Instance, int] = {}
        bumped: set[str] = set()
        for inst in instances:
            obj = self.state.obj(inst[0])
            if scoped:
                # Instance-level ballot only: above anything seen, but
                # never claiming the object (no dethroning).
                floor = max(
                    self.state.inst(inst).rnd, obj.epoch, obj.promised
                )
                eps[inst] = self._next_epoch(floor)
            else:
                # One new epoch per *object* per round: instances of the
                # same object share it, so the follow-up accept is never
                # refused against the promise this round created.
                if inst[0] not in bumped:
                    obj.epoch = self._next_epoch(
                        max(obj.epoch, obj.promised)
                    )
                    bumped.add(inst[0])
                eps[inst] = obj.epoch
            obj.observe_position(inst[1])
        req = self._next_req()
        self._pending_prepares[req] = _PendingPrepare(
            command=command,
            eps=eps,
            kind=kind,
            extra_eps=extra_eps or {},
            fins=fins,
        )
        self.env.broadcast(Prepare(req=req, eps=eps, scoped=scoped))
        if self.config.round_timeout > 0:
            self._arm_round_timeout(req)

    def _next_epoch(self, floor: int) -> int:
        """The smallest epoch above ``floor`` that belongs to this node.

        Epochs are striped ``k * N + node_id``, making every epoch value
        globally unique: no two nodes can ever run rounds at the same
        ballot, which is what rules out same-epoch duelling coordinators
        structurally.
        """
        n = self.env.n_nodes
        k = floor // n + 1
        return k * n + self.env.node_id

    def _arm_round_timeout(self, req: int) -> None:
        def expire() -> None:
            pending = self._pending_prepares.pop(req, None)
            if pending is None or pending.done:
                return
            pending.done = True
            if pending.kind == "acquisition":
                self._acquiring.difference_update(l for l, _p in pending.eps)
                self._drain_deferred()
            elif pending.kind == "recover" and pending.command is not None:
                self._active_recoveries.discard(pending.command.cid)

        jitter = 1.0 + 0.5 * self.env.rng.random()
        self.env.set_timer(self.config.round_timeout * jitter, expire)

    def _acquisition_phase(self, command: Command) -> None:
        eps = self._pick_instances(command)
        if not eps:
            return
        # Only skip phase 1 for objects we currently own AND whose
        # assigned instance is still from our tenure: re-preparing our
        # own fresh pipeline would NACK it, but a stale instance may
        # have been touched at another epoch and must be prepared.
        stale = self._stale_instances(command)
        owned = {
            inst: epoch
            for inst, epoch in eps.items()
            if self._is_current_owner(inst[0]) and inst not in stale
        }
        missing = {inst: epoch for inst, epoch in eps.items() if inst not in owned}
        if not missing:
            # Races can make everything owned by the time we get here.
            self._accept_phase(command, eps)
            return
        self.stats["acquisitions"] += 1
        self._acquiring.update(inst[0] for inst in missing)
        full = self._full_ins(command, eps)
        self._prepare_round(
            command,
            list(missing),
            kind="acquisition",
            extra_eps=owned,
            fins=full or (),
        )

    GAP_BATCH = 16

    def _recover_gap(self, l: str, position: int) -> None:
        """Prepare the stalled instances of ``l`` to either learn their
        pending commands or fill them with no-ops (crash recovery,
        Section IV intro).  Batched: one round covers every open
        position up to the highest decided one, so a burst of abandoned
        reservations heals in one shot instead of one per timeout."""
        self.stats["gap_recoveries"] += 1
        obj = self.state.obj(l)
        top = min(obj.max_decided(), position + self.GAP_BATCH)
        instances = [
            (l, p)
            for p in range(position, max(top, position) + 1)
            if p not in obj.decided
        ] or [(l, position)]
        self._prepare_round(None, instances, kind="gap")

    def _schedule_recover_command(
        self, command: Command, fins: tuple[Instance, ...]
    ) -> None:
        """Atomically re-propose a forced multi-object command over the
        full instance set its original accept round used.

        Re-deciding it at a single instance could split its decision
        across positions chosen at different times, which can knot the
        per-object delivery orders into a cycle -- so recovery always
        covers the recorded set.
        """
        if command.cid in self._active_recoveries:
            return
        self._active_recoveries.add(command.cid)

        def fire() -> None:
            remaining = [
                inst for inst in fins if self.state.decided_at(inst) is None
            ]
            if not remaining:
                self._active_recoveries.discard(command.cid)
                return
            if self._round_is_dead(command, set(fins)):
                # The command lost one of its instances to another
                # command: fill the leftovers as plain gaps (no-ops).
                self._active_recoveries.discard(command.cid)
                self._prepare_round(None, remaining, kind="gap")
                return
            self._prepare_round(command, remaining, kind="recover", fins=fins)

        jitter = self.config.retry_backoff * (0.5 + self.env.rng.random())
        self.env.set_timer(jitter, fire)

    TAIL_REPORT_CAP = 64

    def _on_prepare(self, sender: int, msg: Prepare) -> None:
        refused = False
        max_rnd = 0
        for inst, epoch in msg.eps.items():
            inst_state = self.state.inst(inst)
            obj = self.state.obj(inst[0])
            max_rnd = max(max_rnd, inst_state.rnd)
            if inst_state.rnd >= epoch:
                refused = True
            if not msg.scoped:
                max_rnd = max(max_rnd, obj.promised)
                if obj.promised >= epoch:
                    refused = True
            # Record the attempted position either way: our own next
            # picks must steer clear of it.
            obj.observe_position(inst[1])

        if refused:
            self.env.send(
                sender, AckPrepare(req=msg.req, ok=False, max_rnd=max_rnd)
            )
            return

        if msg.scoped:
            # Instance-scoped phase 1: promise and report only the
            # requested instances; the object's leadership is untouched.
            decs: dict[
                Instance, tuple[Optional[Command], int, tuple[Instance, ...]]
            ] = {}
            for inst, epoch in msg.eps.items():
                inst_state = self.state.inst(inst)
                inst_state.rnd = epoch
                self.state.gap_candidates.add(inst[0])
                decided = self.state.decided_at(inst)
                if decided is not None:
                    ins = (
                        inst_state.vdec_ins
                        if inst_state.vdec is not None
                        and inst_state.vdec.cid == decided.cid
                        else (inst,)
                    )
                    decs[inst] = (decided, _DECIDED_EPOCH, ins)
                else:
                    decs[inst] = (
                        inst_state.vdec,
                        inst_state.rdec,
                        inst_state.vdec_ins,
                    )
            self.env.send(sender, AckPrepare(req=msg.req, ok=True, decs=decs))
            return

        # A promise for epoch e covers the *whole object*, so the reply
        # reports every instance at/above the requested position that
        # carries activity -- exactly Multi-Paxos's view change, where
        # the new leader learns the log tail.  Without this, the new
        # owner could run fast-path rounds over instances where an
        # older-epoch quorum already chose a value it never saw.
        decs: dict[Instance, tuple[Optional[Command], int, tuple[Instance, ...]]] = {}
        for inst, epoch in msg.eps.items():
            l, position = inst
            obj = self.state.obj(l)
            obj.promised = max(obj.promised, epoch)
            obj.epoch = max(obj.epoch, epoch)
            self.state.gap_candidates.add(l)
            tail = self.state.positions_with_activity(l, position)
            for p in [position] + tail[: self.TAIL_REPORT_CAP]:
                report_inst = (l, p)
                inst_state = self.state.inst(report_inst)
                # The promise covers every reported instance, exactly as
                # a Multi-Paxos promise covers the whole log: otherwise a
                # lower-ballot scoped round could slip in between this
                # report and the new owner's hole-filling accept.
                inst_state.rnd = max(inst_state.rnd, epoch)
                decided = self.state.decided_at(report_inst)
                if decided is not None:
                    ins = (
                        inst_state.vdec_ins
                        if inst_state.vdec is not None
                        and inst_state.vdec.cid == decided.cid
                        else (report_inst,)
                    )
                    decs[report_inst] = (decided, _DECIDED_EPOCH, ins)
                else:
                    decs[report_inst] = (
                        inst_state.vdec,
                        inst_state.rdec,
                        inst_state.vdec_ins,
                    )
        self.env.send(sender, AckPrepare(req=msg.req, ok=True, decs=decs))

    def _on_ack_prepare(self, sender: int, msg: AckPrepare) -> None:
        pending = self._pending_prepares.get(msg.req)
        if pending is None or pending.done:
            return

        if not msg.ok:
            pending.done = True
            self.stats["prepare_nacks"] += 1
            for (l, _position) in pending.eps:
                obj = self.state.obj(l)
                obj.epoch = max(obj.epoch, msg.max_rnd)
            if pending.kind == "acquisition":
                self._acquiring.difference_update(l for l, _p in pending.eps)
                self._retry(pending.command)
                self._drain_deferred()
            elif pending.kind == "recover":
                # A competing round is active; the gap checker re-fires
                # recovery if the frontier stays stuck.
                self._active_recoveries.discard(pending.command.cid)
            return

        pending.replies[sender] = msg.decs
        if len(pending.replies) < self.quorum:
            return
        pending.done = True
        if pending.kind == "acquisition":
            self._acquiring.difference_update(l for l, _p in pending.eps)
        self._resolve_prepared(pending)

    def _resolve_prepared(self, pending: _PendingPrepare) -> None:
        """Turn a prepared round into accept rounds, honouring forced
        values (Paxos phase 2a over multiple instances).

        The replies may report *more* instances than were asked for: the
        object's whole active tail.  Decided reports are learned on the
        spot; accepted-but-undecided ones are forced like any phase-1
        discovery, at the object's prepared epoch.
        """
        # Union of requested and reported instances, each with an epoch.
        object_epoch: dict[str, int] = {}
        for (l, _p), epoch in pending.eps.items():
            object_epoch[l] = max(object_epoch.get(l, 0), epoch)
        eps = dict(pending.eps)
        for decs in pending.replies.values():
            for inst in decs:
                eps.setdefault(inst, object_epoch.get(inst[0], 0))
        selected = self._select(eps, pending.replies)

        # Learn decided reports immediately; they leave the round.
        decided_foreign = False
        for inst in list(selected):
            forced, fep, _fins = selected[inst]
            self.state.obj(inst[0]).observe_position(inst[1])
            if forced is not None and fep >= _DECIDED_EPOCH:
                self._decide(inst, forced)
                if pending.command is not None and (
                    inst in pending.eps and forced.cid != pending.command.cid
                ):
                    decided_foreign = True
                del selected[inst]
                eps.pop(inst, None)

        round_insts = set(eps)
        target = pending.command

        clean = (
            target is not None
            and not decided_foreign
            and all(
                forced is None
                or (forced.cid == target.cid and set(fins) <= round_insts)
                for (forced, _epoch, fins) in selected.values()
            )
        )
        if clean:
            to_decide: dict[Instance, Command] = {}
            accept_eps = dict(pending.extra_eps)
            for inst in pending.extra_eps:
                to_decide[inst] = target
            for inst in pending.eps:
                if inst in eps:  # not learned as decided above
                    accept_eps[inst] = eps[inst]
                    to_decide[inst] = target
            # Reported-but-empty instances are holes the previous owner
            # left behind (reserved or refused rounds); fill them with
            # no-ops in the same atomic round so the frontier can never
            # stall on them.
            for inst in eps:
                if inst not in to_decide and selected.get(inst, (None,))[0] is None:
                    self._noop_counter += 1
                    to_decide[inst] = make_noop(
                        inst[0], self.env.node_id, self._noop_counter
                    )
                    accept_eps[inst] = eps[inst]
            cmd_ins = (
                {target.cid: pending.fins} if pending.fins else None
            )
            self._send_accept_round(
                to_decide,
                accept_eps,
                retry_command=target,
                cmd_ins=cmd_ins,
                scoped=pending.kind in ("gap", "recover"),
            )
            return

        # Conflicted (or pure gap) round: honour every forced value.
        # Multi-object forced commands whose recorded instance set is
        # not fully covered here are re-proposed atomically over that
        # set; unforced instances are filled with no-ops so the round's
        # prepared positions can never become permanent delivery gaps.
        to_decide: dict[Instance, Command] = {}
        cmd_ins: dict[tuple[int, int], tuple[Instance, ...]] = {}
        recoveries: dict[tuple[int, int], tuple[Command, tuple[Instance, ...]]] = {}
        for inst, (forced, _epoch, fins) in selected.items():
            if forced is None:
                self._noop_counter += 1
                to_decide[inst] = make_noop(
                    inst[0], self.env.node_id, self._noop_counter
                )
                continue
            fins_set = set(fins) if fins else {inst}
            if self._round_is_dead(forced, fins_set):
                # One of the forced command's sibling instances is
                # already decided with a *different* command, so its
                # round never reached a quorum anywhere (the quorum
                # would have covered the sibling too).  The stale
                # acceptance is safe to overwrite with a no-op --
                # resurrecting it would split its decision.
                self._noop_counter += 1
                to_decide[inst] = make_noop(
                    inst[0], self.env.node_id, self._noop_counter
                )
                continue
            group_ok = fins_set <= round_insts and all(
                selected[i][0] is not None and selected[i][0].cid == forced.cid
                for i in fins_set
            )
            if len(forced.ls) > 1 and fins_set != {inst} and not group_ok:
                recoveries[forced.cid] = (forced, tuple(fins))
                continue
            to_decide[inst] = forced
            if fins:
                cmd_ins[forced.cid] = tuple(fins)
        if to_decide:
            self._send_accept_round(
                to_decide,
                eps,
                retry_command=None,
                cmd_ins=cmd_ins,
                scoped=pending.kind in ("gap", "recover"),
            )
        for forced, fins in recoveries.values():
            self._schedule_recover_command(forced, fins)
        if pending.kind == "recover" and target is not None:
            self._active_recoveries.discard(target.cid)
        if pending.kind == "acquisition" and target is not None:
            self._retry(target)

    def _round_is_dead(
        self, command: Command, fins_set: set[Instance]
    ) -> bool:
        """True if any of the command's round instances is decided with
        a different command (hence the round never reached a quorum)."""
        for inst in fins_set:
            decided = self.state.decided_at(inst)
            if decided is not None and decided.cid != command.cid:
                return True
        return False

    @staticmethod
    def _select(
        eps: dict[Instance, int],
        replies: dict[
            int, dict[Instance, tuple[Optional[Command], int, tuple[Instance, ...]]]
        ],
    ) -> dict[Instance, tuple[Optional[Command], int, tuple[Instance, ...]]]:
        """Paxos phase-2a value selection per instance (Algorithm 4,
        lines 22-28): the command accepted in the highest epoch wins,
        along with the instance set of the round that accepted it."""
        out: dict[Instance, tuple[Optional[Command], int, tuple[Instance, ...]]] = {}
        for inst in eps:
            best: tuple[Optional[Command], int, tuple[Instance, ...]] = (None, -1, ())
            for decs in replies.values():
                cmd, epoch, fins = decs.get(inst, (None, -1, ()))
                if cmd is not None and epoch > best[1]:
                    best = (cmd, epoch, fins)
            out[inst] = best if best[0] is not None else (None, 0, ())
        return out

    # ------------------------------------------------------------------
    # Gap recovery timer
    # ------------------------------------------------------------------

    def _schedule_gap_check(self) -> None:
        period = self.config.gap_check_period * (0.75 + 0.5 * self.env.rng.random())

        def check() -> None:
            self._check_gaps()
            self._schedule_gap_check()

        self.env.set_timer(period, check)

    def _check_gaps(self) -> None:
        assert self.delivery is not None
        now = self.env.now()
        for l in list(self.state.gap_candidates):
            gap = self.delivery.undelivered_gap(l)
            if gap is None:
                self.state.gap_candidates.discard(l)
                continue
            obj = self.state.obj(l)
            if now - obj.last_progress >= self.config.gap_timeout:
                obj.last_progress = now  # rate-limit recovery attempts
                self._recover_gap(l, gap)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def on_message(self, sender: int, message: Message) -> None:
        if isinstance(message, Accept):
            self._on_accept(sender, message)
        elif isinstance(message, AckAccept):
            self._on_ack_accept(sender, message)
        elif isinstance(message, Decide):
            self._on_decide(sender, message)
        elif isinstance(message, Prepare):
            self._on_prepare(sender, message)
        elif isinstance(message, AckPrepare):
            self._on_ack_prepare(sender, message)
        elif isinstance(message, Forward):
            self._coordinate(message.command, hops=message.hops)
        else:
            raise TypeError(f"unexpected message: {message!r}")
