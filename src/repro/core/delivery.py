"""C-struct delivery engine (Algorithm 3, lines 12-16).

A command ``c`` may be appended to the local C-struct once, for every
object ``l`` in ``c.LS``, ``c`` is decided at exactly the next position
to append for ``l`` (``LastDecided[l] + 1``).  Appending advances the
pointer of every object of ``c``, which can unblock further commands,
so the engine loops until a fixpoint.

Two practical refinements over the pseudocode:

- commands that were decided at more than one position for the same
  object (possible when a NACKed accept round is later *forced* to
  completion by another node while the proposer already retried) are
  appended only once; the duplicate position is skipped like a no-op;
- no-op commands advance the pointer but are not handed to the
  application.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Optional

from repro.consensus.commands import Command
from repro.core.state import M2PaxosState


class DeliveryEngine:
    """Turns per-instance decisions into a delivered command sequence."""

    def __init__(
        self,
        state: M2PaxosState,
        deliver: Callable[[Command], None],
    ) -> None:
        self._state = state
        self._deliver = deliver
        self.cstruct: list[Command] = []
        self._appended_cids: set[tuple[int, int]] = set()

    def __contains__(self, command: Command) -> bool:
        return command.cid in self._appended_cids

    def record_decision(self, l: str, position: int, command: Command, now: float) -> bool:
        """Record ``Decided[l][position] = command``; returns True if new.

        Decisions are final: a second decision for the same instance is
        ignored (and, if it disagrees, reported by the caller's paranoia
        checks before we get here).
        """
        obj = self._state.obj(l)
        if position in obj.decided:
            return False
        obj.decided[position] = command
        obj.observe_position(position)
        obj.last_progress = now
        return True

    def pump(self, dirty: Optional[Iterable[str]] = None) -> list[Command]:
        """Append every deliverable command; return the new appends.

        ``dirty`` restricts the scan to objects whose frontier may have
        moved (the objects of a just-recorded decision); appending a
        command re-dirties its other objects.  Without ``dirty`` all
        objects are scanned (used by tests and after bulk loads).
        """
        appended: list[Command] = []
        work = deque(dirty if dirty is not None else self._state.objects)
        while work:
            l = work.popleft()
            obj = self._state.objects.get(l)
            if obj is None:
                continue
            while True:
                command = obj.decided.get(obj.appended + 1)
                if command is None:
                    break
                if command.noop or command.cid in self._appended_cids:
                    # Fillers and duplicate positions: just advance.
                    obj.appended += 1
                    continue
                if not self._ready(command):
                    break
                self._append(command)
                appended.append(command)
                for other in command.ls:
                    if other != l:
                        work.append(other)
        return appended

    def _ready(self, command: Command) -> bool:
        """Is ``command`` at the append frontier of all its objects?"""
        for l in command.ls:
            obj = self._state.objects.get(l)
            if obj is None:
                return False
            front = obj.decided.get(obj.appended + 1)
            if front is None or front.cid != command.cid:
                return False
        return True

    def _append(self, command: Command) -> None:
        for l in command.ls:
            self._state.obj(l).appended += 1
        self.cstruct.append(command)
        self._appended_cids.add(command.cid)
        self._deliver(command)

    def restore_append(self, command: Command) -> None:
        """Re-seat a command appended before a crash (snapshot replay).

        The restored object states already carry the final ``appended``
        pointers, so only the C-struct and the duplicate filter are
        rebuilt; the caller re-delivers to the application itself."""
        self.cstruct.append(command)
        self._appended_cids.add(command.cid)

    def undelivered_gap(self, l: str) -> Optional[int]:
        """Position blocking delivery for ``l``, if any.

        Returns ``appended + 1`` when some *higher* position is already
        decided but the frontier position is not -- the situation gap
        recovery must resolve (typically after a coordinator crash).
        """
        obj = self._state.objects.get(l)
        if obj is None:
            return None
        frontier = obj.appended + 1
        if frontier in obj.decided:
            return None
        # Any activity at or above the frontier (a higher decision, or an
        # accept/prepare that reserved the position) means the frontier
        # may be stuck -- e.g. its coordinator crashed mid-round.
        if obj.max_decided() > frontier or obj.next_slot > frontier:
            return frontier
        return None
