"""M2Paxos wire messages (Algorithms 1-4 of the paper).

Notation: an *instance* is the pair ``(l, in)`` -- object ``l`` at
delivery position ``in``.  ``ins`` sets are carried implicitly as the
key sets of the ``eps`` / ``to_decide`` dictionaries.

None of these messages carries dependency sets -- that absence is the
point of the protocol, and it is visible in :meth:`Message.size_bytes`:
M2Paxos messages stay small no matter how contended the workload is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.consensus.base import Message
from repro.consensus.commands import Command

Instance = tuple[str, int]
"""``(object id, position)`` -- one per-object consensus slot."""


@dataclass(frozen=True)
class Forward(Message):
    """PROPOSE(c) forwarded to the believed owner (Section IV-B).

    ``hops`` counts forwarding steps so stale ownership views cannot
    bounce a command around forever; past the hop limit the receiver
    acquires ownership itself.
    """

    command: Command
    hops: int = 0


@dataclass(frozen=True)
class Accept(Message):
    """ACCEPT: request acceptance of commands at instances (Algorithm 2).

    ``to_decide[(l, in)]`` is the command to accept at that instance and
    ``eps[(l, in)]`` the epoch it is proposed in.  ``req`` correlates
    the replies back to one accept round at the coordinator.

    ``cmd_ins`` optionally carries a command's *authoritative* full
    instance set when this round covers only part of it (a recovery of
    the still-undecided subset).  Acceptors must remember the full set,
    or a later force would treat the command as single-instance and
    split its decision across misaligned positions.
    """

    req: int
    to_decide: dict[Instance, Command]
    eps: dict[Instance, int]
    cmd_ins: dict[tuple[int, int], tuple[Instance, ...]] = field(
        default_factory=dict
    )
    # Scoped rounds (gap / forced-command recovery) arbitrate purely at
    # instance level and do not claim or contest object ownership.
    scoped: bool = False


@dataclass(frozen=True)
class AckAccept(Message):
    """ACKACCEPT: positive or negative vote on an Accept.

    Carries only the *ids* of the voted commands -- every recipient
    already holds the bodies from the Accept broadcast (and a real
    implementation would never echo payloads back).

    On NACK, ``max_rnd`` reports the highest epoch the rejecting node
    has promised for any of the refused instances, so the coordinator
    can catch its epoch counters up instead of probing one step at a
    time.
    """

    req: int
    coordinator: int
    ok: bool
    cids: dict[Instance, tuple[int, int]]
    eps: dict[Instance, int]
    max_rnd: int = 0


@dataclass(frozen=True)
class Decide(Message):
    """DECIDE: the coordinator learned a quorum; finalise the instances."""

    to_decide: dict[Instance, Command]


@dataclass(frozen=True)
class Prepare(Message):
    """PREPARE: ownership acquisition, a multi-object Paxos phase 1a.

    A *scoped* prepare (gap / forced-command recovery) targets explicit
    stalled instances with instance-level ballots and does not dethrone
    the object's owner; an unscoped one starts a new object epoch and
    its replies report the object's whole active tail (Multi-Paxos view
    change).
    """

    req: int
    eps: dict[Instance, int]
    scoped: bool = False


@dataclass(frozen=True)
class RenewLease(Message):
    """RENEWLEASE: keep owner-local reads alive through idle periods.

    ``objs`` maps each object to the epoch the sender owns it under.
    Each receiving acceptor that still recognises the sender as the
    current owner re-grants a read lease for the configured duration,
    counted from its *own* receipt clock (the owner counts from its send
    clock minus the skew margin, which is what makes the lease safe
    under bounded clock skew).  Accept traffic renews leases implicitly;
    this message only exists for read-heavy objects with no writes in
    flight.
    """

    req: int
    objs: dict[str, int]


@dataclass(frozen=True)
class AckRenew(Message):
    """ACKRENEW: the subset of requested objects this acceptor granted."""

    req: int
    granted: tuple[str, ...]


@dataclass(frozen=True)
class ReleaseLease(Message):
    """RELEASELEASE: an owner voluntarily gives its lease back early.

    Sent after the owner has *already* stopped serving local reads
    (its own promise record moved past the leased epoch), so acceptors
    may clear their grants and let a parked acquisition proceed without
    waiting out the wall-clock expiry.
    """

    objs: dict[str, int]


@dataclass(frozen=True)
class AckPrepare(Message):
    """ACKPREPARE: Paxos phase 1b over all requested instances.

    ``decs[(l, in)]`` is ``(accepted command or None, epoch it was
    accepted in, the accept round's full instance set)`` -- what SELECT
    needs to compute the commands that must be *forced* (Algorithm 4,
    lines 22-28) and, for multi-object commands, the instance set their
    recovery must cover atomically.
    ``max_rnd`` serves the same catch-up role as in :class:`AckAccept`.
    """

    req: int
    ok: bool
    decs: dict[
        Instance, tuple[Optional[Command], int, tuple[Instance, ...]]
    ] = field(default_factory=dict)
    max_rnd: int = 0
