"""Per-run metrics collection.

The collector hooks every node's delivery stream.  A command's latency
is measured at its *proposer*: the time from the client's C-PROPOSE to
the moment the proposer's own replica delivers the command (the point
at which a replicated state machine could answer the client).
Throughput counts each command once, at first delivery anywhere, inside
the measurement window (after warm-up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.consensus.commands import Command
from repro.metrics.stats import Summary, summarize
from repro.sim.cluster import Cluster


@dataclass
class RunResult:
    """What one simulated run produced."""

    duration: float
    delivered: int
    throughput: float
    latency: Optional[Summary]
    messages_sent: int
    bytes_sent: int
    proposed: int = 0
    extra: dict = field(default_factory=dict)


class MetricsCollector:
    """Attach to a cluster before driving load through it."""

    def __init__(self, cluster: Cluster, warmup: float = 0.0) -> None:
        self.cluster = cluster
        self.warmup = warmup
        self._propose_times: dict[tuple[int, int], float] = {}
        self._first_delivery: set[tuple[int, int]] = set()
        self._latencies: list[float] = []
        self._window_delivered = 0
        self._window_start: Optional[float] = None
        self._window_end: Optional[float] = None
        self.proposed = 0
        for node in cluster.nodes:
            node.deliver_listeners.append(self._on_deliver)

    # ------------------------------------------------------------------

    def on_propose(self, command: Command) -> None:
        """Call right before handing the command to the cluster."""
        self.proposed += 1
        self._propose_times[command.cid] = self.cluster.loop.now

    def begin_window(self) -> None:
        """Start the measurement window (end of warm-up)."""
        self._window_start = self.cluster.loop.now

    def end_window(self) -> None:
        self._window_end = self.cluster.loop.now

    def _in_window(self, now: float) -> bool:
        if self._window_start is None or now < self._window_start:
            return False
        return self._window_end is None or now <= self._window_end

    def _on_deliver(self, node_id: int, command: Command, now: float) -> None:
        if command.cid not in self._first_delivery:
            self._first_delivery.add(command.cid)
            if self._in_window(now):
                self._window_delivered += 1
        if command.proposer == node_id:
            start = self._propose_times.pop(command.cid, None)
            if start is not None and self._in_window(now):
                self._latencies.append(now - start)

    # ------------------------------------------------------------------

    @property
    def inflight_of(self) -> dict[tuple[int, int], float]:
        return self._propose_times

    def result(self) -> RunResult:
        if self._window_start is None:
            raise RuntimeError("begin_window() was never called")
        end = (
            self._window_end
            if self._window_end is not None
            else self.cluster.loop.now
        )
        duration = max(end - self._window_start, 1e-12)
        latency = summarize(self._latencies) if self._latencies else None
        return RunResult(
            duration=duration,
            delivered=self._window_delivered,
            throughput=self._window_delivered / duration,
            latency=latency,
            messages_sent=self.cluster.network.messages_sent,
            bytes_sent=self.cluster.network.bytes_sent,
            proposed=self.proposed,
        )
