"""Per-run metrics collection.

The collector hooks every node's delivery stream.  A command's latency
is measured at its *proposer*: the time from the client's C-PROPOSE to
the moment the proposer's own replica delivers the command (the point
at which a replicated state machine could answer the client).
Throughput counts each command once, at first delivery anywhere, inside
the measurement window (after warm-up).

The same collector serves both substrates: a simulated ``Cluster``
(virtual clock, network counters) and the asyncio ``LocalCluster``
(wall clock, wire counters from the flush point).  Each collector
embeds an :class:`~repro.obs.collect.ObsCollector` (exposed as
``.obs``), so every run also gets the per-command decision-path
breakdown -- fast / forward / slow / acquisition counts and latency
summaries -- reconstructed from the protocols' structured notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.consensus.commands import Command
from repro.metrics.stats import Summary, summarize
from repro.obs.collect import ObsCollector
from repro.obs.span import PathStats
from repro.obs.span import fast_ratio as _fast_ratio


@dataclass
class RunResult:
    """What one run (simulated or live) produced."""

    duration: float
    delivered: int
    throughput: float
    latency: Optional[Summary]
    messages_sent: int
    bytes_sent: int
    proposed: int = 0
    extra: dict = field(default_factory=dict)
    # Flush-point observability: every protocol event's sends pass
    # through one Env flush, where the collector counts them by message
    # type and sums payload bytes headed for the wire.
    message_types: dict = field(default_factory=dict)
    flush_batches: int = 0
    wire_messages: int = 0
    wire_bytes: int = 0
    # Decision-path breakdown from the span layer: path name ->
    # PathStats (count + latency summary), window-scoped like the
    # throughput and latency numbers above.
    paths: dict[str, PathStats] = field(default_factory=dict)
    # Commands proposed but never delivered anywhere by the end of the
    # run (lost, or still in flight when the window closed).
    inflight: int = 0
    # Reads answered locally by a leased owner (plus exactly-once
    # session replays): completed client operations that never enter the
    # decision log, counted into ``throughput`` alongside ``delivered``.
    reads_served: int = 0

    @property
    def avg_batch_size(self) -> float:
        """Messages per flush batch (1.0 means no batching win)."""
        if self.flush_batches == 0:
            return 0.0
        return self.wire_messages / self.flush_batches

    @property
    def fast_ratio(self) -> float:
        """Fraction of windowed commands that stayed on the fast path."""
        return _fast_ratio(self.paths)


class MetricsCollector:
    """Attach to a cluster before driving load through it.

    Accepts either a sim ``Cluster`` or a runtime ``LocalCluster``;
    the embedded :class:`ObsCollector` picks the matching clock.
    """

    def __init__(self, cluster, warmup: float = 0.0, record_spans: bool = False) -> None:
        self.cluster = cluster
        self.warmup = warmup
        self.obs = ObsCollector.for_cluster(cluster, record_spans=record_spans)
        self._clock = self.obs.clock
        self._propose_times: dict[tuple[int, int], float] = {}
        self._first_delivery: set[tuple[int, int]] = set()
        self._latencies: list[float] = []
        self._window_delivered = 0
        self._window_reads = 0
        self._window_start: Optional[float] = None
        self._window_end: Optional[float] = None
        self.proposed = 0
        for node in cluster.nodes:
            node.deliver_listeners.append(self._on_deliver)
            listeners = getattr(node, "read_listeners", None)
            if listeners is not None:
                listeners.append(self._on_read)

    # ------------------------------------------------------------------

    def on_propose(self, command: Command) -> None:
        """Call right before handing the command to the cluster."""
        self.proposed += 1
        self._propose_times[command.cid] = self._clock.now()

    def begin_window(self) -> None:
        """Start the measurement window (end of warm-up)."""
        self._window_start = self._clock.now()

    def end_window(self) -> None:
        self._window_end = self._clock.now()

    def _in_window(self, now: float) -> bool:
        if self._window_start is None or now < self._window_start:
            return False
        return self._window_end is None or now <= self._window_end

    def _on_deliver(self, node_id: int, command: Command, now: float) -> None:
        if command.cid not in self._first_delivery:
            self._first_delivery.add(command.cid)
            if self._in_window(now):
                self._window_delivered += 1
        if command.proposer == node_id:
            start = self._propose_times.pop(command.cid, None)
            if start is not None and self._in_window(now):
                self._latencies.append(now - start)

    def _on_read(
        self, node_id: int, command: Command, result: object, now: float
    ) -> None:
        """A leased read (or session replay) completed at its proposer
        without entering the decision log: count it as a finished client
        operation and measure its latency like any other command."""
        if self._in_window(now):
            self._window_reads += 1
        start = self._propose_times.pop(command.cid, None)
        if start is not None and self._in_window(now):
            self._latencies.append(now - start)

    # ------------------------------------------------------------------

    @property
    def inflight_of(self) -> dict[tuple[int, int], float]:
        return self._propose_times

    def detach(self) -> None:
        """Unhook from the cluster (deliver listeners + observers)."""
        for node in self.cluster.nodes:
            try:
                node.deliver_listeners.remove(self._on_deliver)
            except ValueError:
                pass
            listeners = getattr(node, "read_listeners", None)
            if listeners is not None:
                try:
                    listeners.remove(self._on_read)
                except ValueError:
                    pass
        self.obs.detach()

    def result(self) -> RunResult:
        if self._window_start is None:
            raise RuntimeError("begin_window() was never called")
        end = self._window_end if self._window_end is not None else self._clock.now()
        duration = max(end - self._window_start, 1e-12)
        latency = summarize(self._latencies) if self._latencies else None
        # The sim network counts every transmitted message; the runtime
        # has no such tap, so wire counters from the flush point stand in.
        network = getattr(self.cluster, "network", None)
        messages_sent = (
            network.messages_sent if network is not None else self.obs.wire_messages
        )
        bytes_sent = (
            network.bytes_sent if network is not None else self.obs.wire_bytes
        )
        return RunResult(
            duration=duration,
            delivered=self._window_delivered,
            throughput=(self._window_delivered + self._window_reads) / duration,
            latency=latency,
            messages_sent=messages_sent,
            bytes_sent=bytes_sent,
            proposed=self.proposed,
            message_types=dict(self.obs.message_types),
            flush_batches=self.obs.flush_batches,
            wire_messages=self.obs.wire_messages,
            wire_bytes=self.obs.wire_bytes,
            paths=self.obs.path_stats(self._window_start, end),
            inflight=len(self._propose_times),
            reads_served=self._window_reads,
        )
