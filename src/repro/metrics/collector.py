"""Per-run metrics collection.

The collector hooks every node's delivery stream.  A command's latency
is measured at its *proposer*: the time from the client's C-PROPOSE to
the moment the proposer's own replica delivers the command (the point
at which a replicated state machine could answer the client).
Throughput counts each command once, at first delivery anywhere, inside
the measurement window (after warm-up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.consensus.commands import Command
from repro.metrics.stats import Summary, summarize
from repro.sim.cluster import Cluster


@dataclass
class RunResult:
    """What one simulated run produced."""

    duration: float
    delivered: int
    throughput: float
    latency: Optional[Summary]
    messages_sent: int
    bytes_sent: int
    proposed: int = 0
    extra: dict = field(default_factory=dict)
    # Flush-point observability: every protocol event's sends pass
    # through one Env flush, where the collector counts them by message
    # type and sums payload bytes headed for the wire.
    message_types: dict = field(default_factory=dict)
    flush_batches: int = 0
    wire_messages: int = 0
    wire_bytes: int = 0

    @property
    def avg_batch_size(self) -> float:
        """Messages per flush batch (1.0 means no batching win)."""
        if self.flush_batches == 0:
            return 0.0
        return self.wire_messages / self.flush_batches


class MetricsCollector:
    """Attach to a cluster before driving load through it."""

    def __init__(self, cluster: Cluster, warmup: float = 0.0) -> None:
        self.cluster = cluster
        self.warmup = warmup
        self._propose_times: dict[tuple[int, int], float] = {}
        self._first_delivery: set[tuple[int, int]] = set()
        self._latencies: list[float] = []
        self._window_delivered = 0
        self._window_start: Optional[float] = None
        self._window_end: Optional[float] = None
        self.proposed = 0
        self.message_types: dict[str, int] = {}
        self.flush_batches = 0
        self.wire_messages = 0
        self.wire_bytes = 0
        for node in cluster.nodes:
            node.deliver_listeners.append(self._on_deliver)
            node.env.add_flush_hook(self._on_flush)

    # ------------------------------------------------------------------

    def on_propose(self, command: Command) -> None:
        """Call right before handing the command to the cluster."""
        self.proposed += 1
        self._propose_times[command.cid] = self.cluster.loop.now

    def begin_window(self) -> None:
        """Start the measurement window (end of warm-up)."""
        self._window_start = self.cluster.loop.now

    def end_window(self) -> None:
        self._window_end = self.cluster.loop.now

    def _in_window(self, now: float) -> bool:
        if self._window_start is None or now < self._window_start:
            return False
        return self._window_end is None or now <= self._window_end

    def _on_flush(self, src, queued, batches) -> None:
        self.flush_batches += len(batches)
        for _dst, message in queued:
            name = type(message).__name__
            self.message_types[name] = self.message_types.get(name, 0) + 1
            self.wire_messages += 1
            self.wire_bytes += message.size_bytes()

    def _on_deliver(self, node_id: int, command: Command, now: float) -> None:
        if command.cid not in self._first_delivery:
            self._first_delivery.add(command.cid)
            if self._in_window(now):
                self._window_delivered += 1
        if command.proposer == node_id:
            start = self._propose_times.pop(command.cid, None)
            if start is not None and self._in_window(now):
                self._latencies.append(now - start)

    # ------------------------------------------------------------------

    @property
    def inflight_of(self) -> dict[tuple[int, int], float]:
        return self._propose_times

    def result(self) -> RunResult:
        if self._window_start is None:
            raise RuntimeError("begin_window() was never called")
        end = (
            self._window_end
            if self._window_end is not None
            else self.cluster.loop.now
        )
        duration = max(end - self._window_start, 1e-12)
        latency = summarize(self._latencies) if self._latencies else None
        return RunResult(
            duration=duration,
            delivered=self._window_delivered,
            throughput=self._window_delivered / duration,
            latency=latency,
            messages_sent=self.cluster.network.messages_sent,
            bytes_sent=self.cluster.network.bytes_sent,
            proposed=self.proposed,
            message_types=dict(self.message_types),
            flush_batches=self.flush_batches,
            wire_messages=self.wire_messages,
            wire_bytes=self.wire_bytes,
        )
