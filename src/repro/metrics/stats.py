"""Small statistics helpers (no external dependencies).

The paper reports medians and averages of at least five runs; we keep
the same vocabulary: :func:`percentile` uses linear interpolation (the
same definition as ``numpy.percentile``'s default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("no values")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    interpolated = ordered[lower] * (1 - fraction) + ordered[upper] * fraction
    # Clamp: interpolation can overshoot the bracketing values by an ulp.
    return min(max(interpolated, ordered[lower]), ordered[upper])


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("no values")
    return sum(values) / len(values)


@dataclass(frozen=True)
class Summary:
    """Latency distribution summary, in seconds."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def scaled(self, factor: float) -> "Summary":
        """Unit conversion helper (e.g. seconds -> milliseconds)."""
        return Summary(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            minimum=self.minimum * factor,
            maximum=self.maximum * factor,
        )


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        raise ValueError("no values to summarise")
    return Summary(
        count=len(values),
        mean=mean(values),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        p99=percentile(values, 99),
        minimum=min(values),
        maximum=max(values),
    )


def summarize_sketch(sketch) -> Summary:
    """A :class:`Summary` from a streaming
    :class:`~repro.obs.telemetry.sketch.LogSketch` in O(buckets).

    ``count``, ``mean``, ``minimum`` and ``maximum`` are exact (the
    sketch tracks them on the side); the percentiles are bucket
    estimates within ``sketch.relative_error`` of the exact order
    statistics bracketing the interpolated rank -- about 4.5% at the
    default growth factor.  For interval (differenced) sketches, which
    carry no exact extrema, min/max fall back to the 0th/100th
    percentile estimates.
    """
    if sketch.count == 0:
        raise ValueError("no values to summarise")
    minimum = sketch.minimum
    maximum = sketch.maximum
    if minimum is None or maximum is None:
        minimum = sketch.quantile(0)
        maximum = sketch.quantile(100)
    return Summary(
        count=sketch.count,
        mean=sketch.total / sketch.count,
        p50=sketch.quantile(50),
        p95=sketch.quantile(95),
        p99=sketch.quantile(99),
        minimum=minimum,
        maximum=maximum,
    )
