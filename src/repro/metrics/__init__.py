"""Measurement: latency recording, throughput windows, percentiles."""

from repro.metrics.stats import Summary, percentile, summarize
from repro.metrics.collector import MetricsCollector

__all__ = ["Summary", "percentile", "summarize", "MetricsCollector"]
