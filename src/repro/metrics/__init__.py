"""Measurement: latency recording, throughput windows, percentiles."""

from repro.metrics.stats import Summary, percentile, summarize

__all__ = ["Summary", "percentile", "summarize", "MetricsCollector"]


def __getattr__(name):
    # Imported lazily to break the cycle metrics -> collector ->
    # obs.collect -> obs.span -> metrics.stats: anyone may now import
    # the obs and metrics packages in either order.
    if name == "MetricsCollector":
        from repro.metrics.collector import MetricsCollector

        return MetricsCollector
    raise AttributeError(name)
