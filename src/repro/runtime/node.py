"""One live node: TCP server + peer connections + asyncio Env.

The protocol object is single-threaded by construction: every inbound
frame, timer, and proposal is dispatched on the event loop, so no locks
are needed -- the same execution model as the simulator.
"""

from __future__ import annotations

import asyncio
import random
from typing import Awaitable, Callable, Optional

from repro.consensus.base import Env, Message, Protocol, TimerHandle
from repro.consensus.commands import Command
from repro.runtime.codec import (
    FRAME_HEADER,
    MAX_FRAME,
    decode_message,
    encode_message,
)

Address = tuple[str, int]


class _AsyncTimer(TimerHandle):
    __slots__ = ("_handle",)

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()


class RuntimeEnv(Env):
    """Env implementation over asyncio."""

    def __init__(self, node: "RuntimeNode") -> None:
        self._node = node
        self.node_id = node.node_id
        self.n_nodes = len(node.peers)
        self._rng = random.Random(node.node_id * 7919 + 17)

    def send(self, dst: int, message: Message) -> None:
        self._node.send(dst, message)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        loop = asyncio.get_running_loop()
        return _AsyncTimer(loop.call_later(delay, callback))

    def now(self) -> float:
        return asyncio.get_running_loop().time()

    def deliver(self, command: Command) -> None:
        self._node.delivered.append(command)
        for listener in self._node.deliver_listeners:
            listener(self.node_id, command)

    @property
    def rng(self) -> random.Random:
        return self._rng


class RuntimeNode:
    """Hosts one protocol instance on a real TCP endpoint."""

    def __init__(
        self,
        node_id: int,
        peers: dict[int, Address],
        protocol: Protocol,
    ) -> None:
        if node_id not in peers:
            raise ValueError("peers must include this node's own address")
        self.node_id = node_id
        self.peers = peers
        self.protocol = protocol
        self.delivered: list[Command] = []
        self.deliver_listeners: list[Callable[[int, Command], None]] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._connecting: dict[int, asyncio.Lock] = {}
        self._closed = False

        self.env = RuntimeEnv(self)
        protocol.bind(self.env)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        host, port = self.peers[self.node_id]
        self._server = await asyncio.start_server(self._on_connection, host, port)
        self.protocol.on_start()

    async def stop(self) -> None:
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------

    def propose(self, command: Command) -> None:
        self.protocol.propose(command)

    def send(self, dst: int, message: Message) -> None:
        if dst == self.node_id:
            # Local loopback: dispatch on the next loop tick so handlers
            # never re-enter the protocol synchronously.
            loop = asyncio.get_running_loop()
            loop.call_soon(self._dispatch, self.node_id, message)
            return
        frame = encode_message(self.node_id, message)
        writer = self._writers.get(dst)
        if writer is not None and not writer.is_closing():
            writer.write(frame)
            return
        asyncio.ensure_future(self._connect_and_send(dst, frame))

    async def _connect_and_send(self, dst: int, frame: bytes) -> None:
        lock = self._connecting.setdefault(dst, asyncio.Lock())
        async with lock:
            writer = self._writers.get(dst)
            if writer is None or writer.is_closing():
                host, port = self.peers[dst]
                try:
                    _reader, writer = await asyncio.open_connection(host, port)
                except OSError:
                    return  # peer down; retries ride on protocol timers
                self._writers[dst] = writer
            writer.write(frame)

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._closed:
                header = await reader.readexactly(FRAME_HEADER.size)
                (size,) = FRAME_HEADER.unpack(header)
                if size > MAX_FRAME:
                    raise ValueError(f"oversized frame: {size}")
                payload = await reader.readexactly(size)
                sender, message = decode_message(payload)
                self._dispatch(sender, message)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            # Server shut down while this handler was awaiting a frame.
            pass
        finally:
            writer.close()

    def _dispatch(self, sender: int, message: Message) -> None:
        if not self._closed:
            self.protocol.on_message(sender, message)
