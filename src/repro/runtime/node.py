"""One live node: TCP server + peer connections + asyncio Env.

The protocol object is single-threaded by construction: every inbound
frame, timer, and proposal is dispatched on the event loop, so no locks
are needed -- the same execution model as the simulator.

Outbound traffic mirrors the simulator's outbox pipeline: each protocol
event's sends are buffered, then flushed per destination.  A flush
appends the encoded frames to a per-destination queue drained by a
single sender task, which coalesces everything queued into one
``writer.write`` and awaits ``drain()`` for backpressure.  One queue +
one sender per destination means wire order always matches send order
-- including across reconnects, where the old ad-hoc
``_connect_and_send`` futures could race each other and direct writes.

Failure semantics match the simulator's: :meth:`RuntimeNode.stop` is a
real crash (timers cancelled, senders killed, the listening server
*and* every established inbound connection closed, so a dead node
processes nothing), and :meth:`RuntimeNode.restart` boots a new
incarnation either durably or with amnesia.  An optional
:class:`~repro.chaos.injector.WireFaults` shim on the send path drops,
duplicates, or delays outbound messages per a declarative fault plan.
"""

from __future__ import annotations

import asyncio
import random
from typing import Callable, Optional

from repro.consensus.base import (
    Env,
    Message,
    Protocol,
    Storage,
    StorageFull,
    TimerHandle,
)
from repro.consensus.commands import Command
from repro.runtime.codec import (
    FRAME_HEADER,
    MAX_FRAME,
    decode_message,
    encode_message,
    encode_message_into,
    encode_payload_json,
)
from repro.storage.recovery import recover_protocol

Address = tuple[str, int]

_READ_CHUNK = 256 * 1024
"""Inbound socket read size: many frames arrive per syscall at
saturation, and the frame parser slices them out of one buffer."""


class _AsyncTimer(TimerHandle):
    """A live protocol timer; tracked by its node until fired/cancelled
    so ``stop()`` can cancel stragglers."""

    __slots__ = ("_handle", "_registry")

    def __init__(self, registry: set["_AsyncTimer"]) -> None:
        self._handle: Optional[asyncio.TimerHandle] = None
        self._registry = registry

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
        self._registry.discard(self)


class RuntimeEnv(Env):
    """Env implementation over asyncio."""

    def __init__(self, node: "RuntimeNode") -> None:
        self._node = node
        self.node_id = node.node_id
        self.n_nodes = len(node.peers)
        self._rng = random.Random(node.node_id * 7919 + 17)

    def _transmit(self, dst: int, message: Message) -> None:
        self._node.enqueue(dst, [message])

    def _flush(
        self,
        queued: list[tuple[int, Message]],
        batches: dict[int, list[Message]],
    ) -> None:
        # One enqueue per destination: the whole batch becomes a single
        # coalesced write on that destination's connection.
        for dst, messages in batches.items():
            self._node.enqueue(dst, messages)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        node = self._node
        timer = _AsyncTimer(node._timers)
        if node._closed:
            # A crashed machine arms nothing; the handle is inert.
            return timer
        loop = asyncio.get_running_loop()

        def fire() -> None:
            node._timers.discard(timer)
            node.run_event(callback)

        timer._handle = loop.call_later(delay, fire)
        node._timers.add(timer)
        return timer

    def now(self) -> float:
        return asyncio.get_running_loop().time()

    def _deliver(self, command: Command) -> None:
        self._node.delivered.append(command)
        now = self.now()
        for listener in self._node.deliver_listeners:
            listener(self.node_id, command, now)

    def _deliver_read(self, command: Command, result: object) -> None:
        self._node.on_read(command, result)

    @property
    def rng(self) -> random.Random:
        return self._rng


class RuntimeNode:
    """Hosts one protocol instance on a real TCP endpoint."""

    def __init__(
        self,
        node_id: int,
        peers: dict[int, Address],
        protocol: Protocol,
        storage: Optional[Storage] = None,
        codec: str = "binary",
    ) -> None:
        if node_id not in peers:
            raise ValueError("peers must include this node's own address")
        if codec not in ("binary", "json"):
            raise ValueError(f"codec must be 'binary' or 'json', got {codec!r}")
        self.node_id = node_id
        self.peers = peers
        self.protocol = protocol
        self.codec = codec
        self.delivered: list[Command] = []
        # One entry per finished amnesia incarnation, as in SimNode.
        self.delivery_history: list[list[Command]] = []
        self.incarnation = 0
        # Same shape as SimNode's: ``listener(node_id, command, now)``,
        # so one metrics collector serves both substrates.
        self.deliver_listeners: list[Callable[[int, Command, float], None]] = []
        # Locally-served (leased) reads and exactly-once session replays,
        # kept apart from ``delivered``: served reads happen at the owner
        # alone and never enter the replicated decision log.
        self.read_log: list[tuple[Command, object]] = []
        self.read_listeners: list[
            Callable[[int, Command, object, float], None]
        ] = []
        # Optional chaos shim (repro.chaos.injector.WireFaults): maps
        # ``(src, dst, now)`` to the delay offsets of the copies of each
        # outbound message -- [] drops, [0.0] passes, more duplicates.
        self.wire_faults: Optional[Callable[[int, int, float], list[float]]] = None
        # Scrape address of this node's Prometheus /metrics endpoint,
        # stamped by LocalCluster.start_telemetry(serve=True).
        self.metrics_address: Optional[Address] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._inbound: set[asyncio.StreamWriter] = set()
        self._outgoing: dict[int, list[bytes]] = {}
        self._senders: dict[int, asyncio.Task] = {}
        # Last per-destination depth reported via the ``outbox_depth``
        # note (emit-on-change; see ``_enqueue_frames``).
        self._outbox_noted: dict[int, int] = {}
        self._timers: set[_AsyncTimer] = set()
        self._closed = False

        self.env = RuntimeEnv(self)
        if storage is not None:
            # The storage object survives crash/restart on the env,
            # exactly as a disk survives a process death (and for
            # DiskStorage it *is* real files).
            self.env.storage = storage
            storage.attach(self.env, lambda: self.protocol.snapshot_payload())
        protocol.bind(self.env)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        host, port = self.peers[self.node_id]
        self._server = await asyncio.start_server(self._on_connection, host, port)
        self.run_event(self.protocol.on_start)

    async def stop(self) -> None:
        """Crash this node for real.

        Beyond cancelling timers and senders, every established inbound
        connection is closed too -- a stopped node must not keep
        processing frames that arrive on sockets accepted before the
        "crash".  The node stays constructible into a new incarnation
        via :meth:`restart`.
        """
        if self._closed:
            return
        self.env.observe("fault", event="crash", incarnation=self.incarnation)
        self._closed = True
        # Protocol timers must not fire into a closed node: cancel every
        # live handle (fired/cancelled timers deregister themselves).
        for timer in list(self._timers):
            timer.cancel()
        self._timers.clear()
        # Records and group-commit releases not yet fsynced die with the
        # process; only what the storage flushed survives.
        self.env.storage.discard_pending()
        senders = list(self._senders.values())
        self._senders.clear()
        for task in senders:
            task.cancel()
        if senders:
            await asyncio.gather(*senders, return_exceptions=True)
        self._outgoing.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        for writer in list(self._inbound):
            writer.close()
        self._inbound.clear()

    async def restart(
        self, protocol: Optional[Protocol] = None, *, recover: bool = False
    ) -> None:
        """Boot a new incarnation of this node.

        ``recover=True`` (requires a fresh ``protocol`` and a durable
        storage) replays the store's snapshot + log tail into it -- the
        same recovery scan the simulator's ``restart_from_storage``
        runs.  Otherwise ``protocol=None`` is the legacy durable-log
        restart (the protocol object survives; :meth:`Protocol.on_restart`
        clears volatile round state) and passing a fresh ``protocol``
        without ``recover`` is an amnesia restart (the old delivery log
        is archived, the node rejoins blank).
        """
        if not self._closed:
            raise RuntimeError(f"node {self.node_id} is not stopped")
        if recover:
            if protocol is None:
                raise ValueError("recover=True requires a fresh protocol")
            if not self.env.storage.durable:
                raise RuntimeError(
                    f"node {self.node_id} has no durable storage"
                )
        self.incarnation += 1
        if recover:
            mode = "durable"
            self.delivery_history.append(self.delivered)
            self.delivered = []
            protocol.bind(self.env)
            self.protocol = protocol
        elif protocol is None:
            mode = "durable"
            self.protocol.on_restart()
        else:
            mode = "amnesia"
            self.delivery_history.append(self.delivered)
            self.delivered = []
            protocol.bind(self.env)
            self.protocol = protocol
        self._closed = False
        self.env.observe(
            "fault",
            event="restart",
            mode=mode,
            incarnation=self.incarnation,
            recovered=recover,
        )
        if recover:

            def replay() -> None:
                stats = recover_protocol(self.protocol, self.env.storage)
                self.env.observe(
                    "recovery", delivered=len(self.delivered), **stats
                )

            self.run_event(replay)
        await self.start()

    # ------------------------------------------------------------------
    # Outbound
    # ------------------------------------------------------------------

    def run_event(self, fn: Callable[[], None]) -> None:
        """Run one protocol event inside the env's outbox scope.

        :class:`StorageFull` is fail-stop, as in the simulator: the
        event's outbox is discarded and the node crashes (``stop()`` is
        scheduled -- it is async -- but the discarded outbox already
        guarantees no unpersisted ack escaped)."""
        if self._closed:
            return
        self.env.begin_event()
        storage_failed = False
        try:
            try:
                fn()
            except StorageFull:
                storage_failed = True
        finally:
            try:
                self.env.end_event(discard=storage_failed)
            except StorageFull:
                storage_failed = True
                self.env.storage.discard_pending()
        if storage_failed:
            asyncio.ensure_future(self.stop())

    def propose(self, command: Command) -> None:
        if self._closed:
            # A dead machine takes no client requests.
            return
        self.env.observe_propose(command)
        self.run_event(lambda: self.protocol.propose(command))

    def on_read(self, command: Command, result: object) -> None:
        """Record one locally-served read/session-replay result."""
        if self._closed:
            return
        self.read_log.append((command, result))
        now = asyncio.get_running_loop().time()
        for listener in self.read_listeners:
            listener(self.node_id, command, result, now)

    def _encode(self, message: Message) -> bytes:
        """One length-prefixed frame in this node's configured codec.

        ``binary`` (default) uses the compact codec with its automatic
        JSON fallback for unregistered classes; ``json`` forces the
        debug-friendly JSON payload for every message.  Both decode
        through the same :func:`decode_message`, so codecs can be mixed
        per node on one cluster.
        """
        if self.codec == "json":
            payload = encode_payload_json(self.node_id, message)
            return FRAME_HEADER.pack(len(payload)) + payload
        return encode_message(self.node_id, message)

    def _encode_batch(self, messages: list[Message]) -> bytearray:
        """One flush batch's frames, encoded back to back into a single
        buffer -- the zero-copy counterpart of per-message ``_encode``
        (no intermediate ``bytes`` per frame, no join)."""
        out = bytearray()
        if self.codec == "json":
            node_id = self.node_id
            for message in messages:
                payload = encode_payload_json(node_id, message)
                out += FRAME_HEADER.pack(len(payload))
                out += payload
        else:
            node_id = self.node_id
            for message in messages:
                encode_message_into(out, node_id, message)
        return out

    def enqueue(self, dst: int, messages: list[Message]) -> None:
        """Queue one flush batch for ``dst`` and kick its sender task."""
        if self._closed:
            return
        if dst == self.node_id:
            # Local loopback: dispatch on the next loop tick so handlers
            # never re-enter the protocol synchronously.  Chaos leaves
            # loopback alone (it never crosses the wire).
            loop = asyncio.get_running_loop()
            for message in messages:
                loop.call_soon(self._dispatch, self.node_id, message)
            return
        faults = self.wire_faults
        if faults is None:
            frames = self._encode_batch(messages)
            # Real encoded frame bytes, measured for free post-encode --
            # telemetry's wire_bytes counter without a size estimate.
            self.env.observe("wire_bytes", bytes=len(frames))
            self._enqueue_frames(dst, frames)
            return
        # Fault shim: evaluate drop/duplicate/delay per message.  On-time
        # copies of one batch still coalesce into a single write; delayed
        # copies are re-queued by the event loop when their extra delay
        # elapses (FIFO order within the link is deliberately broken --
        # that is the fault being injected).
        loop = asyncio.get_running_loop()
        now = loop.time()
        on_time: list[bytes] = []
        sent_bytes = 0
        for message in messages:
            frame = self._encode(message)
            for extra in faults(self.node_id, dst, now):
                sent_bytes += len(frame)
                if extra <= 0:
                    on_time.append(frame)
                else:
                    loop.call_later(extra, self._enqueue_frames, dst, frame)
        if sent_bytes:
            self.env.observe("wire_bytes", bytes=sent_bytes)
        if on_time:
            self._enqueue_frames(dst, b"".join(on_time))

    def _enqueue_frames(self, dst: int, frames: "bytes | bytearray") -> None:
        if self._closed:
            return
        queue = self._outgoing.setdefault(dst, [])
        queue.append(frames)
        # Queue depth in *flush batches* awaiting the sender task: the
        # backpressure signal a slow peer produces.  Noted only on
        # change -- a healthy sender holds the queue at one batch, so a
        # per-enqueue note would re-report the same depth per command,
        # while a backlog building behind a slow peer is a sequence of
        # new depths and always gets through.
        depth = len(queue)
        if depth != self._outbox_noted.get(dst):
            self._outbox_noted[dst] = depth
            self.env.observe("outbox_depth", dst=dst, depth=depth)
        sender = self._senders.get(dst)
        if sender is None or sender.done():
            self._senders[dst] = asyncio.ensure_future(self._drain_outgoing(dst))

    async def _drain_outgoing(self, dst: int) -> None:
        """Single writer for ``dst``: hand everything queued to the
        transport in one writev-style ``writelines`` call, then await
        ``drain()`` exactly once per coalesced flush.

        One drain per flush -- never per frame or per batch -- is what
        keeps a deep pipeline moving: the sender only parks when the
        transport's buffer is genuinely over the high-water mark, not
        once per message it wrote.  ``writelines`` hands the frame
        buffers to the transport as-is (uvloop turns this into a real
        ``writev``), avoiding a second copy of the whole backlog."""
        while not self._closed:
            pending = self._outgoing.get(dst)
            if not pending:
                return
            writer = self._writers.get(dst)
            if writer is None or writer.is_closing():
                host, port = self.peers[dst]
                try:
                    _reader, writer = await asyncio.open_connection(host, port)
                except OSError:
                    # Peer down: drop the backlog; retries ride on the
                    # protocol's own timers, which re-send fresh state.
                    self._outgoing[dst] = []
                    return
                if self._closed:
                    writer.close()
                    return
                self._writers[dst] = writer
            self._outgoing[dst] = []
            if len(pending) == 1:
                writer.write(pending[0])
            else:
                writer.writelines(pending)
            try:
                await writer.drain()
            except (ConnectionResetError, OSError):
                self._writers.pop(dst, None)
                writer.close()
                return

    # ------------------------------------------------------------------
    # Inbound
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Inbound frame pump, zero-copy: read whatever the socket has
        (many frames per syscall at saturation), then slice complete
        frames out of the buffer as memoryviews -- no ``readexactly``
        pair per frame, no payload copy before decode.  A partial frame
        stays buffered for the next read."""
        self._inbound.add(writer)
        buffer = bytearray()
        header_size = FRAME_HEADER.size
        try:
            while not self._closed:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    break  # clean EOF (mid-frame leftovers are dropped)
                buffer += chunk
                end = len(buffer)
                pos = 0
                view = memoryview(buffer)
                try:
                    while end - pos >= header_size:
                        (size,) = FRAME_HEADER.unpack_from(view, pos)
                        if size > MAX_FRAME:
                            raise ValueError(f"oversized frame: {size}")
                        start = pos + header_size
                        if end - start < size:
                            break
                        sender, message = decode_message(view[start : start + size])
                        pos = start + size
                        self._dispatch(sender, message)
                finally:
                    # The view must be released before the bytearray can
                    # be resized below.
                    view.release()
                if pos:
                    del buffer[:pos]
        except ConnectionResetError:
            pass
        except asyncio.CancelledError:
            # Server shut down while this handler was awaiting a frame.
            pass
        finally:
            self._inbound.discard(writer)
            writer.close()

    def _dispatch(self, sender: int, message: Message) -> None:
        self.run_event(lambda: self.protocol.on_message(sender, message))
