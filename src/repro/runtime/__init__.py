"""Asyncio TCP runtime: run the same protocol objects over real sockets.

The sans-I/O design means the protocol classes used by the simulator
run unmodified here; only the :class:`Env` implementation changes.
Intended for the examples and small local deployments -- the
performance evaluation runs under the deterministic simulator.
"""

from repro.runtime.codec import decode_message, encode_message
from repro.runtime.node import RuntimeNode
from repro.runtime.cluster import LocalCluster

__all__ = ["encode_message", "decode_message", "RuntimeNode", "LocalCluster"]
