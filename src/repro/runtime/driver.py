"""Pipelined client driver for the asyncio runtime.

The simulator's open-loop clients keep scores of proposals in flight
per node; until this driver existed the runtime's benches and examples
either serialised (propose, wait, propose) or dumped an unbounded burst
up front.  :class:`PipelineDriver` is the middle ground the paper's
fast path is built for: a configurable window of in-flight proposals
per node, refilled the moment a decision lands back at its proposer --
round N+1 is on the wire while round N is still collecting acks.

Completion of a proposal is *delivery at its proposing node* (the
client that submitted it got its response), observed through the same
``deliver_listeners`` hook the metrics layer uses.  The driver emits an
``inflight`` note on each proposer's env so an attached
:class:`~repro.obs.collect.ObsCollector` gauges pipeline depth on the
runtime path exactly as it does queue depths.

Everything runs on the event loop -- no locks, no threads; the window
check/await pair is atomic with respect to delivery callbacks because
both run on the same loop.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Sequence

from repro.consensus.commands import Command


class PipelineDriver:
    """Drive proposals into a cluster with a bounded in-flight window.

    ``depth`` is the per-node window: each node may have at most that
    many of its own proposals undecided at once.  ``depth=1`` is the
    fully serial client (ship, wait for the decision, ship the next);
    large depths approximate the open-loop saturation the simulator
    measures.  Multiple nodes pump concurrently -- one stalled window
    never blocks another node's pipeline.
    """

    def __init__(self, cluster, depth: int = 1) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.cluster = cluster
        self.depth = depth
        self.proposed = 0
        self.completed = 0
        self.max_inflight = 0  # peak total in-flight across all nodes
        self._inflight: dict[int, int] = {}
        self._inflight_total = 0
        self._pending: set[tuple[int, int]] = set()
        self._wake = asyncio.Event()
        # Last per-node depth reported via the ``inflight`` note.  At a
        # saturated window the depth is pinned to ``self.depth``, so
        # emitting only on change turns a per-command note into a
        # handful per run; every transition (ramp-up, drain) still
        # reaches the telemetry gauge.
        self._inflight_noted: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Delivery tracking
    # ------------------------------------------------------------------

    def _on_deliver(self, node_id: int, command: Command, now: float) -> None:
        # Only the echo at the proposer completes the client's request;
        # deliveries at other replicas are the protocol's business.
        if node_id != command.proposer:
            return
        if command.cid not in self._pending:
            return
        self._pending.discard(command.cid)
        self._inflight[node_id] -= 1
        self._inflight_total -= 1
        self.completed += 1
        self._wake.set()

    def _on_read(self, node_id: int, command: Command, result, now: float) -> None:
        # Serving tier: a leased local read (or session replay) answers
        # on the read channel, never through the decision log -- it
        # frees its window slot exactly like a delivery.
        self._on_deliver(node_id, command, now)

    async def _await_wake(self, timeout: float) -> None:
        self._wake.clear()
        await asyncio.wait_for(self._wake.wait(), timeout)

    # ------------------------------------------------------------------
    # Pumps
    # ------------------------------------------------------------------

    async def _pump(
        self, node_id: int, commands: Sequence[Command], timeout: float
    ) -> None:
        node = self.cluster.nodes[node_id]
        inflight = self._inflight
        for command in commands:
            while inflight[node_id] >= self.depth:
                await self._await_wake(timeout)
            inflight[node_id] += 1
            self._inflight_total += 1
            if self._inflight_total > self.max_inflight:
                self.max_inflight = self._inflight_total
            self._pending.add(command.cid)
            self.proposed += 1
            depth = inflight[node_id]
            if depth != self._inflight_noted.get(node_id):
                self._inflight_noted[node_id] = depth
                node.env.observe("inflight", depth=depth)
            node.propose(command)
        while inflight[node_id] > 0:
            await self._await_wake(timeout)

    async def run(
        self,
        proposals: Iterable[tuple[int, Command]],
        timeout: float = 60.0,
    ) -> None:
        """Propose ``(node_id, command)`` pairs, windowed, until every
        one is delivered back at its proposer.

        Per-node submission order follows the iterable's order; nodes
        pump concurrently.  ``timeout`` bounds each individual wait for
        the window to open (a stuck cluster fails fast instead of
        hanging the bench).
        """
        by_node: dict[int, list[Command]] = {}
        for node_id, command in proposals:
            by_node.setdefault(node_id, []).append(command)
        listener = self._on_deliver
        read_listener = self._on_read
        for node_id in by_node:
            self._inflight.setdefault(node_id, 0)
            node = self.cluster.nodes[node_id]
            node.deliver_listeners.append(listener)
            node.read_listeners.append(read_listener)
        try:
            await asyncio.gather(
                *(
                    self._pump(node_id, commands, timeout)
                    for node_id, commands in by_node.items()
                )
            )
        finally:
            for node_id in by_node:
                node = self.cluster.nodes[node_id]
                if listener in node.deliver_listeners:
                    node.deliver_listeners.remove(listener)
                if read_listener in node.read_listeners:
                    node.read_listeners.remove(read_listener)
