"""Convenience wrapper: an in-process cluster of RuntimeNodes on
localhost ports -- what the examples use to demo the real runtime.

Fault injection mirrors the simulator's: :meth:`LocalCluster.crash` and
:meth:`LocalCluster.restart` give true crash--restart over TCP (durable
or amnesia), and :meth:`LocalCluster.attach_faults` installs a per-node
:class:`~repro.chaos.injector.WireFaults` shim driven by a declarative
:class:`~repro.chaos.plan.FaultPlan` (times relative to the attach
moment, since the runtime runs on the wall clock)."""

from __future__ import annotations

import asyncio
import socket
from typing import Callable, Optional

from repro.consensus.base import Protocol
from repro.consensus.commands import Command
from repro.runtime.node import RuntimeNode
from repro.storage.base import StorageConfig

ProtocolFactory = Callable[[int, int], Protocol]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def uvloop_available() -> bool:
    """Whether the optional uvloop accelerator is importable."""
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


def run(main, *, uvloop: bool = False):
    """``asyncio.run`` with an optional uvloop event loop.

    ``uvloop=True`` swaps in uvloop's event-loop policy for the run
    when the package is installed and falls back to the stock loop
    silently otherwise -- the knob is a pure accelerator, never a
    dependency.  The previous policy is always restored, so one
    uvloop-backed bench does not leak a C event loop into the rest of
    the process.
    """
    if uvloop:
        try:
            import uvloop as _uvloop
        except ImportError:
            return asyncio.run(main)
        previous = asyncio.get_event_loop_policy()
        asyncio.set_event_loop_policy(_uvloop.EventLoopPolicy())
        try:
            return asyncio.run(main)
        finally:
            asyncio.set_event_loop_policy(previous)
    return asyncio.run(main)


class LocalCluster:
    """N runtime nodes on 127.0.0.1, each with its own port."""

    def __init__(
        self,
        n_nodes: int,
        protocol_factory: ProtocolFactory,
        storage: Optional[StorageConfig] = None,
        codec: str = "binary",
    ) -> None:
        self.n_nodes = n_nodes
        self.protocol_factory = protocol_factory
        ports = [_free_port() for _ in range(n_nodes)]
        self.peers = {i: ("127.0.0.1", port) for i, port in enumerate(ports)}
        self.nodes = [
            RuntimeNode(
                i,
                self.peers,
                protocol_factory(i, n_nodes),
                storage=storage.build(i) if storage is not None else None,
                codec=codec,
            )
            for i in range(n_nodes)
        ]
        # Advisory: whoever owns the event loop should boot it through
        # :func:`run` with this flag (set by ``from_spec``).
        self.uvloop = False
        self.telemetry = None

    @classmethod
    def from_spec(cls, spec) -> "LocalCluster":
        """Build from a :class:`repro.spec.ClusterSpec` -- the preferred
        constructor (same spec object drives the simulator)."""
        cluster = cls(
            spec.n_nodes,
            spec.protocol_factory(),
            storage=spec.storage,
            codec=spec.codec,
        )
        cluster.uvloop = spec.uvloop
        return cluster

    async def start(self) -> None:
        for node in self.nodes:
            await node.start()

    async def stop(self) -> None:
        if self.telemetry is not None:
            await self.stop_telemetry()
        for node in self.nodes:
            await node.stop()
        self.close_storage()

    # ------------------------------------------------------------------
    # Live telemetry
    # ------------------------------------------------------------------

    async def start_telemetry(
        self,
        interval: float = 0.25,
        serve: bool = False,
        **kwargs,
    ):
        """Attach live telemetry: wall-clock sampler, health detector,
        and (``serve=True``) one Prometheus ``/metrics`` endpoint per
        node.  All endpoints share the cluster registry (samples carry
        ``node`` labels); each node's scrape address lands on
        ``node.metrics_address``.  Returns the ``Telemetry`` handle."""
        from repro.obs.telemetry import Telemetry

        if self.telemetry is not None:
            raise RuntimeError("telemetry already started")
        self.telemetry = Telemetry(self, interval=interval, **kwargs)
        await self.telemetry.start_runtime(serve=serve)
        return self.telemetry

    async def stop_telemetry(self) -> None:
        if self.telemetry is None:
            return
        await self.telemetry.stop_runtime()
        self.telemetry.detach()
        self.telemetry = None

    def close_storage(self) -> None:
        """Release every node's storage resources (file handles)."""
        for node in self.nodes:
            node.env.storage.close()

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    async def crash(self, node_id: int) -> None:
        """Crash one node: server, inbound connections, timers all die."""
        await self.nodes[node_id].stop()

    async def restart(self, node_id: int, mode: str = "durable") -> None:
        """Boot a new incarnation of a crashed node (see SimNode).

        With a durable storage bound, ``mode="durable"`` replays the
        store's snapshot + log tail into a factory-fresh protocol (the
        real recovery scan); without one it keeps the protocol object as
        the legacy durable-log shortcut.
        """
        node = self.nodes[node_id]
        if mode == "durable":
            if node.env.storage.durable:
                protocol = self.protocol_factory(node_id, self.n_nodes)
                await node.restart(protocol, recover=True)
            else:
                await node.restart()
        elif mode == "amnesia":
            node.env.storage.wipe()
            protocol = self.protocol_factory(node_id, self.n_nodes)
            await node.restart(protocol)
        else:
            raise ValueError(f"unknown restart mode: {mode!r}")

    def attach_faults(self, plan, seed: int = 0) -> None:
        """Install ``plan``'s wire faults on every node's send path.

        Must be called with the event loop running; window times in the
        plan are measured from this call.  (Crash entries in the plan
        are not scheduled here -- drive those with :meth:`crash` /
        :meth:`restart`, which the caller usually wants to await.)
        """
        from repro.chaos.injector import WireFaults

        offset = asyncio.get_running_loop().time()
        for node in self.nodes:
            node.wire_faults = WireFaults(
                plan, (seed << 8) | node.node_id, offset=offset
            )

    def detach_faults(self) -> None:
        for node in self.nodes:
            node.wire_faults = None

    # ------------------------------------------------------------------
    # Driving and inspection
    # ------------------------------------------------------------------

    def propose(self, node_id: int, command: Command) -> None:
        self.nodes[node_id].propose(command)

    def delivered(self, node_id: int) -> list[Command]:
        return list(self.nodes[node_id].delivered)

    async def wait_delivered(
        self,
        count: int,
        node_id: Optional[int] = None,
        timeout: float = 10.0,
        nodes: Optional[list[int]] = None,
    ) -> None:
        """Wait until node(s) delivered at least ``count`` commands.

        ``nodes`` restricts the wait to a subset (e.g. the nodes still
        alive in a chaos test); ``node_id`` is the single-node shorthand.
        """
        if nodes is not None:
            targets = list(nodes)
        elif node_id is not None:
            targets = [node_id]
        else:
            targets = list(range(len(self.nodes)))

        async def poll() -> None:
            while any(len(self.nodes[i].delivered) < count for i in targets):
                await asyncio.sleep(0.005)

        await asyncio.wait_for(poll(), timeout)
