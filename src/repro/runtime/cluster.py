"""Convenience wrapper: an in-process cluster of RuntimeNodes on
localhost ports -- what the examples use to demo the real runtime."""

from __future__ import annotations

import asyncio
import socket
from typing import Callable, Optional

from repro.consensus.base import Protocol
from repro.consensus.commands import Command
from repro.runtime.node import RuntimeNode

ProtocolFactory = Callable[[int, int], Protocol]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class LocalCluster:
    """N runtime nodes on 127.0.0.1, each with its own port."""

    def __init__(self, n_nodes: int, protocol_factory: ProtocolFactory) -> None:
        ports = [_free_port() for _ in range(n_nodes)]
        self.peers = {i: ("127.0.0.1", port) for i, port in enumerate(ports)}
        self.nodes = [
            RuntimeNode(i, self.peers, protocol_factory(i, n_nodes))
            for i in range(n_nodes)
        ]

    async def start(self) -> None:
        for node in self.nodes:
            await node.start()

    async def stop(self) -> None:
        for node in self.nodes:
            await node.stop()

    def propose(self, node_id: int, command: Command) -> None:
        self.nodes[node_id].propose(command)

    def delivered(self, node_id: int) -> list[Command]:
        return list(self.nodes[node_id].delivered)

    async def wait_delivered(
        self,
        count: int,
        node_id: Optional[int] = None,
        timeout: float = 10.0,
    ) -> None:
        """Wait until node(s) delivered at least ``count`` commands."""
        targets = [node_id] if node_id is not None else range(len(self.nodes))

        async def poll() -> None:
            while any(len(self.nodes[i].delivered) < count for i in targets):
                await asyncio.sleep(0.005)

        await asyncio.wait_for(poll(), timeout)
