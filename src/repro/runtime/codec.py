"""Wire codec: protocol messages <-> length-prefixed JSON frames.

Messages are frozen dataclasses whose fields are built from a small
vocabulary (ints, strings, bools, Commands, tuples, frozensets, dicts
with tuple keys).  The codec walks values recursively and tags the
non-JSON-native shapes, so any current or future message class built
from that vocabulary serialises without per-class code.
"""

from __future__ import annotations

import json
import struct
from dataclasses import fields, is_dataclass
from typing import Any

from repro.consensus import epaxos, genpaxos, mencius, multipaxos, paxos
from repro.consensus.base import Message
from repro.consensus.commands import Command
from repro.core import messages as core_messages

_MESSAGE_CLASSES: dict[str, type] = {}


def register_message(cls: type) -> None:
    """Make ``cls`` decodable; idempotent."""
    _MESSAGE_CLASSES[cls.__name__] = cls


for module in (core_messages, multipaxos, genpaxos, epaxos, paxos, mencius):
    for name in dir(module):
        obj = getattr(module, name)
        if isinstance(obj, type) and issubclass(obj, Message) and obj is not Message:
            register_message(obj)


def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Command):
        return {
            "__cmd__": [
                list(value.cid),
                sorted(value.ls),
                value.payload_bytes,
                value.proposer,
                value.noop,
            ]
        }
    if isinstance(value, tuple):
        return {"__tup__": [_encode_value(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted((_encode_value(v) for v in value), key=repr)}
    if isinstance(value, dict):
        return {
            "__map__": [
                [_encode_value(k), _encode_value(v)] for k, v in value.items()
            ]
        }
    if is_dataclass(value):
        return {
            "__obj__": type(value).__name__,
            "f": {
                f.name: _encode_value(getattr(value, f.name))
                for f in fields(value)
            },
        }
    raise TypeError(f"cannot encode {type(value).__name__}: {value!r}")


def _decode_value(value: Any) -> Any:
    if not isinstance(value, (dict, list)):
        return value
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    if "__cmd__" in value:
        cid, ls, payload, proposer, noop = value["__cmd__"]
        return Command(
            cid=tuple(cid),
            ls=frozenset(ls),
            payload_bytes=payload,
            proposer=proposer,
            noop=noop,
        )
    if "__tup__" in value:
        return tuple(_decode_value(v) for v in value["__tup__"])
    if "__set__" in value:
        return frozenset(_decode_value(v) for v in value["__set__"])
    if "__map__" in value:
        return {
            _decode_value(k): _decode_value(v) for k, v in value["__map__"]
        }
    if "__obj__" in value:
        cls = _MESSAGE_CLASSES[value["__obj__"]]
        kwargs = {name: _decode_value(v) for name, v in value["f"].items()}
        return cls(**kwargs)
    return {k: _decode_value(v) for k, v in value.items()}


def encode_message(sender: int, message: Message) -> bytes:
    """One length-prefixed frame: 4-byte big-endian size + JSON."""
    payload = json.dumps(
        {"s": sender, "m": _encode_value(message)}, separators=(",", ":")
    ).encode()
    return struct.pack(">I", len(payload)) + payload


def decode_message(payload: bytes) -> tuple[int, Message]:
    """Inverse of :func:`encode_message` (without the length prefix)."""
    data = json.loads(payload.decode())
    message = _decode_value(data["m"])
    if not isinstance(message, Message):
        raise ValueError(f"decoded object is not a Message: {message!r}")
    return data["s"], message


FRAME_HEADER = struct.Struct(">I")
MAX_FRAME = 16 * 1024 * 1024
