"""Wire codec: protocol messages <-> length-prefixed frames.

Messages are frozen dataclasses whose fields are built from a small
vocabulary (ints, strings, bools, Commands, tuples, frozensets, dicts
with tuple keys).  Two codecs share that vocabulary:

- a **binary fast path**: tag-byte framed, varint-packed values with
  per-class encoders generated once from ``dataclasses.fields()`` and
  cached, plus interned :class:`Command` bodies (a command is encoded
  once and the bytes reused across every Accept/Decide/resend that
  carries it, and decoded bodies are memoised the same way);
- the original **JSON path**, kept as the fallback for message classes
  the binary codec does not know (unknown or non-dataclass types) and
  selectable explicitly for diagnostics.

The first payload byte disambiguates: ``{`` (0x7B) opens a JSON object,
0xB1 marks a binary frame, so mixed-version peers interoperate frame by
frame.
"""

from __future__ import annotations

import json
import struct
from dataclasses import fields, is_dataclass
from typing import Any, Optional

from repro.consensus import epaxos, genpaxos, mencius, multipaxos, paxos
from repro.consensus.base import Message
from repro.consensus.commands import Command
from repro.core import messages as core_messages

_MESSAGE_CLASSES: dict[str, type] = {}

# Binary-codec caches, invalidated per class on (re-)registration.
_BIN_CLASS_INFO: dict[type, tuple[bytes, tuple[str, ...]]] = {}
_BIN_FIELDS_BY_NAME: dict[str, tuple[type, tuple[str, ...]]] = {}
_JSON_ONLY: set[type] = set()
# JSON-path field cache: reflection over ``fields()`` runs once per
# class, not once per encoded dataclass value.
_JSON_FIELDS: dict[type, tuple[str, ...]] = {}


def register_message(cls: type) -> None:
    """Make ``cls`` decodable; idempotent."""
    _MESSAGE_CLASSES[cls.__name__] = cls
    _BIN_CLASS_INFO.pop(cls, None)
    _BIN_FIELDS_BY_NAME.pop(cls.__name__, None)
    _JSON_ONLY.discard(cls)


for module in (core_messages, multipaxos, genpaxos, epaxos, paxos, mencius):
    for name in dir(module):
        obj = getattr(module, name)
        if isinstance(obj, type) and issubclass(obj, Message) and obj is not Message:
            register_message(obj)


# ----------------------------------------------------------------------
# JSON path (fallback + explicit)
# ----------------------------------------------------------------------


def _sort_key(value: Any) -> tuple:
    """Deterministic total order over already-encoded JSON values.

    Cheaper than the former ``key=repr``: scalars compare natively and
    containers recurse into tuples instead of rendering strings.
    """
    t = value.__class__
    if t is str:
        return (3, value)
    if t is bool:
        return (1, value)
    if t is int or t is float:
        return (2, value)
    if value is None:
        return (0, 0)
    if t is list:
        return (4, tuple(_sort_key(v) for v in value))
    if t is dict:
        return (5, tuple(sorted((k, _sort_key(v)) for k, v in value.items())))
    return (6, repr(value))


def _encode_value(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Command):
        encoded = [
            list(value.cid),
            sorted(value.ls),
            value.payload_bytes,
            value.proposer,
            value.noop,
        ]
        if value.is_read or value.session is not None:
            # Serving-tier fields ride as a trailing extension so frames
            # for plain commands stay byte-identical to older peers.
            encoded.append(value.is_read)
            encoded.append(
                list(value.session) if value.session is not None else None
            )
        return {"__cmd__": encoded}
    if isinstance(value, tuple):
        return {"__tup__": [_encode_value(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted((_encode_value(v) for v in value), key=_sort_key)}
    if isinstance(value, dict):
        return {
            "__map__": [
                [_encode_value(k), _encode_value(v)] for k, v in value.items()
            ]
        }
    if is_dataclass(value):
        cls = type(value)
        names = _JSON_FIELDS.get(cls)
        if names is None:
            names = tuple(f.name for f in fields(value))
            _JSON_FIELDS[cls] = names
        return {
            "__obj__": cls.__name__,
            "f": {name: _encode_value(getattr(value, name)) for name in names},
        }
    raise TypeError(f"cannot encode {type(value).__name__}: {value!r}")


def _decode_value(value: Any) -> Any:
    if not isinstance(value, (dict, list)):
        return value
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    if "__cmd__" in value:
        encoded = value["__cmd__"]
        cid, ls, payload, proposer, noop = encoded[:5]
        is_read = encoded[5] if len(encoded) > 5 else False
        session = encoded[6] if len(encoded) > 6 else None
        return Command(
            cid=tuple(cid),
            ls=frozenset(ls),
            payload_bytes=payload,
            proposer=proposer,
            noop=noop,
            is_read=is_read,
            session=tuple(session) if session is not None else None,
        )
    if "__tup__" in value:
        return tuple(_decode_value(v) for v in value["__tup__"])
    if "__set__" in value:
        return frozenset(_decode_value(v) for v in value["__set__"])
    if "__map__" in value:
        return {
            _decode_value(k): _decode_value(v) for k, v in value["__map__"]
        }
    if "__obj__" in value:
        cls = _MESSAGE_CLASSES[value["__obj__"]]
        kwargs = {name: _decode_value(v) for name, v in value["f"].items()}
        return cls(**kwargs)
    return {k: _decode_value(v) for k, v in value.items()}


def encode_payload_json(sender: int, message: Message) -> bytes:
    """The JSON frame payload (no length prefix)."""
    return json.dumps(
        {"s": sender, "m": _encode_value(message)}, separators=(",", ":")
    ).encode()


# ----------------------------------------------------------------------
# Binary fast path
# ----------------------------------------------------------------------

_BIN_MAGIC = 0xB1
"""First payload byte of a binary frame (a JSON frame starts with '{')."""

(
    _T_NONE,
    _T_TRUE,
    _T_FALSE,
    _T_INT,
    _T_FLOAT,
    _T_STR,
    _T_TUPLE,
    _T_SET,
    _T_MAP,
    _T_CMD,
    _T_OBJ,
) = range(11)

_F64 = struct.Struct(">d")


class _Unencodable(TypeError):
    """A value outside the binary vocabulary; the frame falls back to JSON."""


def _write_uvarint(out: bytearray, n: int) -> None:
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _write_svarint(out: bytearray, n: int) -> None:
    # ZigZag: small magnitudes of either sign stay one byte.
    _write_uvarint(out, n << 1 if n >= 0 else ((-n) << 1) - 1)


def _read_uvarint(buf: memoryview, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _unzigzag(u: int) -> int:
    return (u >> 1) if not (u & 1) else -((u + 1) >> 1)


def _class_info(cls: type) -> Optional[tuple[bytes, tuple[str, ...]]]:
    """``(length-prefixed name bytes, field names)`` for a registered
    dataclass message; generated once per class and cached."""
    info = _BIN_CLASS_INFO.get(cls)
    if info is None:
        if _MESSAGE_CLASSES.get(cls.__name__) is not cls or not is_dataclass(cls):
            return None
        raw = cls.__name__.encode()
        prefixed = bytearray()
        _write_uvarint(prefixed, len(raw))
        prefixed += raw
        info = (bytes(prefixed), tuple(f.name for f in fields(cls)))
        _BIN_CLASS_INFO[cls] = info
    return info


def _encode_command_body(command: Command) -> bytes:
    body = command.__dict__.get("_bin_body")
    if body is None:
        out = bytearray()
        _write_svarint(out, command.cid[0])
        _write_svarint(out, command.cid[1])
        ls = sorted(command.ls)
        _write_uvarint(out, len(ls))
        for obj_id in ls:
            raw = obj_id.encode()
            _write_uvarint(out, len(raw))
            out += raw
        _write_uvarint(out, command.payload_bytes)
        _write_svarint(out, command.proposer)
        out.append(1 if command.noop else 0)
        if command.is_read or command.session is not None:
            # Trailing serving-tier extension: the body is length-framed,
            # so old decoders never see it and plain commands encode
            # byte-identically with or without this codec version.
            flags = (1 if command.is_read else 0) | (
                2 if command.session is not None else 0
            )
            out.append(flags)
            if command.session is not None:
                _write_svarint(out, command.session[0])
                _write_svarint(out, command.session[1])
        body = bytes(out)
        object.__setattr__(command, "_bin_body", body)
    return body


def _bin_encode(value: Any, out: bytearray) -> None:
    t = value.__class__
    if t is int:
        out.append(_T_INT)
        _write_svarint(out, value)
    elif t is str:
        raw = value.encode()
        out.append(_T_STR)
        _write_uvarint(out, len(raw))
        out += raw
    elif t is tuple:
        out.append(_T_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _bin_encode(item, out)
    elif t is dict:
        out.append(_T_MAP)
        _write_uvarint(out, len(value))
        for k, v in value.items():
            _bin_encode(k, out)
            _bin_encode(v, out)
    elif t is Command:
        body = _encode_command_body(value)
        out.append(_T_CMD)
        _write_uvarint(out, len(body))
        out += body
    elif t is bool:
        out.append(_T_TRUE if value else _T_FALSE)
    elif value is None:
        out.append(_T_NONE)
    elif t is frozenset or t is set:
        out.append(_T_SET)
        _write_uvarint(out, len(value))
        encoded = []
        for item in value:
            item_out = bytearray()
            _bin_encode(item, item_out)
            encoded.append(bytes(item_out))
        encoded.sort()  # deterministic frames independent of set iteration
        for chunk in encoded:
            out += chunk
    elif t is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    else:
        info = _class_info(t)
        if info is None:
            raise _Unencodable(f"no binary encoder for {t.__name__}")
        name_bytes, field_names = info
        out.append(_T_OBJ)
        out += name_bytes
        for name in field_names:
            _bin_encode(getattr(value, name), out)


# Decoded Command bodies, memoised by their exact byte encoding: the
# same command crosses the wire many times (Accept broadcast, Decide,
# resends), and equal bytes decode to equal frozen values.
_CMD_DECODE_CACHE: dict[bytes, Command] = {}
_CMD_DECODE_CACHE_CAP = 1 << 15


def _decode_command_body(body: bytes) -> Command:
    command = _CMD_DECODE_CACHE.get(body)
    if command is not None:
        return command
    buf = memoryview(body)
    u, pos = _read_uvarint(buf, 0)
    cid_a = _unzigzag(u)
    u, pos = _read_uvarint(buf, pos)
    cid_b = _unzigzag(u)
    n, pos = _read_uvarint(buf, pos)
    ls = []
    for _ in range(n):
        size, pos = _read_uvarint(buf, pos)
        ls.append(bytes(buf[pos : pos + size]).decode())
        pos += size
    payload, pos = _read_uvarint(buf, pos)
    u, pos = _read_uvarint(buf, pos)
    proposer = _unzigzag(u)
    noop = bool(buf[pos])
    pos += 1
    is_read = False
    session = None
    if pos < len(body):
        flags = buf[pos]
        pos += 1
        is_read = bool(flags & 1)
        if flags & 2:
            u, pos = _read_uvarint(buf, pos)
            sess_client = _unzigzag(u)
            u, pos = _read_uvarint(buf, pos)
            sess_seq = _unzigzag(u)
            session = (sess_client, sess_seq)
    command = Command(
        cid=(cid_a, cid_b),
        ls=frozenset(ls),
        payload_bytes=payload,
        proposer=proposer,
        noop=noop,
        is_read=is_read,
        session=session,
    )
    if len(_CMD_DECODE_CACHE) >= _CMD_DECODE_CACHE_CAP:
        _CMD_DECODE_CACHE.clear()
    _CMD_DECODE_CACHE[body] = command
    return command


def _bin_decode(buf: memoryview, pos: int) -> tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == _T_INT:
        u, pos = _read_uvarint(buf, pos)
        return _unzigzag(u), pos
    if tag == _T_STR:
        size, pos = _read_uvarint(buf, pos)
        return bytes(buf[pos : pos + size]).decode(), pos + size
    if tag == _T_TUPLE:
        n, pos = _read_uvarint(buf, pos)
        items = []
        for _ in range(n):
            item, pos = _bin_decode(buf, pos)
            items.append(item)
        return tuple(items), pos
    if tag == _T_MAP:
        n, pos = _read_uvarint(buf, pos)
        out = {}
        for _ in range(n):
            key, pos = _bin_decode(buf, pos)
            value, pos = _bin_decode(buf, pos)
            out[key] = value
        return out, pos
    if tag == _T_CMD:
        size, pos = _read_uvarint(buf, pos)
        body = bytes(buf[pos : pos + size])
        return _decode_command_body(body), pos + size
    if tag == _T_OBJ:
        size, pos = _read_uvarint(buf, pos)
        name = bytes(buf[pos : pos + size]).decode()
        pos += size
        cached = _BIN_FIELDS_BY_NAME.get(name)
        if cached is None:
            cls = _MESSAGE_CLASSES[name]
            cached = (cls, tuple(f.name for f in fields(cls)))
            _BIN_FIELDS_BY_NAME[name] = cached
        cls, field_names = cached
        args = []
        for _ in field_names:
            value, pos = _bin_decode(buf, pos)
            args.append(value)
        return cls(*args), pos
    if tag == _T_SET:
        n, pos = _read_uvarint(buf, pos)
        items = []
        for _ in range(n):
            item, pos = _bin_decode(buf, pos)
            items.append(item)
        return frozenset(items), pos
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_FLOAT:
        return _F64.unpack_from(buf, pos)[0], pos + 8
    raise ValueError(f"bad binary tag {tag} at offset {pos - 1}")


def encode_payload_binary(sender: int, message: Message) -> bytes:
    """The binary frame payload (no length prefix).

    Raises :class:`TypeError` for values outside the vocabulary; use
    :func:`encode_message` for the auto-fallback behaviour.
    """
    out = bytearray()
    out.append(_BIN_MAGIC)
    _write_svarint(out, sender)
    _bin_encode(message, out)
    return bytes(out)


def decode_payload(payload: "bytes | memoryview") -> tuple[int, Message]:
    """Decode one frame payload, auto-detecting the codec.

    Accepts a ``memoryview`` so the inbound path can slice frames out of
    its receive buffer without copying each payload first; only the
    values that outlive the frame (strings, command bodies) are copied,
    inside :func:`_bin_decode`.
    """
    if payload[0] == _BIN_MAGIC:
        buf = payload if type(payload) is memoryview else memoryview(payload)
        u, pos = _read_uvarint(buf, 1)
        message, end = _bin_decode(buf, pos)
        if end != len(payload):
            raise ValueError(
                f"trailing bytes in binary frame: {len(payload) - end}"
            )
        return _unzigzag(u), message
    data = json.loads(bytes(payload))
    return data["s"], _decode_value(data["m"])


# ----------------------------------------------------------------------
# Frame API
# ----------------------------------------------------------------------


def encode_message_into(out: bytearray, sender: int, message: Message) -> None:
    """Append one length-prefixed frame for ``message`` to ``out``.

    This is the zero-copy encode path: the binary encoder writes
    straight into the caller's (reused) buffer -- no per-message
    ``bytes`` object, no join -- and the 4-byte length prefix is
    back-patched once the payload size is known.  Fallback semantics
    match :func:`encode_message`: a class outside the binary vocabulary
    is remembered as JSON-only and its half-written frame is rolled
    back.
    """
    cls = message.__class__
    if cls not in _JSON_ONLY:
        mark = len(out)
        out += _HEADER_PLACEHOLDER
        try:
            out.append(_BIN_MAGIC)
            _write_svarint(out, sender)
            _bin_encode(message, out)
        except (_Unencodable, TypeError):
            _JSON_ONLY.add(cls)
            del out[mark:]
        else:
            FRAME_HEADER.pack_into(out, mark, len(out) - mark - FRAME_HEADER.size)
            return
    payload = encode_payload_json(sender, message)
    out += FRAME_HEADER.pack(len(payload))
    out += payload


def encode_message(sender: int, message: Message) -> bytes:
    """One length-prefixed frame: 4-byte big-endian size + payload.

    The binary codec is used for every registered dataclass message
    built from the shared vocabulary; anything else (unknown classes,
    exotic field values) falls back to JSON, and the class is remembered
    as JSON-only so the failed walk is not repeated per message.
    """
    out = bytearray()
    encode_message_into(out, sender, message)
    return bytes(out)


def decode_message(payload: "bytes | memoryview") -> tuple[int, Message]:
    """Inverse of :func:`encode_message` (without the length prefix)."""
    sender, message = decode_payload(payload)
    if not isinstance(message, Message):
        raise ValueError(f"decoded object is not a Message: {message!r}")
    return sender, message


def wire_size(message: Message) -> int:
    """Exact frame size (header included) of ``message`` on the wire.

    Cached on the message object: frozen messages are broadcast to N
    receivers, so the encoding runs once.  The simulator's network model
    uses this when configured for real frame sizes.
    """
    cached = message.__dict__.get("_wire_size")
    if cached is None:
        cached = len(encode_message(0, message))
        object.__setattr__(message, "_wire_size", cached)
    return cached


FRAME_HEADER = struct.Struct(">I")
_HEADER_PLACEHOLDER = bytes(FRAME_HEADER.size)
MAX_FRAME = 16 * 1024 * 1024


# ----------------------------------------------------------------------
# Value API (storage payloads)
# ----------------------------------------------------------------------


def encode_value_binary(value: Any) -> bytes:
    """Encode one bare value (no frame, no sender) with the binary
    vocabulary.  The storage layer uses this for log-record and snapshot
    payloads so durable state shares the wire codec's format, caches,
    and determinism guarantees (sets and dicts encode identically
    however they were built)."""
    out = bytearray()
    _bin_encode(value, out)
    return bytes(out)


def decode_value_binary(data: bytes) -> Any:
    """Inverse of :func:`encode_value_binary`."""
    value, end = _bin_decode(memoryview(data), 0)
    if end != len(data):
        raise ValueError(f"trailing bytes in binary value: {len(data) - end}")
    return value
