"""Deterministic fault injection and end-to-end safety checking.

The package splits by concern:

- :mod:`repro.chaos.plan` -- declarative :class:`FaultPlan` (crashes,
  partitions, drop/duplicate/delay windows), pure data;
- :mod:`repro.chaos.injector` -- :class:`WireFaults`, the per-message
  evaluator both substrates install on their send path;
- :mod:`repro.chaos.checker` -- :func:`check_run`, the delivery-log
  safety checker (agreement, per-object order, durability);
- :mod:`repro.chaos.runner` -- :func:`run_scenario`, one seeded
  scenario through the simulator with a determinism fingerprint;
- :mod:`repro.chaos.scenarios` -- the named suite ``repro chaos`` runs.
"""

from repro.chaos.checker import SafetyReport, check_run
from repro.chaos.injector import WireFaults
from repro.chaos.plan import (
    NO_FAULTS,
    Crash,
    DelayWindow,
    DropWindow,
    DuplicateWindow,
    FaultPlan,
    PartitionWindow,
)
from repro.chaos.runner import ChaosResult, Scenario, run_scenario
from repro.chaos.scenarios import DURABLE_SMOKE, SCENARIOS, SMOKE, by_name

__all__ = [
    "NO_FAULTS",
    "Crash",
    "DelayWindow",
    "DropWindow",
    "DuplicateWindow",
    "FaultPlan",
    "PartitionWindow",
    "WireFaults",
    "SafetyReport",
    "check_run",
    "ChaosResult",
    "Scenario",
    "run_scenario",
    "SCENARIOS",
    "SMOKE",
    "DURABLE_SMOKE",
    "by_name",
]
