"""Declarative fault plans: what breaks, when, and how it comes back.

A :class:`FaultPlan` is pure data -- no substrate references -- so one
plan drives both the deterministic simulator and the asyncio runtime.
All times are seconds relative to scenario start (virtual seconds under
the simulator, wall seconds in the runtime).

Two delivery channels exist for a plan:

- **node-lifecycle events** (:class:`Crash`) are *scheduled* by the
  runner on the substrate's clock, because crashing a node is a
  substrate action (cancel timers, quarantine state, later re-join);
- **wire faults** (:class:`PartitionWindow`, :class:`DropWindow`,
  :class:`DuplicateWindow`, :class:`DelayWindow`) are *evaluated per
  message* by :class:`repro.chaos.injector.WireFaults` -- nothing needs
  scheduling, the window is simply consulted against the send time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Crash:
    """Crash ``node`` at ``at``; optionally restart it later.

    ``mode`` selects what a restart recovers:

    - ``"durable"``: acceptor state (promises, accepted values, decided
      log) survives, as if re-read from a durable log; only volatile
      round state is lost.
    - ``"amnesia"``: the node comes back blank -- the failure mode a
      correct protocol must treat as a *new* participant, since its
      forgotten promises can no longer be counted on.
    """

    at: float
    node: int
    restart_at: Optional[float] = None
    mode: str = "durable"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("crash time must be >= 0")
        if self.mode not in ("durable", "amnesia"):
            raise ValueError(f"unknown restart mode: {self.mode!r}")
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ValueError("restart_at must come after the crash")


@dataclass(frozen=True)
class _Window:
    """A half-open time window ``[start, end)`` over the scenario."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ValueError(f"need 0 <= start < end, got [{self.start}, {self.end})")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class PartitionWindow(_Window):
    """Block all traffic between the two groups while active."""

    group_a: frozenset[int] = frozenset()
    group_b: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.group_a or not self.group_b:
            raise ValueError("both partition groups must be non-empty")
        if self.group_a & self.group_b:
            raise ValueError("partition groups must be disjoint")

    def severs(self, src: int, dst: int) -> bool:
        return (src in self.group_a and dst in self.group_b) or (
            src in self.group_b and dst in self.group_a
        )


@dataclass(frozen=True)
class _PairWindow(_Window):
    """A window optionally restricted to one direction of one link."""

    src: Optional[int] = None  # None = any sender
    dst: Optional[int] = None  # None = any receiver

    def applies(self, src: int, dst: int) -> bool:
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass(frozen=True)
class DropWindow(_PairWindow):
    """Drop each matching message with ``probability`` while active."""

    probability: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("drop probability must be in (0, 1]")


@dataclass(frozen=True)
class DuplicateWindow(_PairWindow):
    """Deliver each matching message twice with ``probability``."""

    probability: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("duplicate probability must be in (0, 1]")


@dataclass(frozen=True)
class DelayWindow(_PairWindow):
    """Add ``extra`` (plus up to ``jitter`` more) delay while active."""

    extra: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra < 0 or self.jitter < 0:
            raise ValueError("delay spike must be >= 0")
        if self.extra == 0 and self.jitter == 0:
            raise ValueError("delay window needs extra and/or jitter > 0")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one scenario, declaratively."""

    crashes: tuple[Crash, ...] = ()
    partitions: tuple[PartitionWindow, ...] = ()
    drops: tuple[DropWindow, ...] = ()
    duplicates: tuple[DuplicateWindow, ...] = ()
    delays: tuple[DelayWindow, ...] = ()

    def __post_init__(self) -> None:
        by_node: dict[int, list[Crash]] = {}
        for crash in self.crashes:
            by_node.setdefault(crash.node, []).append(crash)
        for node, crashes in by_node.items():
            crashes.sort(key=lambda c: c.at)
            for earlier, later in zip(crashes, crashes[1:]):
                if earlier.restart_at is None or later.at < earlier.restart_at:
                    raise ValueError(
                        f"node {node}: overlapping crash windows in plan"
                    )

    @property
    def has_wire_faults(self) -> bool:
        return bool(self.partitions or self.drops or self.duplicates or self.delays)

    def partitioned(self, src: int, dst: int, now: float) -> bool:
        return any(
            w.active(now) and w.severs(src, dst) for w in self.partitions
        )

    def crash_windows(self, node: int) -> list[tuple[float, Optional[float]]]:
        """The ``[crash, restart)`` intervals of ``node`` (restart None =
        down forever) -- what the zero-transition span check audits."""
        return sorted(
            (c.at, c.restart_at) for c in self.crashes if c.node == node
        )

    def down_forever(self) -> frozenset[int]:
        """Nodes whose final crash has no restart."""
        dead: set[int] = set()
        for node in {c.node for c in self.crashes}:
            last = max(
                (c for c in self.crashes if c.node == node), key=lambda c: c.at
            )
            if last.restart_at is None:
                dead.add(node)
        return frozenset(dead)

    def ever_crashed(self) -> frozenset[int]:
        return frozenset(c.node for c in self.crashes)

    def end_of_faults(self) -> float:
        """The time the last injected fault clears (crashed-forever
        nodes aside) -- runs should settle well past this."""
        times = [0.0]
        times += [c.restart_at if c.restart_at is not None else c.at
                  for c in self.crashes]
        for windows in (self.partitions, self.drops, self.duplicates, self.delays):
            times += [w.end for w in windows]
        return max(times)


# An empty plan (no faults at all), useful as a baseline scenario that
# exercises only the harness itself.
NO_FAULTS = FaultPlan()
