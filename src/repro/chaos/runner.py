"""Run one chaos scenario end to end under the deterministic simulator.

A :class:`Scenario` bundles a cluster shape, a seeded workload, and a
:class:`~repro.chaos.plan.FaultPlan`.  :func:`run_scenario`:

1. builds a simulated M2Paxos cluster with chaos-tuned timeouts and
   installs the plan's :class:`~repro.chaos.injector.WireFaults` as the
   network injector;
2. schedules every crash/restart on the virtual clock and the whole
   proposal workload up front (so the event heap, and therefore the
   run, is a pure function of the seed);
3. runs until well past the last fault, then audits:

   - **crash quiescence** -- zero handler/wire spans from any node
     inside any of its crash windows (a crashed machine computes
     nothing);
   - **safety** -- :func:`repro.chaos.checker.check_run` over every
     delivery log of every incarnation;

4. returns a :class:`ChaosResult` whose ``fingerprint`` hashes the full
   delivery history -- two runs of the same scenario must produce the
   same hex digest, which is how the CLI proves determinism.
"""

from __future__ import annotations

import hashlib
import random
import shutil
import tempfile
from dataclasses import dataclass, replace
from typing import Optional

from repro.chaos.checker import SafetyReport, check_run
from repro.chaos.injector import WireFaults
from repro.chaos.plan import FaultPlan
from repro.consensus.commands import Command
from repro.core.protocol import M2PaxosConfig, SafetyViolation
from repro.obs.collect import ObsCollector
from repro.sim.cluster import Cluster, ConsistencyViolation
from repro.spec import ClusterSpec, ZoneLatency
from repro.storage.base import StorageConfig


@dataclass(frozen=True)
class Scenario:
    """One reproducible chaos experiment: workload + fault plan."""

    name: str
    plan: FaultPlan
    n_nodes: int = 5
    seed: int = 1
    rounds: int = 40          # proposal rounds (one command/node/round)
    spacing: float = 0.02     # virtual seconds between rounds
    objects: int = 6          # shared object-pool size
    locality: float = 0.7     # P(own home object) vs a random one
    multi: float = 0.1        # P(two-object command)
    settle: float = 4.0       # extra run time past the last fault
    # Durable storage for every node; None keeps the legacy in-object
    # "durable log" shortcut on restart.  ``kind="disk"`` with no dir
    # gets a per-run tmpdir from the runner.
    storage: Optional[StorageConfig] = None
    # Geo shape: node->zone map plus the intra/inter-zone latency
    # shorthand (see ClusterSpec); ``zone_affinity`` additionally runs
    # the zone-aware migration policy, so partitions along a zone
    # boundary exercise ownership moving *while* the WAN is cut.
    zones: Optional[tuple[int, ...]] = None
    zone_latency: Optional[ZoneLatency] = None
    zone_affinity: bool = False
    # Serving tier: fraction of the workload issued as reads, and the
    # ownership-lease knobs enabling owner-local serving.  Defaults keep
    # the workload's RNG draw sequence and the protocol config exactly
    # as before, so every existing scenario's fingerprint is unchanged.
    # When both are set the runner additionally audits every served
    # read against the decided write order (no stale read may be
    # returned after a lease handoff).
    read_fraction: float = 0.0
    lease_duration: float = 0.0
    lease_margin: float = 0.002
    description: str = ""


@dataclass
class ChaosResult:
    """Everything one scenario run produced."""

    scenario: Scenario
    report: SafetyReport
    fingerprint: str
    proposed: int = 0
    dropped: int = 0
    duplicated: int = 0
    faults_observed: int = 0
    # Live-telemetry handle when the run was sampled (see
    # ``run_scenario``'s ``telemetry_interval``); frames and health
    # events ride along for inspection.
    telemetry: Optional[object] = None

    @property
    def ok(self) -> bool:
        return self.report.ok


# Chaos-tuned protocol timeouts: short enough that supervision retries
# and decide re-sends fit inside the settle window, and the decide
# re-send budget covers the whole run so a durably-restarted node is
# guaranteed to hear about every instance decided while it was down.
_CHAOS_M2 = M2PaxosConfig(
    forward_timeout=0.05,
    supervise_timeout=0.6,
    round_timeout=0.3,
    gap_check_period=0.1,
    gap_timeout=0.3,
    learn_resend_timeout=0.15,
    learn_resend_attempts=80,
)


def _workload(scenario: Scenario) -> list[tuple[float, int, Command]]:
    """The full ``(time, proposer, command)`` schedule, from the seed."""
    rng = random.Random((scenario.seed << 4) ^ 0x5CE9A)
    pool = [f"obj{i}" for i in range(scenario.objects)]
    schedule: list[tuple[float, int, Command]] = []
    for round_nr in range(scenario.rounds):
        at = 0.05 + round_nr * scenario.spacing
        for node in range(scenario.n_nodes):
            # The read draw short-circuits at read_fraction == 0.0 so
            # legacy scenarios consume the exact seed RNG sequence and
            # keep their pinned fingerprints.
            is_read = bool(
                scenario.read_fraction
                and rng.random() < scenario.read_fraction
            )
            if is_read:
                # Reads are single-object (the stale-read audit indexes
                # per-object frontiers), placed by the same locality
                # rule as simple writes.
                if rng.random() < scenario.locality:
                    objs = [pool[node % len(pool)]]
                else:
                    objs = [rng.choice(pool)]
            elif rng.random() < scenario.multi and len(pool) > 1:
                objs = rng.sample(pool, 2)
            elif rng.random() < scenario.locality:
                objs = [pool[node % len(pool)]]
            else:
                objs = [rng.choice(pool)]
            schedule.append(
                (at, node, Command.make(node, round_nr, objs, is_read=is_read))
            )
    return schedule


def _fingerprint(logs: dict[int, list[list[Command]]]) -> str:
    """Hash every incarnation's delivery order; identical seeds must
    reproduce this digest bit for bit."""
    digest = hashlib.sha256()
    for node in sorted(logs):
        for life, log in enumerate(logs[node]):
            digest.update(f"\n[{node}:{life}]".encode())
            for command in log:
                digest.update(
                    f"{command.cid[0]}.{command.cid[1]}"
                    f"({','.join(sorted(command.ls))})".encode()
                )
    return digest.hexdigest()


def _audit_served_reads(
    cluster: Cluster,
    served_reads: list[tuple[int, "Command", object, float]],
    completions: dict[tuple[int, int], float],
) -> list[str]:
    """Linearizability audit for leased reads.

    A served read on object ``o`` returned frontier ``p``: the state
    after the first ``p`` commands appended on ``o``.  It is stale --
    a real-time linearizability violation -- if some command at
    per-object index ``>= p`` had already *completed* (been delivered
    at its proposer, i.e. acknowledged to a client) strictly before
    the read was served.  The decided per-object order comes from the
    live nodes' final delivery logs (the safety checker separately
    proves all logs agree per object); the longest log per object is
    used so a freshly restarted node's short log cannot mask a tail.
    """
    per_object: dict[str, list["Command"]] = {}
    for node in cluster.nodes:
        if node.crashed:
            continue
        local: dict[str, list["Command"]] = {}
        for command in node.delivered:
            for l in command.ls:
                local.setdefault(l, []).append(command)
        for l, order in local.items():
            if len(order) > len(per_object.get(l, ())):
                per_object[l] = order
    violations: list[str] = []
    for node_id, command, result, at in served_reads:
        if not isinstance(result, dict):
            continue
        for l, frontier in result.items():
            order = per_object.get(l, [])
            for index in range(int(frontier), len(order)):
                done = completions.get(order[index].cid)
                if done is not None and done < at:
                    violations.append(
                        f"stale read: node {node_id} served "
                        f"{command.cid[0]}.{command.cid[1]} on {l!r} at "
                        f"t={at:.4f} with frontier {frontier}, but "
                        f"{order[index].cid[0]}.{order[index].cid[1]} "
                        f"(index {index} on {l!r}) completed at "
                        f"t={done:.4f}"
                    )
                    break
    return violations


def run_scenario(
    scenario: Scenario,
    config: Optional[M2PaxosConfig] = None,
    storage: Optional[StorageConfig] = None,
    telemetry_interval: Optional[float] = None,
) -> ChaosResult:
    """Execute ``scenario`` once and check it; never raises on a safety
    failure -- violations land in the returned report.  ``config``
    overrides the chaos-tuned protocol config (the batching tests rerun
    the suite with ``max_batch > 1``); ``storage`` overrides the
    scenario's storage shape (the CLI reruns the durable suite on real
    disk).  A ``kind="disk"`` config gets a fresh per-run directory
    (under its ``dir`` when set, else the system tmpdir), removed when
    the run finishes.  ``telemetry_interval`` additionally attaches the
    live-telemetry sampler at that virtual-clock cadence (frames, fault
    stamps, health events on ``result.telemetry``); sampler callbacks
    only read, so the fingerprint is unchanged for a given seed."""
    plan = scenario.plan
    protocol_config = config if config is not None else _CHAOS_M2
    if scenario.zone_affinity:
        from repro.core.policy import ZoneAffinityPolicy

        zones = scenario.zones
        if zones is None:
            raise ValueError("zone_affinity scenarios require zones")
        protocol_config = replace(
            protocol_config, policy=lambda: ZoneAffinityPolicy(zones)
        )
    if scenario.lease_duration > 0.0:
        protocol_config = replace(
            protocol_config,
            lease_duration=scenario.lease_duration,
            lease_margin=scenario.lease_margin,
        )
    storage_config = storage if storage is not None else scenario.storage
    tmpdir: Optional[str] = None
    if storage_config is not None and storage_config.kind == "disk":
        # Always a fresh per-run directory (under ``dir`` when given,
        # else the system tmpdir): reusing one directory across runs
        # would make recovery replay a *previous* run's log.
        tmpdir = tempfile.mkdtemp(
            prefix=f"chaos-{scenario.name}-", dir=storage_config.dir
        )
        storage_config = replace(storage_config, dir=tmpdir)
    spec = ClusterSpec(
        protocol="m2paxos",
        n_nodes=scenario.n_nodes,
        seed=scenario.seed,
        m2=protocol_config,
        storage=storage_config,
        zones=scenario.zones,
        zone_latency=scenario.zone_latency,
    )
    cluster = Cluster.from_spec(spec)
    try:
        return _run_scenario(
            scenario, cluster, telemetry_interval=telemetry_interval
        )
    finally:
        cluster.close_storage()
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)


def _run_scenario(
    scenario: Scenario,
    cluster: Cluster,
    telemetry_interval: Optional[float] = None,
) -> ChaosResult:
    plan = scenario.plan
    faults: Optional[WireFaults] = None
    if plan.has_wire_faults:
        faults = WireFaults(plan, scenario.seed)
        cluster.network.injector = faults
    obs = ObsCollector.for_cluster(cluster, record_spans=True)
    telemetry = None
    if telemetry_interval is not None:
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry(cluster, interval=telemetry_interval)
        telemetry.subscribe_protocols()
        telemetry.start()
    extra_violations: list[str] = []
    # Lease runs: capture every served read (owner-local, zero
    # consensus) and every write completion (first delivery at the
    # proposer -- the moment a client is acknowledged), for the
    # stale-read audit after the run.  Listener lists live on the
    # SimNode, so they survive crash/restart incarnations.
    lease_audit = scenario.lease_duration > 0.0 and scenario.read_fraction > 0.0
    served_reads: list[tuple[int, Command, object, float]] = []
    completions: dict[tuple[int, int], float] = {}
    if lease_audit:

        def _on_read(
            node_id: int, command: Command, result: object, now: float
        ) -> None:
            served_reads.append((node_id, command, result, now))

        def _on_complete(node_id: int, command: Command, now: float) -> None:
            if command.proposer == node_id and command.cid not in completions:
                completions[command.cid] = now

        for sim_node in cluster.nodes:
            sim_node.read_listeners.append(_on_read)
            sim_node.deliver_listeners.append(_on_complete)
    cluster.start()

    def _restart(node: int, mode: str) -> None:
        # Durable-prefix audit: a storage-backed durable restart replays
        # the store synchronously, so right after `restart` the new
        # incarnation's delivery log is exactly what recovery rebuilt.
        # It must be byte-identical to a prefix of the pre-crash log
        # (the whole log under synchronous fsync; possibly shorter when
        # a group-commit window was open at the crash).
        durable_store = mode == "durable" and cluster.nodes[node].env.storage.durable
        pre = list(cluster.nodes[node].delivered) if durable_store else None
        cluster.restart(node, mode)
        if durable_store:
            recovered = list(cluster.nodes[node].delivered)
            if recovered != pre[: len(recovered)]:
                extra_violations.append(
                    f"node {node}: recovered delivery log is not a prefix "
                    f"of its pre-crash log ({len(recovered)} recovered vs "
                    f"{len(pre)} pre-crash)"
                )

    for crash in plan.crashes:
        cluster.loop.schedule_at(
            crash.at, lambda node=crash.node: cluster.crash(node)
        )
        if crash.restart_at is not None:
            cluster.loop.schedule_at(
                crash.restart_at,
                lambda node=crash.node, mode=crash.mode: _restart(node, mode),
            )

    schedule = _workload(scenario)
    proposed: list[Command] = []

    def _propose(node: int, command: Command) -> None:
        # A dead machine takes no client requests; its command simply
        # never happened (and is not owed to anyone).
        if not cluster.nodes[node].crashed:
            proposed.append(command)
            cluster.propose(node, command)

    for at, node, command in schedule:
        cluster.loop.schedule_at(
            at, lambda node=node, command=command: _propose(node, command)
        )

    horizon = max(plan.end_of_faults(), schedule[-1][0]) + scenario.settle
    try:
        cluster.run_until(horizon)
    except (SafetyViolation, ConsistencyViolation) as exc:
        extra_violations.append(f"safety alarm during run: {exc}")
    finally:
        if telemetry is not None:
            # Cut a final partial frame, then cancel the repeating
            # timer so the heap can drain.
            telemetry.final_sample()
            telemetry.stop()

    # Crash quiescence: no handler or wire span may start inside a
    # crash window.  (Timers and CPU completions charged to the dead
    # incarnation are cancelled/ignored by the substrate; this audits
    # that from the outside.)
    for node in range(scenario.n_nodes):
        for start, end in plan.crash_windows(node):
            window_end = end if end is not None else cluster.loop.now
            active = obs.activity_spans(node, start, window_end)
            if active:
                extra_violations.append(
                    f"node {node} made {len(active)} transition(s) while "
                    f"crashed in [{start}, {window_end}), "
                    f"first: {active[0].name!r} at {active[0].start:.4f}"
                )

    logs = {
        node.node_id: node.delivery_history + [node.delivered]
        for node in cluster.nodes
    }
    # Liveness sets are computed from the cluster, not the plan alone: a
    # node can also fail-stop on its own (disk full), in which case it
    # is dead without appearing in ``plan.crashes``.
    self_crashed = {
        node.node_id
        for node in cluster.nodes
        if node.crashed and node.node_id not in plan.ever_crashed()
    }
    live = (
        set(range(scenario.n_nodes))
        - set(plan.down_forever())
        - self_crashed
    )
    amnesiacs = {
        c.node
        for c in plan.crashes
        if c.mode == "amnesia" and c.restart_at is not None
    }
    ever_crashed = set(plan.ever_crashed()) | self_crashed
    # Served reads never enter the decision log by design, so reads are
    # not owed a delivery (a fallback read that did go through consensus
    # appears in the logs anyway and is prefix-checked like any write).
    must_deliver = [
        c.cid
        for c in proposed
        if c.proposer not in ever_crashed and not c.is_read
    ]
    if lease_audit:
        extra_violations.extend(
            _audit_served_reads(cluster, served_reads, completions)
        )
    report = check_run(
        logs, live, must_deliver=must_deliver, amnesia_nodes=amnesiacs
    )
    report.violations = extra_violations + report.violations
    return ChaosResult(
        scenario=scenario,
        report=report,
        fingerprint=_fingerprint(logs),
        proposed=len(proposed),
        dropped=(faults.dropped if faults else 0)
        + cluster.network.messages_dropped,
        duplicated=faults.duplicated if faults else 0,
        faults_observed=len(obs.faults),
        telemetry=telemetry,
    )
