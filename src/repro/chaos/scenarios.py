"""The seeded scenario suite behind ``repro chaos``.

Each scenario is a fixed ``(workload seed, fault plan)`` pair, so a
failure reported by CI reproduces locally from just the scenario name.
Times are virtual seconds; the workload runs roughly ``[0.05, 0.85]``
(40 rounds at 20 ms), so faults are placed to overlap live traffic.
"""

from __future__ import annotations

from repro.chaos.plan import (
    NO_FAULTS,
    Crash,
    DelayWindow,
    DropWindow,
    DuplicateWindow,
    FaultPlan,
    PartitionWindow,
)
from repro.chaos.runner import Scenario
from repro.spec import ZoneLatency
from repro.storage.base import StorageConfig

SCENARIOS: list[Scenario] = [
    Scenario(
        name="baseline",
        plan=NO_FAULTS,
        seed=11,
        description="no faults; exercises the harness and checker only",
    ),
    Scenario(
        name="crash-restart-durable",
        plan=FaultPlan(
            crashes=(Crash(at=0.2, node=1, restart_at=0.5, mode="durable"),)
        ),
        seed=12,
        description="one node crashes mid-run and rejoins with its log",
    ),
    Scenario(
        name="crash-restart-amnesia",
        plan=FaultPlan(
            crashes=(Crash(at=0.2, node=2, restart_at=0.5, mode="amnesia"),)
        ),
        seed=13,
        description="one node crashes and rejoins blank (promises lost)",
    ),
    Scenario(
        name="crash-forever-minority",
        plan=FaultPlan(
            crashes=(Crash(at=0.25, node=3), Crash(at=0.35, node=4))
        ),
        seed=14,
        description="two of five nodes die for good; majority keeps going",
    ),
    Scenario(
        name="partition-minority",
        plan=FaultPlan(
            partitions=(
                PartitionWindow(
                    start=0.2,
                    end=0.6,
                    group_a=frozenset({0, 1, 2}),
                    group_b=frozenset({3, 4}),
                ),
            )
        ),
        seed=15,
        description="minority isolated for 0.4 s, then the link heals",
    ),
    Scenario(
        name="partition-owner",
        plan=FaultPlan(
            partitions=(
                PartitionWindow(
                    start=0.15,
                    end=0.55,
                    group_a=frozenset({0}),
                    group_b=frozenset({1, 2, 3, 4}),
                ),
            )
        ),
        seed=16,
        locality=1.0,
        description="an object owner is cut off; others must re-acquire",
    ),
    Scenario(
        name="drop-storm",
        plan=FaultPlan(
            drops=(DropWindow(start=0.2, end=0.5, probability=0.3),)
        ),
        seed=17,
        description="30% of all messages dropped for 0.3 s",
    ),
    Scenario(
        name="drop-dup",
        plan=FaultPlan(
            drops=(DropWindow(start=0.2, end=0.45, probability=0.15),),
            duplicates=(
                DuplicateWindow(start=0.3, end=0.6, probability=0.4),
            ),
        ),
        seed=18,
        description="loss and duplication overlap; dedup must hold",
    ),
    Scenario(
        name="delay-spike",
        plan=FaultPlan(
            delays=(
                DelayWindow(start=0.2, end=0.5, extra=0.04, jitter=0.02),
            )
        ),
        seed=19,
        description="40-60 ms latency spike, reordering timer races",
    ),
    Scenario(
        name="combined",
        plan=FaultPlan(
            crashes=(Crash(at=0.3, node=1, restart_at=0.6, mode="durable"),),
            partitions=(
                PartitionWindow(
                    start=0.15,
                    end=0.35,
                    group_a=frozenset({0, 1}),
                    group_b=frozenset({2, 3, 4}),
                ),
            ),
            drops=(DropWindow(start=0.4, end=0.6, probability=0.2),),
            duplicates=(
                DuplicateWindow(start=0.2, end=0.7, probability=0.25),
            ),
        ),
        seed=20,
        settle=5.0,
        description="partition, then a crash, under loss and duplication",
    ),
    Scenario(
        name="restart-churn",
        plan=FaultPlan(
            crashes=(
                Crash(at=0.15, node=1, restart_at=0.3, mode="durable"),
                Crash(at=0.45, node=1, restart_at=0.6, mode="amnesia"),
                Crash(at=0.25, node=3, restart_at=0.55, mode="amnesia"),
            )
        ),
        seed=21,
        settle=5.0,
        description="repeated crash-restart cycles, durable then amnesia",
    ),
    Scenario(
        name="geo-zone-partition",
        plan=FaultPlan(
            partitions=(
                PartitionWindow(
                    start=0.2,
                    end=0.6,
                    group_a=frozenset({0, 1}),
                    group_b=frozenset({2, 3, 4}),
                ),
            )
        ),
        seed=26,
        zones=(0, 0, 1, 1, 2),
        zone_latency=ZoneLatency(intra=0.0005, inter=0.005),
        zone_affinity=True,
        locality=0.9,
        settle=5.0,
        description="WAN cut along the zone-0 boundary while the "
        "zone-affinity policy is migrating ownership; the majority side "
        "(zones 1+2) must keep deciding and the minority re-converge "
        "after the heal",
    ),
    Scenario(
        name="contention-storm",
        plan=NO_FAULTS,
        seed=25,
        objects=2,
        locality=0.0,
        multi=0.3,
        description="no faults; every node hammers two shared objects, "
        "driving the acquisition path (the HealthDetector's contention "
        "regime)",
    ),
    Scenario(
        name="lease-expiry-partition",
        plan=FaultPlan(
            partitions=(
                PartitionWindow(
                    start=0.15,
                    end=0.45,
                    group_a=frozenset({0}),
                    group_b=frozenset({1, 2, 3, 4}),
                ),
            ),
            crashes=(
                Crash(at=0.5, node=1, restart_at=0.7, mode="durable"),
                Crash(at=0.75, node=2, restart_at=0.95, mode="amnesia"),
            ),
        ),
        seed=27,
        objects=5,
        locality=0.6,
        multi=0.0,
        read_fraction=0.5,
        lease_duration=0.08,
        lease_margin=0.01,
        settle=5.0,
        description="a leaseholder is partitioned away while others "
        "write its objects (acquisition must wait out the lease), then "
        "two holders crash mid-lease and rejoin durable and amnesiac; "
        "the runner audits every locally served read against the "
        "decided write order -- no stale read across any handoff",
    ),
    # ------------------------------------------------------------------
    # Durable-storage scenarios: each node runs a real segmented log
    # (in-memory by default so the suite stays deterministic; the CLI
    # reruns them with --storage disk on real files + fsync).  Restarts
    # go through the recovery scan -- snapshot + log tail replayed into
    # a factory-fresh protocol -- and the runner asserts the recovered
    # delivery log is a byte-identical prefix of the pre-crash one.
    # ------------------------------------------------------------------
    Scenario(
        name="recover-snapshot-tail",
        plan=FaultPlan(
            crashes=(Crash(at=0.3, node=1, restart_at=0.6, mode="durable"),)
        ),
        seed=22,
        storage=StorageConfig(kind="mem", snapshot_every=40),
        description="crash after snapshots truncate the log; recovery "
        "replays snapshot + tail",
    ),
    Scenario(
        name="crash-mid-fsync",
        plan=FaultPlan(
            crashes=(Crash(at=0.25, node=2, restart_at=0.55, mode="durable"),)
        ),
        seed=23,
        storage=StorageConfig(kind="mem", fsync_wait=0.005),
        description="group-commit window open at the crash; the "
        "un-fsynced tail (and its acks) die with the process",
    ),
    Scenario(
        name="disk-full",
        plan=NO_FAULTS,
        seed=24,
        storage=StorageConfig(
            kind="mem", capacity_bytes=20_000, capacity_nodes=(2,)
        ),
        description="one node's log fills mid-run; it fail-stops and the "
        "remaining quorum keeps deciding",
    ),
]

# Quick subset for CI: one crash, one partition, one wire-fault mix.
# (``geo-zone-partition`` is deliberately not here: the batching and
# pipelining suites re-run this list under max_batch=8 configs, and the
# zone-affinity policy's post-heal re-convergence is not yet tuned for
# batched rounds -- same-zone nodes can duel acquisitions for a long
# time.  The scenario runs unbatched in the CI geo-smoke job and in
# tests/test_geo.py instead.)
SMOKE = [
    "crash-restart-durable",
    "partition-minority",
    "drop-dup",
]

# Durable-storage subset for CI: run with ``--storage disk`` to exercise
# real files + fsync in a tmpdir.
DURABLE_SMOKE = ["recover-snapshot-tail", "crash-mid-fsync", "disk-full"]


def by_name(name: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    raise KeyError(f"unknown scenario: {name!r}")
