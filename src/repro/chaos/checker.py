"""End-to-end safety checking for chaos runs.

The checker consumes plain delivery logs (so it audits *what the
application saw*, not protocol internals) and enforces, across every
node and every incarnation:

1. **No double delivery** within one incarnation's log.
2. **Per-object total order**: the restriction of any two logs to any
   object must be prefixes of one another -- the Generalized Consensus
   consistency property, extended to the archived logs of past amnesia
   incarnations (a restarted state machine replays from scratch, but it
   must replay the *same* order).
3. **Durability across restarts**: a command delivered by anyone, ever
   -- including by a node that later crashed -- must be present in the
   final log of every live node that kept its durable log.  Delivery
   implies a quorum decided it, so no schedule of crashes and durable
   restarts may lose it.  A node that restarted with *amnesia* rejoins
   blank and re-learns objects on demand (there is no state-transfer
   subsystem), so it is exempt from the per-node requirement; instead
   the *cluster* must retain every delivered command (present in the
   union of live final logs).
4. **Agreement / completeness**: every command the scenario guarantees
   (``must_deliver``: proposals made by nodes that were never crashed)
   reaches every live non-amnesiac node.

Violations are collected, not raised: a chaos suite wants the full
damage report of a bad run, and the CLI turns a non-empty list into a
non-zero exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

Cid = tuple[int, int]


@dataclass
class SafetyReport:
    """Outcome of one checked run."""

    violations: list[str] = field(default_factory=list)
    logs_checked: int = 0
    delivered_union: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return (
                f"ok: {self.logs_checked} logs, "
                f"{self.delivered_union} distinct commands"
            )
        head = "; ".join(self.violations[:3])
        more = len(self.violations) - 3
        return f"FAILED: {head}" + (f" (+{more} more)" if more > 0 else "")


def check_run(
    logs: dict[int, list[list]],
    live_nodes: Iterable[int],
    must_deliver: Optional[Iterable[Cid]] = None,
    amnesia_nodes: Iterable[int] = (),
) -> SafetyReport:
    """Check one run's delivery logs.

    ``logs`` maps each node id to its incarnation logs, oldest first;
    the last entry is the node's current (final) log.  ``live_nodes``
    are the nodes up at the end of the run; ``must_deliver`` the
    commands whose delivery the scenario guarantees; ``amnesia_nodes``
    the nodes that came back blank at least once (exempt from per-node
    durability/completeness, see module docstring).
    """
    report = SafetyReport()
    labelled: list[tuple[str, list]] = []
    for node in sorted(logs):
        lives = logs[node]
        for life, log in enumerate(lives):
            current = life == len(lives) - 1
            label = f"node {node}" if current else f"node {node} (life {life})"
            labelled.append((label, log))
    report.logs_checked = len(labelled)

    # 1. No double delivery within a log.
    for label, log in labelled:
        seen: set[Cid] = set()
        for command in log:
            if command.cid in seen:
                report.violations.append(
                    f"{label} delivered {command.cid} twice"
                )
            seen.add(command.cid)

    # 2. Per-object total order across every log ever produced.
    per_log: list[dict[str, list[Cid]]] = []
    for _label, log in labelled:
        seqs: dict[str, list[Cid]] = {}
        for command in log:
            for obj in command.ls:
                seqs.setdefault(obj, []).append(command.cid)
        per_log.append(seqs)
    all_objects: set[str] = set()
    for seqs in per_log:
        all_objects.update(seqs)
    for obj in sorted(all_objects):
        sequences = [seqs.get(obj, []) for seqs in per_log]
        longest = max(sequences, key=len)
        for (label, _log), seq in zip(labelled, sequences):
            if seq != longest[: len(seq)]:
                report.violations.append(
                    f"object {obj!r}: {label} delivered a conflicting order"
                )

    # 3 + 4. Durability and completeness against live nodes' final logs.
    amnesiac = set(amnesia_nodes)
    delivered_ever: set[Cid] = set()
    for _label, log in labelled:
        delivered_ever.update(command.cid for command in log)
    report.delivered_union = len(delivered_ever)
    final: dict[int, set[Cid]] = {
        node: {command.cid for command in logs[node][-1]} for node in logs
    }
    live = sorted(live_nodes)
    for node in live:
        if node in amnesiac:
            continue
        have = final.get(node, set())
        lost = delivered_ever - have
        if lost:
            report.violations.append(
                f"node {node} lost {len(lost)} delivered command(s) "
                f"across restarts, e.g. {sorted(lost)[:3]}"
            )
        if must_deliver is not None:
            missing = set(must_deliver) - have
            if missing:
                report.violations.append(
                    f"node {node} never delivered {len(missing)} guaranteed "
                    f"command(s), e.g. {sorted(missing)[:3]}"
                )
    cluster_final: set[Cid] = set()
    for node in live:
        cluster_final.update(final.get(node, set()))
    forgotten = delivered_ever - cluster_final
    if forgotten and live:
        report.violations.append(
            f"cluster forgot {len(forgotten)} delivered command(s), "
            f"e.g. {sorted(forgotten)[:3]}"
        )
    return report
