"""Per-message wire-fault evaluation, shared by both substrates.

:class:`WireFaults` turns a :class:`~repro.chaos.plan.FaultPlan`'s
window declarations into a per-send decision: given ``(src, dst, now)``
it returns the *delay offsets* of the copies to deliver --

- ``[]``          the message is dropped (partition or drop window);
- ``[0.0]``       normal delivery;
- ``[0.0, 0.0]``  duplicated;
- ``[0.25, ...]`` delay-spiked copies.

The simulator installs one instance as ``Network.injector`` (evaluated
in deterministic event order with a seeded RNG, so runs replay
byte-identically); the runtime installs one per node as the wire shim
consulted in :meth:`repro.runtime.node.RuntimeNode.enqueue`.  Times are
scenario-relative: set ``offset`` to the substrate clock reading at
scenario start (0 for the simulator's virtual clock).
"""

from __future__ import annotations

import random

from repro.chaos.plan import FaultPlan


class WireFaults:
    """Callable fault filter over one plan; one RNG per instance."""

    def __init__(self, plan: FaultPlan, seed: int, offset: float = 0.0) -> None:
        self.plan = plan
        self.offset = offset
        self._rng = random.Random((seed << 8) ^ 0xC4A05)
        # Tallies for reports and tests.
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def __call__(self, src: int, dst: int, now: float) -> list[float]:
        return self.offsets(src, dst, now)

    def offsets(self, src: int, dst: int, now: float) -> list[float]:
        """Delay offsets of the copies of one ``src -> dst`` message."""
        if src == dst:
            # Loopback never crosses the wire; chaos leaves it alone.
            return [0.0]
        t = now - self.offset
        plan = self.plan
        if plan.partitioned(src, dst, t):
            self.dropped += 1
            return []
        for w in plan.drops:
            if w.active(t) and w.applies(src, dst) and (
                w.probability >= 1.0 or self._rng.random() < w.probability
            ):
                self.dropped += 1
                return []
        extra = 0.0
        for w in plan.delays:
            if w.active(t) and w.applies(src, dst):
                extra += w.extra + (w.jitter * self._rng.random() if w.jitter else 0.0)
        copies = [extra]
        for w in plan.duplicates:
            if w.active(t) and w.applies(src, dst) and (
                w.probability >= 1.0 or self._rng.random() < w.probability
            ):
                self.duplicated += 1
                copies.append(extra)
                break
        if extra > 0:
            self.delayed += len(copies)
        return copies
