"""Geo/WAN benchmark: zone-aware ownership migration, measured.

The deployment the paper's Section VI never runs: nodes spread across
regions with a ~two-orders-of-magnitude gap between intra- and
inter-zone delay.  Every object starts homed in one region (``z0``),
while each region's clients hammer their *own* Zipf-skewed object pool
-- the worst case for static placement and the best case for a
placement policy that moves ownership to where the traffic is.

Three arms, identical workload and seed:

- ``pinned``: the seed behaviour -- ownership stays at the home region,
  every remote-region command pays WAN forwarding.
- ``zone_affinity``: :class:`~repro.core.policy.ZoneAffinityPolicy`
  migrates each object group to the region generating its demand; the
  fast path still needs a majority of all nodes, so one WAN hop remains
  in the quorum round.
- ``zone_affinity_flex``: the same policy plus a relaxed Fast Flexible
  Paxos quorum (``accept=2`` of 5, ``prepare=4``): after migration the
  owner reaches an accept quorum inside its own zone, so the steady
  state is intra-zone.

The CI floor (:func:`repro.bench.perf.check_regressions`) asserts the
migration arms actually migrated and that remote-region p50 improves
over ``pinned`` by a healthy margin.
"""

from __future__ import annotations

import random

from repro.consensus.commands import Command

# Zone map for the canonical geo arm: 3 regions, two nodes in each of
# the first two, one in the third (5 nodes keeps majority quorums = 3).
GEO_ZONES = (0, 0, 1, 1, 2)
HOME_NODE = 0  # every object starts owned here (region 0)
GEO_INTRA = 0.5e-3  # one-way intra-zone delay (seconds)
GEO_INTER = 40e-3  # one-way inter-zone delay


def zone_rtt_matrix(
    zones: tuple[int, ...],
    intra: float = GEO_INTRA,
    inter: float = GEO_INTER,
) -> tuple[tuple[float, ...], ...]:
    """The full n x n RTT matrix the latency-aware quorum picker wants,
    derived from the same zone map the network model uses (a deployment
    would measure this; the sim knows it exactly)."""
    return tuple(
        tuple(
            0.0
            if a == b
            else 2.0 * (intra if zone_a == zone_b else inter)
            for b, zone_b in enumerate(zones)
        )
        for a, zone_a in enumerate(zones)
    )


class GeoZipfWorkload:
    """Per-region Zipf object affinity; deterministic per seed.

    Each zone has its own pool of ``objects_per_zone`` objects
    (``z<zone>.<rank>``) with Zipf(``skew``) popularity.  A client on
    node ``i`` targets its own zone's pool with probability
    ``affinity`` and a uniformly chosen other zone otherwise -- traffic
    is region-local but not perfectly partitioned, exactly the regime
    where decayed per-zone demand counters have to out-vote stray
    remote touches.
    """

    def __init__(
        self,
        zones: tuple[int, ...],
        rng: random.Random,
        objects_per_zone: int = 24,
        skew: float = 1.1,
        affinity: float = 0.95,
        payload_bytes: int = 16,
    ) -> None:
        self.zones = tuple(zones)
        self._rng = rng
        self.affinity = affinity
        self.payload_bytes = payload_bytes
        self._zone_ids = sorted(set(self.zones))
        self._pools = {
            zone: [f"z{zone}.{i}" for i in range(objects_per_zone)]
            for zone in self._zone_ids
        }
        weights = [1.0 / (rank + 1) ** skew for rank in range(objects_per_zone)]
        total = sum(weights)
        cum, acc = [], 0.0
        for weight in weights:
            acc += weight
            cum.append(acc / total)
        self._cum = cum
        self._seq = [0] * len(self.zones)

    def all_objects(self) -> list[str]:
        return [name for pool in self._pools.values() for name in pool]

    def next_command(self, node: int) -> Command:
        seq = self._seq[node]
        self._seq[node] += 1
        zone = self.zones[node]
        if len(self._zone_ids) > 1 and self._rng.random() >= self.affinity:
            others = [z for z in self._zone_ids if z != zone]
            zone = others[self._rng.randrange(len(others))]
        draw = self._rng.random()
        pool = self._pools[zone]
        # First cumulative weight >= draw (pools are small; linear scan
        # beats bisect's call overhead at this size).
        for rank, bound in enumerate(self._cum):
            if draw <= bound:
                break
        return Command.make(
            node, seq, [pool[rank]], payload_bytes=self.payload_bytes
        )


def _zone_frame_stats(frame, zones: tuple[int, ...]) -> dict:
    """Per-zone table out of one telemetry frame, ms units."""
    stats = {}
    for zone in sorted(set(zones)):
        key = str(zone)
        stats[key] = {
            "decides": frame.zone_decides.get(key, 0),
            "fast_share": frame.zone_fast_share.get(key, float("nan")),
            "p50_ms": frame.zone_p50.get(key, float("nan")) * 1e3,
            "p99_ms": frame.zone_p99.get(key, float("nan")) * 1e3,
        }
    return stats


def _remote_p50_ms(per_zone: dict, home_zone: int) -> float:
    """Mean p50 across the zones that do not host the home node."""
    remote = [
        row["p50_ms"]
        for zone, row in per_zone.items()
        if int(zone) != home_zone and row["decides"]
    ]
    return sum(remote) / len(remote) if remote else float("nan")


def run_geo_arm(
    config,
    policy=None,
    quorum=None,
    zones: tuple[int, ...] = GEO_ZONES,
    nearest_accept: bool = False,
) -> dict:
    """One geo arm: build, warm (migrations happen here), measure."""
    from repro.bench.harness import protocol_factory
    from repro.obs.telemetry import Telemetry
    from repro.sim.cluster import Cluster
    from repro.sim.rng import RngRegistry
    from repro.spec import ClusterSpec, ZoneLatency
    from repro.workloads.client import ClientConfig, OpenLoopClients

    spec = ClusterSpec(
        protocol="m2paxos",
        n_nodes=len(zones),
        seed=config.seed,
        zones=zones,
        zone_latency=ZoneLatency(intra=GEO_INTRA, inter=GEO_INTER),
    )
    factory = protocol_factory(
        "m2paxos",
        home_hint=lambda name: HOME_NODE,
        policy=policy,
        quorum=quorum,
        nearest_accept=nearest_accept,
        quorum_rtt=zone_rtt_matrix(zones) if nearest_accept else None,
    )
    cluster = Cluster(spec.sim_cluster_config(), factory)
    workload = GeoZipfWorkload(
        zones, RngRegistry(config.seed * 104729 + 1).stream("geo")
    )
    # Manual frame cuts at the window boundaries; the periodic cadence
    # stays off so the run is exactly two frames (warmup, measured).
    telemetry = Telemetry(cluster, interval=3600.0)
    clients = OpenLoopClients(
        cluster,
        workload,
        ClientConfig(
            clients_per_node=16, think_time=5e-3, max_inflight_per_node=32
        ),
    )
    cluster.start()
    clients.start()
    cluster.run_for(config.geo_warmup)
    telemetry.sampler.sample()  # close (and discard) the warmup window
    cluster.run_for(config.geo_duration)
    frame = telemetry.sampler.sample()
    clients.stop()
    cluster.check_consistency()
    telemetry.detach()
    cluster.close_storage()
    migrations = sum(
        node.protocol.stats.get("migrations", 0) for node in cluster.nodes
    )
    per_zone = _zone_frame_stats(frame, zones)
    home_zone = zones[HOME_NODE]
    return {
        "per_zone": per_zone,
        "remote_p50_ms": _remote_p50_ms(per_zone, home_zone),
        "home_p50_ms": per_zone[str(home_zone)]["p50_ms"],
        "decides": frame.decides,
        "throughput": frame.throughput,
        "migrations": migrations,
        "interval_migrations": frame.migrations,
        "cross_zone_messages": cluster.network.messages_cross_zone,
        "cross_zone_bytes": cluster.network.bytes_cross_zone,
        "messages_sent": cluster.network.messages_sent,
    }


def bench_geo(config) -> dict:
    """Per-region latency before vs after zone-aware migration."""
    from repro.core.policy import ZoneAffinityPolicy
    from repro.core.quorum import FlexibleQuorums

    zones = GEO_ZONES
    pinned = run_geo_arm(config, zones=zones)
    affinity = run_geo_arm(
        config, policy=lambda: ZoneAffinityPolicy(zones), zones=zones
    )
    flex = run_geo_arm(
        config,
        policy=lambda: ZoneAffinityPolicy(zones),
        quorum=FlexibleQuorums(prepare=4, accept=2),
        zones=zones,
    )
    # Satellite arm: same flexible quorum, but the owner *targets* the
    # accept quorum minimising its worst RTT instead of broadcasting --
    # with accept=2 of 5 there are ten candidate quorums, and after
    # migration the minimiser is the owner's own zone.
    flex_nearest = run_geo_arm(
        config,
        policy=lambda: ZoneAffinityPolicy(zones),
        quorum=FlexibleQuorums(prepare=4, accept=2),
        zones=zones,
        nearest_accept=True,
    )

    def improvement(arm: dict) -> float:
        baseline, after = pinned["remote_p50_ms"], arm["remote_p50_ms"]
        if not after or after != after:  # zero or NaN
            return float("nan")
        return baseline / after

    return {
        "zones": list(zones),
        "home_node": HOME_NODE,
        "pinned": pinned,
        "zone_affinity": affinity,
        "zone_affinity_flex": flex,
        "zone_affinity_flex_nearest": flex_nearest,
        "remote_p50_improvement": improvement(affinity),
        "flex_remote_p50_improvement": improvement(flex),
        "flex_nearest_remote_p50_improvement": improvement(flex_nearest),
    }
