"""One benchmark datapoint: build a cluster, drive load, measure.

The protocol configurations used here differ from the library defaults
only in their supervision timeouts: at saturation, command latency is
dominated by queueing, and the paper's runs are crash-free, so the
fault-tolerance timers are relaxed to keep spurious recoveries from
polluting the measurement (exactly as a real deployment would tune
them).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.consensus.base import Protocol
from repro.consensus.epaxos import EPaxos, EPaxosConfig
from repro.consensus.genpaxos import GenPaxos, GenPaxosConfig
from repro.consensus.multipaxos import MultiPaxos, MultiPaxosConfig
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.metrics.collector import MetricsCollector, RunResult
from repro.sim.cluster import Cluster
from repro.sim.cpu import CpuConfig
from repro.sim.latency import GaussianLatency
from repro.sim.network import NetworkConfig
from repro.sim.rng import RngRegistry
from repro.spec import ClusterSpec, ZoneLatency
from repro.storage.base import StorageConfig
from repro.workloads.client import ClientConfig, OpenLoopClients
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from repro.workloads.tpcc import TpccConfig, TpccWorkload

PROTOCOLS = ("m2paxos", "multipaxos", "genpaxos", "epaxos")


def protocol_factory(
    name: str,
    home_hint: Optional[Callable[[str], int]] = None,
    max_batch: int = 1,
    batch_wait: float = 0.0,
    batch_adaptive: bool = False,
    costs=None,
    policy=None,
    quorum=None,
    lease_duration: float = 0.0,
    lease_margin: float = 0.002,
    session_cap: int = 65536,
    nearest_accept: bool = False,
    quorum_rtt: Optional[tuple] = None,
) -> Callable[[int, int], Protocol]:
    """Benchmark-tuned factory for each protocol under test.

    ``max_batch``/``batch_wait``/``batch_adaptive`` configure M2Paxos
    fast-path batching (ignored by the other protocols); ``costs``
    optionally replaces the protocol's CPU-cost profile (the perf bench
    uses a wire-bound profile to isolate the protocol-layer effect of
    batching).  ``policy`` is an ownership-policy *factory* (zero-arg
    callable -- policies hold per-node state) and ``quorum`` a
    :class:`~repro.core.quorum.QuorumSystem` spec; both are M2Paxos-only,
    as are the serving-tier knobs (``lease_duration``/``lease_margin``/
    ``session_cap``) and latency-aware accept targeting
    (``nearest_accept`` + ``quorum_rtt``).
    """
    if name == "m2paxos":
        config = M2PaxosConfig(
            forward_timeout=1.0,
            # Balanced gap healing: fast enough that ownership-churn
            # holes do not stall the pipeline for long, slow enough not
            # to scoop rounds that are merely queued at saturation.
            gap_timeout=0.5,
            gap_check_period=0.25,
            supervise_timeout=30.0,
            round_timeout=10.0,
            home_hint=home_hint,
            max_batch=max_batch,
            batch_wait=batch_wait,
            batch_adaptive=batch_adaptive,
            policy=policy,
            quorum=quorum,
            lease_duration=lease_duration,
            lease_margin=lease_margin,
            session_cap=session_cap,
            nearest_accept=nearest_accept,
            quorum_rtt=quorum_rtt,
        )

        def make_m2(node_id: int, n: int) -> Protocol:
            protocol = M2Paxos(config)
            if costs is not None:
                protocol.costs = costs
            return protocol

        return make_m2
    if name == "multipaxos":
        config = MultiPaxosConfig(leader_timeout=30.0)
        return lambda node_id, n: MultiPaxos(config)
    if name == "genpaxos":
        config = GenPaxosConfig(retry_timeout=1.0)
        return lambda node_id, n: GenPaxos(config)
    if name == "epaxos":
        config = EPaxosConfig(commit_timeout=30.0)
        return lambda node_id, n: EPaxos(config)
    raise ValueError(f"unknown protocol {name!r}; choose from {PROTOCOLS}")


@dataclass
class PointSpec:
    """Everything defining one datapoint."""

    protocol: str
    n_nodes: int
    workload: str = "synthetic"  # "synthetic" | "tpcc"
    synthetic: SyntheticConfig = field(default_factory=SyntheticConfig)
    tpcc: TpccConfig = field(default_factory=TpccConfig)
    clients_per_node: int = 64
    think_time: float = 0.005
    max_inflight: int = 96
    duration: float = 0.25
    warmup: float = 0.15
    seed: int = 1
    cores: int = 16
    batching: bool = True
    latency_mean: float = 100e-6
    latency_stddev: float = 10e-6
    # M2Paxos fast-path batching (1 = off, the seed-identical default).
    max_batch: int = 1
    batch_wait: float = 0.0
    # "estimate" (seed default) or "codec" (real binary frame sizes).
    frame_sizes: str = "estimate"
    # Durable storage; None keeps today's in-memory-only behaviour.
    storage: Optional[StorageConfig] = None
    # Geo runs: node->zone assignment, the intra/inter-zone latency
    # shorthand (replaces the Gaussian LAN model when set), and whether
    # m2paxos runs the zone-aware migration policy.
    zones: Optional[tuple[int, ...]] = None
    zone_latency: Optional["ZoneLatency"] = None
    zone_affinity: bool = False
    # Serving tier (m2paxos only; all off by default, keeping the run
    # byte-identical to the seed): ownership-lease knobs, the aggregate
    # client-session count per node (wired into both the workload's
    # session stamps and the open-loop driver), and latency-aware
    # accept-quorum targeting.
    lease_duration: float = 0.0
    lease_margin: float = 0.002
    sessions_per_node: int = 0
    nearest_accept: bool = False
    quorum_rtt: Optional[tuple] = None
    quorum: Optional[object] = None

    def scaled_for_fast_mode(self) -> "PointSpec":
        """Cheaper variant used when REPRO_BENCH_FAST is set."""
        return replace(self, duration=self.duration / 2, warmup=self.warmup / 2)


def fast_mode() -> bool:
    return bool(os.environ.get("REPRO_BENCH_FAST"))


def build_workload(spec: PointSpec, rng: RngRegistry):
    if spec.workload == "synthetic":
        synthetic = spec.synthetic
        if spec.sessions_per_node and not synthetic.sessions_per_node:
            # One knob drives both halves of the session model: the
            # workload stamps (client_id, seq) and the client driver
            # aggregates issuance over the same session count.
            synthetic = replace(
                synthetic, sessions_per_node=spec.sessions_per_node
            )
        return SyntheticWorkload(synthetic, spec.n_nodes, rng.stream("workload"))
    if spec.workload == "tpcc":
        return TpccWorkload(spec.tpcc, spec.n_nodes, rng.stream("workload"))
    raise ValueError(f"unknown workload {spec.workload!r}")


@dataclass
class RunHandle:
    """A fully built but not-yet-started sim run.

    ``repro top`` steps the cluster interval-by-interval between screen
    refreshes; :func:`run_point` drives it start-to-finish.  Either way
    the pieces (cluster, workload, collector, clients) are assembled
    once, here.
    """

    spec: PointSpec
    cluster: Cluster
    workload: object
    collector: MetricsCollector
    clients: OpenLoopClients

    def start(self) -> None:
        self.cluster.start()
        self.clients.start()

    def finish(self) -> RunResult:
        self.clients.stop()
        self.cluster.check_consistency()
        result = self.collector.result()
        result.extra["protocol_stats"] = [
            dict(node.protocol.stats) for node in self.cluster.nodes
        ]
        result.extra["obs"] = self.collector.obs
        self.cluster.close_storage()
        return result


def build_run(
    spec: PointSpec, record_spans: bool = False, costs=None
) -> RunHandle:
    """Assemble cluster + workload + collector + clients for ``spec``."""
    network = NetworkConfig(
        latency=GaussianLatency(spec.latency_mean, spec.latency_stddev),
        batching=spec.batching,
        frame_sizes=spec.frame_sizes,
    )
    home_hint = None
    if spec.workload == "tpcc":
        # TPC-C declares its partitioning: every object of warehouse W
        # is homed at node ``W % N`` (DESIGN.md, "home-ownership hint").
        n_nodes = spec.n_nodes

        def home_hint(name: str, _n: int = n_nodes) -> int:
            return int(name[1:].split(".", 1)[0]) % _n

    policy = None
    if spec.zone_affinity:
        if spec.zones is None:
            raise ValueError("zone_affinity requires zones")
        if spec.protocol != "m2paxos":
            raise ValueError("zone_affinity is an m2paxos policy")
        from repro.core.policy import ZoneAffinityPolicy

        zones = spec.zones
        policy = lambda: ZoneAffinityPolicy(zones)  # noqa: E731
    cluster_spec = ClusterSpec(
        protocol=spec.protocol,
        n_nodes=spec.n_nodes,
        seed=spec.seed,
        network=network,
        cpu=CpuConfig(cores=spec.cores),
        storage=spec.storage,
        zones=spec.zones,
        zone_latency=spec.zone_latency,
    )
    cluster = Cluster(
        cluster_spec.sim_cluster_config(),
        # The bench-tuned factory, not cluster_spec.protocol_factory():
        # it layers home hints, fast-path batching, and cost overrides
        # on top of the spec's protocol choice.
        protocol_factory(
            spec.protocol,
            home_hint=home_hint,
            max_batch=spec.max_batch,
            batch_wait=spec.batch_wait,
            costs=costs,
            policy=policy,
            quorum=spec.quorum,
            lease_duration=spec.lease_duration,
            lease_margin=spec.lease_margin,
            nearest_accept=spec.nearest_accept,
            quorum_rtt=spec.quorum_rtt,
        ),
    )
    workload_rng = RngRegistry(spec.seed * 7919 + 13)
    workload = build_workload(spec, workload_rng)
    collector = MetricsCollector(cluster, warmup=spec.warmup, record_spans=record_spans)
    clients = OpenLoopClients(
        cluster,
        workload,
        ClientConfig(
            clients_per_node=spec.clients_per_node,
            think_time=spec.think_time,
            max_inflight_per_node=spec.max_inflight,
            sessions_per_node=spec.sessions_per_node,
        ),
        collector=collector,
    )
    return RunHandle(
        spec=spec,
        cluster=cluster,
        workload=workload,
        collector=collector,
        clients=clients,
    )


def run_point(
    spec: PointSpec,
    record_spans: bool = False,
    costs=None,
    telemetry_interval: Optional[float] = None,
) -> RunResult:
    """Simulate one datapoint and return its measurements.

    With ``record_spans`` the run also keeps the full span log; the
    attached observability collector rides along in
    ``result.extra["obs"]`` for the trace exporters.  ``costs``
    optionally replaces the protocol's CPU-cost profile (see
    :func:`protocol_factory`).  ``telemetry_interval`` additionally
    attaches the live-telemetry sampler at that cadence; the
    ``Telemetry`` handle rides along in ``result.extra["telemetry"]``.
    Sampler callbacks only read, so decision logs are unchanged.
    """
    if fast_mode():
        spec = spec.scaled_for_fast_mode()
    handle = build_run(spec, record_spans=record_spans, costs=costs)
    cluster, collector = handle.cluster, handle.collector
    telemetry = None
    if telemetry_interval is not None:
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry(cluster, interval=telemetry_interval)
        telemetry.start()
    handle.start()
    cluster.run_for(spec.warmup)
    collector.begin_window()
    cluster.run_for(spec.duration)
    collector.end_window()
    if telemetry is not None:
        telemetry.stop()
    result = handle.finish()
    if telemetry is not None:
        result.extra["telemetry"] = telemetry
    return result


def saturated_spec(spec: PointSpec) -> PointSpec:
    """An offered load well above any protocol's capacity, so measured
    throughput equals capacity (the paper's 'maximum attainable
    throughput' methodology: load to saturation, report the plateau).

    The warm-up is stretched so the in-flight pipeline reaches steady
    state before the measurement window opens -- at saturation the
    queueing delay is a large multiple of the unloaded latency.
    """
    return replace(
        spec,
        clients_per_node=64,
        think_time=0.002,
        max_inflight=96,
        warmup=max(spec.warmup, 0.5),
        duration=max(spec.duration, 0.3),
    )
