"""Seeded performance microbenches behind the ``repro perf`` CLI.

Four layers, matching where the hot-path work actually happens:

- **sim**: raw event-loop dispatch rate (events/sec of wall time) --
  the floor under every simulated datapoint;
- **codec**: encode+decode round-trips/sec and bytes/msg for the JSON
  and binary wire paths over the same seeded message corpus;
- **m2_batching**: end-to-end commands/sec at saturation for M2Paxos
  with fast-path batching off (``max_batch=1``) vs on, under the
  *wire-bound* cost profile below;
- **runtime_tcp**: commands/sec through the real asyncio runtime over
  localhost TCP (the binary codec's end-to-end effect);
- **telemetry_overhead**: pipelined runtime saturation with the full
  live-telemetry stack attached vs the bare cluster (the telemetry
  tax, asserted <= 5% by the CI floor).

Every bench is seeded; wall-clock rates vary with the machine, but the
simulated-throughput numbers (``m2_batching``) are deterministic.
Results are written as one ``BENCH_<stamp>.json`` datapoint.

Why a wire-bound cost profile for the batching bench: with the default
calibration, throughput is bound by ``propose_cost`` (per-command
client handling, 8 ms), which batching cannot amortise -- by design, it
models work that exists per command regardless of how rounds are
packed.  Batching attacks the *per-round* costs: quorum messages, their
handler invocations, their sends.  To measure that effect the profile
shrinks ``propose_cost`` so rounds dominate, and charges an honest
``per_command_cost`` for every extra command a batched round carries.
Both arms run the identical profile, so the ratio isolates the
protocol-layer change.
"""

from __future__ import annotations

import gc
import hashlib
import json
import os
import statistics
import time
from dataclasses import asdict, dataclass, replace

from repro.consensus.base import ProtocolCosts
from repro.consensus.commands import Command

BENCH_SCHEMA = "repro-perf/1"

# Wire-bound profile for the batching comparison (see module docstring).
# per_command_cost is ~half of base_cost: a command inside a batch costs
# about half of what a whole message costs to handle.
WIRE_BOUND_COSTS = ProtocolCosts(
    base_cost=120e-6,
    serial_fraction=0.03,
    propose_cost=1e-3,
    per_command_cost=60e-6,
)

# Profile for the serving-tier comparison: leases remove the *consensus
# messages* from the read path, so the bench shrinks the per-command
# client-handling cost (which both arms pay identically, served or not)
# until the message path dominates -- the same isolation argument the
# batching bench makes for its wire-bound profile.
SERVING_COSTS = ProtocolCosts(
    base_cost=120e-6,
    serial_fraction=0.03,
    propose_cost=250e-6,
    per_command_cost=60e-6,
)


@dataclass
class PerfConfig:
    """Scale knobs; ``smoke`` shrinks everything for CI."""

    seed: int = 1
    n_nodes: int = 5
    sim_events: int = 200_000
    codec_messages: int = 400
    codec_rounds: int = 40
    bench_duration: float = 0.4
    bench_warmup: float = 0.4
    runtime_commands: int = 300
    # runtime_tcp noise control: one unmeasured burn-in run, then the
    # best of ``tcp_repeats`` measured runs (one-sided noise: background
    # load only ever slows a run down, so the best is the estimate).
    tcp_repeats: int = 5
    # Serving bench: sim read-ratio sweep (leased vs unleased arms per
    # ratio), plus a runtime pair at 90% reads driven with the same
    # alternating best-of-N discipline as the telemetry bench.
    serving_read_ratios: tuple[float, ...] = (0.0, 0.5, 0.9, 0.99)
    serving_commands: int = 1200
    serving_repeats: int = 5
    serving_lease: float = 0.2  # virtual seconds (sim arms)
    storage_records: int = 2048
    # Saturation sweep (bench ``runtime_saturation``): pipeline depths
    # to try and commands per arm.  ``uvloop=True`` runs every runtime
    # bench under uvloop's event loop when installed (silent fallback
    # otherwise; see repro.runtime.cluster.run).
    saturation_depths: tuple[int, ...] = (1, 4, 16, 64)
    saturation_commands: int = 1200
    # Telemetry-overhead bench: commands per arm, alternating off/on
    # repeats (the tax is the ratio of per-arm bests, so more repeats
    # give each arm more chances to record an uncontaminated run), and
    # the wall-clock sampling cadence while measuring.
    telemetry_commands: int = 1200
    telemetry_repeats: int = 7
    telemetry_interval: float = 0.05
    # Geo bench (``geo``): virtual seconds of warmup (ownership
    # migrations settle here) and of measured window per arm.
    geo_warmup: float = 0.8
    geo_duration: float = 0.8
    uvloop: bool = False
    smoke: bool = False

    def scaled_for_smoke(self) -> "PerfConfig":
        return replace(
            self,
            sim_events=40_000,
            codec_messages=150,
            codec_rounds=10,
            bench_duration=0.2,
            bench_warmup=0.25,
            runtime_commands=120,
            tcp_repeats=3,
            # The endpoints of the sweep still resolve the speedup the
            # CI floor checks; the mid-ratio points are full-run detail.
            serving_read_ratios=(0.0, 0.9),
            serving_commands=600,
            serving_repeats=3,
            storage_records=512,
            saturation_depths=(1, 16),
            saturation_commands=360,
            # Still the smallest telemetry arm that resolves a 5% tax:
            # below ~100ms of measured run, startup and batching-regime
            # jitter swamp the effect the floor is checking.
            telemetry_commands=900,
            # Long enough for every hot object to earn its migration
            # (threshold 3 demand-weight at ~200 req/s/zone) and for the
            # measured window to see >100 completions per zone.
            geo_warmup=0.5,
            geo_duration=0.5,
            smoke=True,
        )


# ----------------------------------------------------------------------
# Layer 0: event-loop dispatch
# ----------------------------------------------------------------------


def bench_sim_events(config: PerfConfig) -> dict:
    """Events/sec through the simulator's heap, including the timer
    churn pattern protocols create (arm a supervision timer, cancel it
    when the round completes) -- the case the lazy-compaction change
    targets."""
    from repro.sim.event_loop import EventLoop

    loop = EventLoop()
    n = config.sim_events
    fired = 0
    pending_cancel = []

    def tick() -> None:
        nonlocal fired
        fired += 1
        # Each event arms a 'supervision' timer it immediately replaces,
        # leaving a cancelled tombstone in the heap, and reschedules
        # itself while the budget lasts.
        guard = loop.schedule(10.0, lambda: None)
        pending_cancel.append(guard)
        if len(pending_cancel) > 32:
            pending_cancel.pop(0).cancel()
        if fired < n:
            loop.schedule(1e-6, tick)

    loop.schedule(0.0, tick)
    start = time.perf_counter()
    loop.run_until(1e9)
    elapsed = time.perf_counter() - start
    return {
        "events": fired,
        "events_per_sec": fired / elapsed,
        "wall_seconds": elapsed,
    }


# ----------------------------------------------------------------------
# Layer 1: wire codec
# ----------------------------------------------------------------------


def _codec_corpus(config: PerfConfig) -> list:
    """Seeded corpus shaped like real M2Paxos saturation traffic: mostly
    Accept/AckAccept/Decide, some Forward/Prepare, commands reused
    across messages the way one round's Accept+Decide reuse them."""
    import random

    from repro.core.messages import Accept, AckAccept, Decide, Forward, Prepare

    rng = random.Random(config.seed * 31 + 7)
    corpus: list = []
    for i in range(config.codec_messages):
        node = rng.randrange(config.n_nodes)
        n_objs = 1 if rng.random() < 0.9 else rng.randint(2, 4)
        objects = frozenset(
            f"o{node}.{rng.randrange(100)}" for _ in range(n_objs)
        )
        command = Command(
            cid=(node, i), ls=objects, payload_bytes=16, proposer=node
        )
        to_decide = {(obj, rng.randrange(50)): command for obj in objects}
        eps = {ins: node + config.n_nodes for ins in to_decide}
        kind = rng.random()
        if kind < 0.35:
            corpus.append(Accept(req=i, to_decide=to_decide, eps=eps))
        elif kind < 0.70:
            corpus.append(
                AckAccept(
                    req=i,
                    coordinator=node,
                    ok=rng.random() < 0.95,
                    cids={ins: command.cid for ins in to_decide},
                    eps=eps,
                )
            )
        elif kind < 0.90:
            corpus.append(Decide(to_decide=to_decide))
        elif kind < 0.95:
            corpus.append(Forward(command=command, hops=rng.randrange(3)))
        else:
            corpus.append(Prepare(req=i, eps=eps))
    return corpus


def bench_codec(config: PerfConfig) -> dict:
    """Round-trips/sec and bytes/msg, JSON vs binary, same corpus."""
    from repro.runtime import codec

    corpus = _codec_corpus(config)

    def run(encode) -> tuple[float, float]:
        # Best-of-N rounds with warm caches: steady state is what the
        # hot path sees (commands are re-encoded across Accept/Decide
        # and intern their bodies by design).
        best = float("inf")
        total_bytes = 0
        for _ in range(config.codec_rounds):
            start = time.perf_counter()
            total_bytes = 0
            for message in corpus:
                payload = encode(0, message)
                total_bytes += len(payload)
                codec.decode_payload(payload)
            best = min(best, time.perf_counter() - start)
        return len(corpus) / best, total_bytes / len(corpus)

    json_rate, json_bytes = run(codec.encode_payload_json)
    bin_rate, bin_bytes = run(codec.encode_payload_binary)
    return {
        "messages": len(corpus),
        "json_roundtrips_per_sec": json_rate,
        "binary_roundtrips_per_sec": bin_rate,
        "speedup": bin_rate / json_rate,
        "json_bytes_per_msg": json_bytes,
        "binary_bytes_per_msg": bin_bytes,
        "size_ratio": json_bytes / bin_bytes,
    }


# ----------------------------------------------------------------------
# Layer 2: protocol batching, end to end in the simulator
# ----------------------------------------------------------------------


def bench_m2_batching(config: PerfConfig) -> dict:
    """Saturated M2Paxos commands/sec, ``max_batch=1`` vs ``8``.

    Full-locality synthetic workload (each node hammering its own
    objects) so the fast path dominates and batching gets traffic to
    coalesce -- the workload regime the paper's Figure 3 measures.
    Real codec frame sizes feed the network model in both arms.
    """
    from repro.bench.harness import PointSpec, run_point, saturated_spec
    from repro.workloads.synthetic import SyntheticConfig

    base = saturated_spec(
        PointSpec(
            protocol="m2paxos",
            n_nodes=config.n_nodes,
            synthetic=SyntheticConfig(locality=1.0, local_set_size=16),
            seed=config.seed,
            frame_sizes="codec",
        )
    )
    # saturated_spec stretches the windows for measurement-grade runs;
    # the perf config stays authoritative so smoke mode is actually quick.
    base = replace(
        base, duration=config.bench_duration, warmup=config.bench_warmup
    )
    arms = {}
    for label, spec in (
        ("unbatched", base),
        ("batched", replace(base, max_batch=8, batch_wait=1e-3)),
    ):
        result = run_point(spec, costs=WIRE_BOUND_COSTS)
        arms[label] = {
            "commands_per_sec": result.throughput,
            "delivered": result.delivered,
            "messages_sent": result.messages_sent,
            "bytes_sent": result.bytes_sent,
            "p50_ms": result.latency.p50 * 1e3 if result.latency else None,
            "fast_ratio": result.fast_ratio,
        }
    unbatched = arms["unbatched"]["commands_per_sec"]
    batched = arms["batched"]["commands_per_sec"]
    return {
        **arms,
        "speedup": batched / unbatched if unbatched else float("inf"),
        "message_reduction": (
            arms["unbatched"]["messages_sent"]
            / max(arms["batched"]["messages_sent"], 1)
        ),
    }


# ----------------------------------------------------------------------
# Layer 3: the real runtime over TCP
# ----------------------------------------------------------------------


def bench_runtime_tcp(config: PerfConfig) -> dict:
    """Commands/sec through asyncio RuntimeNodes on localhost sockets
    (binary codec end to end).  3 nodes keep the quorum math real while
    staying cheap enough for CI.

    A single cold run of this bench used to swing more than 10x between
    invocations (cold sockets, allocator and code-cache warmup, and the
    first-touch ownership acquisitions all landed inside the measured
    window), which made the derived ``sim_runtime_gap`` datapoint
    untrustworthy.  It now follows the telemetry bench's discipline:
    each run warms ownership with an unmeasured pass and parks the GC
    around the measured region, one whole run is burned in unmeasured,
    and the reported rate is the **best of N repeats** -- timing noise
    on a shared box is one-sided, so the best repeat is the closest
    estimate of the uncontaminated cost (the spread is reported
    alongside as a dispersion check).
    """
    from repro.bench.harness import protocol_factory
    from repro.runtime.cluster import LocalCluster, run

    n_nodes = 3
    per_node = config.runtime_commands // n_nodes
    warm_per_node = min(64, per_node)

    async def one_run() -> float:
        cluster = LocalCluster(n_nodes, protocol_factory("m2paxos"))
        await cluster.start()
        try:
            for node in range(n_nodes):
                for i in range(warm_per_node):
                    cluster.propose(
                        node,
                        Command.make(node, 1_000_000 + i, [f"o{node}.{i % 8}"]),
                    )
            await cluster.wait_delivered(warm_per_node * n_nodes, timeout=60.0)
            already = warm_per_node * n_nodes
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            try:
                for node in range(n_nodes):
                    for i in range(per_node):
                        cluster.propose(
                            node, Command.make(node, i, [f"o{node}.{i % 8}"])
                        )
                await cluster.wait_delivered(
                    already + per_node * n_nodes, timeout=60.0
                )
                return time.perf_counter() - start
            finally:
                gc.enable()
        finally:
            await cluster.stop()

    run(one_run(), uvloop=config.uvloop)  # burn-in, unmeasured
    total = per_node * n_nodes
    runs = [run(one_run(), uvloop=config.uvloop) for _ in range(config.tcp_repeats)]
    rates = [total / elapsed for elapsed in runs]
    return {
        "nodes": n_nodes,
        "commands": total,
        "repeats": config.tcp_repeats,
        "commands_per_sec": max(rates),
        "median_commands_per_sec": statistics.median(rates),
        "rates": rates,
        "wall_seconds": min(runs),
    }


# The one pipelined M2 configuration every saturation arm runs: with
# ``batch_adaptive`` on, a depth-1 client sees immediate flushes (the
# serial protocol, batching adds no latency) while deep windows coalesce
# up to 32 commands per Accept round -- so the per-depth speedup
# isolates the *client window*, not a config change.
SATURATION_M2 = dict(max_batch=32, batch_wait=5e-3, batch_adaptive=True)


def bench_runtime_saturation(config: PerfConfig) -> dict:
    """Commands/sec through the real runtime as the client pipeline
    deepens -- the sim<->runtime gap bench.

    Each depth arm boots a fresh 3-node cluster, settles ownership with
    an unmeasured warmup pass (first-touch acquisitions and their
    deferred-retry churn would otherwise bill the measured window for a
    one-time transient), then drives ``saturation_commands`` through a
    :class:`~repro.runtime.driver.PipelineDriver` window.  All arms run
    the same pipelined protocol config (``SATURATION_M2``), so the
    depth-1 arm is the honest serial baseline for the speedup."""
    from repro.bench.harness import protocol_factory
    from repro.runtime.cluster import LocalCluster, run, uvloop_available
    from repro.runtime.driver import PipelineDriver

    n_nodes = 3
    n_commands = config.saturation_commands
    per_node = n_commands // n_nodes

    async def arm(depth: int) -> dict:
        factory = protocol_factory("m2paxos", **SATURATION_M2)
        cluster = LocalCluster(n_nodes, factory)
        await cluster.start()
        try:
            warm = [
                (node, Command.make(node, 1_000_000 + i, [f"o{node}.{i % 8}"]))
                for node in range(n_nodes)
                for i in range(min(64, per_node))
            ]
            await PipelineDriver(cluster, depth=min(depth, 8)).run(
                warm, timeout=60.0
            )
            proposals = [
                (node, Command.make(node, i, [f"o{node}.{i % 8}"]))
                for node in range(n_nodes)
                for i in range(per_node)
            ]
            driver = PipelineDriver(cluster, depth=depth)
            # Collector pauses skew short windows by whole milliseconds;
            # park the GC for the measured region only.
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            try:
                await driver.run(proposals, timeout=60.0)
                elapsed = time.perf_counter() - start
            finally:
                gc.enable()
            return {
                "commands_per_sec": per_node * n_nodes / elapsed,
                "wall_seconds": elapsed,
                "peak_inflight": driver.max_inflight,
            }
        finally:
            await cluster.stop()

    depths = {}
    for depth in config.saturation_depths:
        depths[str(depth)] = run(arm(depth), uvloop=config.uvloop)
    serial_key = str(min(int(k) for k in depths))
    best_key = max(depths, key=lambda k: depths[k]["commands_per_sec"])
    serial = depths[serial_key]["commands_per_sec"]
    best = depths[best_key]["commands_per_sec"]
    return {
        "nodes": n_nodes,
        "commands": per_node * n_nodes,
        "depths": depths,
        "serial_depth": int(serial_key),
        "serial_commands_per_sec": serial,
        "best_depth": int(best_key),
        "best_commands_per_sec": best,
        "pipelined_speedup": best / serial if serial else float("inf"),
        "uvloop": config.uvloop and uvloop_available(),
    }


def bench_telemetry_overhead(config: PerfConfig) -> dict:
    """The telemetry tax: pipelined saturation throughput with the full
    live-telemetry stack (collector + wall-clock sampler + Prometheus
    endpoints) attached vs the bare cluster.

    Must run on the real runtime: in the simulator throughput is
    virtual-time, so wall-clock instrumentation cost is invisible there
    by construction.  Timing noise on a shared box is one-sided --
    background load can only *add* time -- so each arm's best repeat is
    its estimate of the uncontaminated cost, and the tax is the **ratio
    of per-arm bests**.  Arms still alternate (with the order flipped
    every round) so both get shots at the machine's calm moments
    wherever they fall in the bench's window; the per-round paired
    ratios are reported alongside as a dispersion check.
    """
    from repro.bench.harness import protocol_factory
    from repro.runtime.cluster import LocalCluster, run
    from repro.runtime.driver import PipelineDriver

    n_nodes = 3
    depth = 16
    per_node = config.telemetry_commands // n_nodes

    async def arm(telemetry_on: bool) -> dict:
        factory = protocol_factory("m2paxos", **SATURATION_M2)
        cluster = LocalCluster(n_nodes, factory)
        await cluster.start()
        try:
            telemetry = None
            if telemetry_on:
                telemetry = await cluster.start_telemetry(
                    interval=config.telemetry_interval, serve=True
                )
            warm = [
                (node, Command.make(node, 1_000_000 + i, [f"o{node}.{i % 8}"]))
                for node in range(n_nodes)
                for i in range(min(64, per_node))
            ]
            await PipelineDriver(cluster, depth=8).run(warm, timeout=60.0)
            proposals = [
                (node, Command.make(node, i, [f"o{node}.{i % 8}"]))
                for node in range(n_nodes)
                for i in range(per_node)
            ]
            driver = PipelineDriver(cluster, depth=depth)
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            try:
                await driver.run(proposals, timeout=60.0)
                elapsed = time.perf_counter() - start
            finally:
                gc.enable()
            measurement = {
                "commands_per_sec": per_node * n_nodes / elapsed,
                "wall_seconds": elapsed,
            }
            if telemetry is not None:
                measurement["frames"] = len(telemetry.frames)
                measurement["endpoints"] = len(telemetry.endpoints)
            return measurement
        finally:
            await cluster.stop()

    # One unmeasured burn-in arm: process-level warm-up (allocator,
    # socket machinery, code caches) otherwise lands entirely on the
    # first measured round.
    run(arm(False), uvloop=config.uvloop)
    repeats: dict[bool, list[dict]] = {False: [], True: []}
    for round_index in range(config.telemetry_repeats):
        # Alternate which arm goes first so slow machine drift within
        # the bench (thermal throttling, background load ramping) can
        # not systematically tax one arm.
        order = (False, True) if round_index % 2 == 0 else (True, False)
        for telemetry_on in order:
            repeats[telemetry_on].append(
                run(arm(telemetry_on), uvloop=config.uvloop)
            )
    best = {
        on: max(runs, key=lambda r: r["commands_per_sec"])
        for on, runs in repeats.items()
    }
    round_ratios = [
        off["commands_per_sec"] / on["commands_per_sec"]
        if on["commands_per_sec"]
        else float("inf")
        for off, on in zip(repeats[False], repeats[True])
    ]
    return {
        "nodes": n_nodes,
        "commands": per_node * n_nodes,
        "depth": depth,
        "interval": config.telemetry_interval,
        "repeats": config.telemetry_repeats,
        "off": best[False],
        "on": best[True],
        "round_ratios": round_ratios,
        "round_ratio_median": statistics.median(round_ratios),
        "overhead_ratio": (
            best[False]["commands_per_sec"] / best[True]["commands_per_sec"]
            if best[True]["commands_per_sec"]
            else float("inf")
        ),
    }


# ----------------------------------------------------------------------
# Serving tier: leased owner-local reads
# ----------------------------------------------------------------------


def bench_serving(config: PerfConfig) -> dict:
    """Leased owner-local reads vs consensus-for-everything, on both
    substrates.

    Sim side: a read-ratio sweep (``serving_read_ratios``) where each
    ratio runs two arms under :data:`SERVING_COSTS` -- identical except
    that one enables ownership leases.  The workload is fully local
    (``locality=1.0``) so the arms isolate exactly what leases change:
    whether a read at its owner costs an Accept round or nothing.  The
    headline ``read_local_speedup`` is the leased/unleased throughput
    ratio at the 90%-read point, the serving mix the serving tier is
    built for.

    Runtime side: one 90%-read pair through real asyncio/TCP nodes,
    driven with the same alternating best-of-N discipline as
    :func:`bench_telemetry_overhead` (wall-clock noise is one-sided, so
    per-arm bests are the uncontaminated estimates and the ratio of
    bests is the datapoint).
    """
    from repro.bench.harness import PointSpec, protocol_factory, run_point
    from repro.runtime.cluster import LocalCluster, run
    from repro.runtime.driver import PipelineDriver
    from repro.workloads.synthetic import SyntheticConfig

    def sim_arm(read_fraction: float, leased: bool) -> dict:
        spec = PointSpec(
            protocol="m2paxos",
            n_nodes=config.n_nodes,
            synthetic=SyntheticConfig(
                locality=1.0,
                local_set_size=16,
                read_fraction=read_fraction,
            ),
            clients_per_node=64,
            think_time=0.002,
            max_inflight=96,
            duration=config.bench_duration,
            warmup=max(config.bench_warmup, 0.4),
            seed=config.seed,
            frame_sizes="codec",
            lease_duration=config.serving_lease if leased else 0.0,
        )
        result = run_point(spec, costs=SERVING_COSTS)
        stats = result.extra["protocol_stats"]
        summary = {
            "commands_per_sec": result.throughput,
            "delivered": result.delivered,
            "reads_served": result.reads_served,
            "read_local": sum(s.get("read_local", 0) for s in stats),
            "read_fallback": sum(s.get("read_fallback", 0) for s in stats),
        }
        if result.latency is not None:
            summary["p50_ms"] = result.latency.p50 * 1e3
        return summary

    ratios: dict[str, dict] = {}
    for read_fraction in config.serving_read_ratios:
        unleased = sim_arm(read_fraction, leased=False)
        leased = sim_arm(read_fraction, leased=True)
        ratios[f"{read_fraction:g}"] = {
            "unleased": unleased,
            "leased": leased,
            "speedup": (
                leased["commands_per_sec"] / unleased["commands_per_sec"]
                if unleased["commands_per_sec"]
                else float("inf")
            ),
        }
    # The headline: the 90%-read point when it is in the sweep, else the
    # most read-heavy ratio measured.
    headline_rf = (
        0.9
        if 0.9 in config.serving_read_ratios
        else max(config.serving_read_ratios)
    )
    read_local_speedup = ratios[f"{headline_rf:g}"]["speedup"]

    # -- runtime pair: 90% reads over asyncio/TCP --------------------
    n_nodes = 3
    per_node = config.serving_commands // n_nodes
    warm_per_node = min(64, per_node)

    async def runtime_arm(leased: bool) -> dict:
        factory = protocol_factory(
            "m2paxos",
            **SATURATION_M2,
            # Wall-clock lease: long enough that renewals (not expiries)
            # carry the measured window, short enough to stay honest.
            lease_duration=0.5 if leased else 0.0,
            lease_margin=0.005,
        )
        cluster = LocalCluster(n_nodes, factory)
        await cluster.start()
        try:
            # Unmeasured writes settle ownership (and, on the leased
            # arm, establish every object's lease) before measuring.
            warm = [
                (node, Command.make(node, 1_000_000 + i, [f"o{node}.{i % 8}"]))
                for node in range(n_nodes)
                for i in range(warm_per_node)
            ]
            await PipelineDriver(cluster, depth=8).run(warm, timeout=60.0)
            proposals = [
                (
                    node,
                    Command.make(
                        node,
                        i,
                        [f"o{node}.{i % 8}"],
                        is_read=(i % 10 != 0),
                    ),
                )
                for node in range(n_nodes)
                for i in range(per_node)
            ]
            driver = PipelineDriver(cluster, depth=16)
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            try:
                await driver.run(proposals, timeout=60.0)
                elapsed = time.perf_counter() - start
            finally:
                gc.enable()
            return {
                "commands_per_sec": per_node * n_nodes / elapsed,
                "wall_seconds": elapsed,
                "reads_local": sum(
                    len(node.read_log) for node in cluster.nodes
                ),
            }
        finally:
            await cluster.stop()

    run(runtime_arm(False), uvloop=config.uvloop)  # burn-in, unmeasured
    repeats: dict[bool, list[dict]] = {False: [], True: []}
    for round_index in range(config.serving_repeats):
        order = (False, True) if round_index % 2 == 0 else (True, False)
        for leased in order:
            repeats[leased].append(run(runtime_arm(leased), uvloop=config.uvloop))
    best = {
        leased: max(runs, key=lambda r: r["commands_per_sec"])
        for leased, runs in repeats.items()
    }
    runtime = {
        "nodes": n_nodes,
        "commands": per_node * n_nodes,
        "read_ratio": 0.9,
        "repeats": config.serving_repeats,
        "unleased": best[False],
        "leased": best[True],
        "speedup": (
            best[True]["commands_per_sec"] / best[False]["commands_per_sec"]
            if best[False]["commands_per_sec"]
            else float("inf")
        ),
    }

    return {
        "nodes": config.n_nodes,
        "lease_duration": config.serving_lease,
        "ratios": ratios,
        "headline_read_ratio": headline_rf,
        "read_local_speedup": read_local_speedup,
        "runtime": runtime,
    }


# ----------------------------------------------------------------------
# Layer 4: durable storage (fsync batching)
# ----------------------------------------------------------------------


def bench_storage_fsync(config: PerfConfig) -> dict:
    """Accept-path append throughput on real files: one fsync per record
    vs one group-commit fsync per ~32 records.

    This is the mechanism behind the ``fsync_wait`` knob: a synchronous
    store pays an fsync on every commit, the group-commit store batches
    an event window's records under a single fsync.  The speedup floor
    asserted by CI is deliberately far below what any real disk shows
    (an fsync costs orders of magnitude more than framing ~100 bytes).
    """
    import shutil
    import tempfile

    from repro.storage.base import StorageConfig
    from repro.storage.disk import DiskStorage

    n = config.storage_records
    group = 32
    payload = b"x" * 96  # roughly one framed Accept record
    tmpdir = tempfile.mkdtemp(prefix="perf-storage-")
    noop = lambda: None  # noqa: E731 - release hook; the bench has no outbox

    def run(batch: int) -> float:
        store = DiskStorage(
            StorageConfig(kind="disk", dir=tmpdir), os.path.join(tmpdir, f"b{batch}")
        )
        try:
            start = time.perf_counter()
            done = 0
            while done < n:
                take = min(batch, n - done)
                for _ in range(take):
                    store.append(1, payload)
                store.commit(noop)
                done += take
            return time.perf_counter() - start
        finally:
            store.close()

    try:
        per_record = run(1)
        batched = run(group)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return {
        "records": n,
        "group_size": group,
        "per_record_fsync_records_per_sec": n / per_record,
        "batched_fsync_records_per_sec": n / batched,
        "speedup": per_record / batched,
    }


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------

def bench_geo(config: PerfConfig) -> dict:
    """Geo/WAN migration bench (see :mod:`repro.bench.geo`)."""
    from repro.bench.geo import bench_geo as run

    return run(config)


BENCHES = {
    "sim": bench_sim_events,
    "codec": bench_codec,
    "m2_batching": bench_m2_batching,
    "runtime_tcp": bench_runtime_tcp,
    "runtime_saturation": bench_runtime_saturation,
    "telemetry_overhead": bench_telemetry_overhead,
    "serving": bench_serving,
    "storage_fsync": bench_storage_fsync,
    "geo": bench_geo,
}


def sim_runtime_gap(results: dict) -> dict | None:
    """The sim<->runtime gap as a first-class datapoint: how many times
    faster the simulator's batched saturation throughput is than the
    best the real asyncio/TCP substrate achieves.  ``None`` unless both
    sides were measured in this run."""
    batching = results.get("m2_batching")
    if batching is None:
        return None
    saturation = results.get("runtime_saturation")
    if saturation is not None:
        runtime_cps = saturation["best_commands_per_sec"]
    elif results.get("runtime_tcp") is not None:
        runtime_cps = results["runtime_tcp"]["commands_per_sec"]
    else:
        return None
    sim_cps = batching["batched"]["commands_per_sec"]
    return {
        "sim_commands_per_sec": sim_cps,
        "runtime_commands_per_sec": runtime_cps,
        "gap_ratio": sim_cps / runtime_cps if runtime_cps else float("inf"),
    }


def run_perf(config: PerfConfig, only: list[str] | None = None) -> dict:
    """Run the selected benches and return the BENCH datapoint dict."""
    names = only or list(BENCHES)
    unknown = [name for name in names if name not in BENCHES]
    if unknown:
        raise ValueError(f"unknown bench(es) {unknown}; choose from {list(BENCHES)}")
    results = {}
    for name in names:
        results[name] = BENCHES[name](config)
    gap = sim_runtime_gap(results)
    if gap is not None:
        results["sim_runtime_gap"] = gap
    return {
        "schema": BENCH_SCHEMA,
        "stamp": time.strftime("%Y%m%d-%H%M%S"),
        "smoke": config.smoke,
        "seed": config.seed,
        "config_hash": config_hash(config),
        "results": results,
    }


def config_hash(config: PerfConfig) -> str:
    """Stable digest of every scale knob -- two datapoints with the same
    hash, seed, and bench set measured the same thing."""
    blob = json.dumps(asdict(config), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def check_regressions(datapoint: dict) -> list[str]:
    """The assertions the CI perf smoke enforces.  Thresholds are set
    below the steady-state numbers (batching ~2x, codec ~2x) so only a
    real regression -- not scheduler jitter -- trips them."""
    problems = []
    results = datapoint["results"]
    batching = results.get("m2_batching")
    if batching is not None and batching["speedup"] <= 1.0:
        problems.append(
            f"batched m2paxos is not faster than unbatched "
            f"(speedup {batching['speedup']:.3f})"
        )
    codec = results.get("codec")
    if codec is not None and codec["speedup"] <= 1.0:
        problems.append(
            f"binary codec is not faster than JSON "
            f"(speedup {codec['speedup']:.3f})"
        )
    storage = results.get("storage_fsync")
    if storage is not None and storage["speedup"] < 3.0:
        problems.append(
            f"fsync-batched appends are not >= 3x per-record fsync "
            f"(speedup {storage['speedup']:.3f})"
        )
    saturation = results.get("runtime_saturation")
    if saturation is not None and saturation["pipelined_speedup"] < 1.5:
        problems.append(
            f"pipelined runtime is not >= 1.5x the serial depth-1 client "
            f"(speedup {saturation['pipelined_speedup']:.3f} at depth "
            f"{saturation['best_depth']})"
        )
    telemetry = results.get("telemetry_overhead")
    if telemetry is not None and telemetry["overhead_ratio"] > 1.05:
        problems.append(
            f"full telemetry costs more than 5% of saturation throughput "
            f"(overhead ratio {telemetry['overhead_ratio']:.3f})"
        )
    serving = results.get("serving")
    if serving is not None:
        # Steady-state sim speedup at 90% reads is ~4x; the smoke floor
        # is looser because its shorter windows resolve the ratio more
        # coarsely.
        floor = 2.0 if datapoint.get("smoke") else 3.0
        if serving["read_local_speedup"] < floor:
            problems.append(
                f"serving: leased local reads are not >= {floor}x the "
                f"lease-disabled arm at {serving['headline_read_ratio']:g} "
                f"read ratio (speedup {serving['read_local_speedup']:.3f})"
            )
        if serving["runtime"]["leased"]["reads_local"] <= 0:
            problems.append(
                "serving: runtime leased arm served no local reads"
            )
    geo = results.get("geo")
    if geo is not None:
        if geo["zone_affinity"]["migrations"] <= 0:
            problems.append(
                "geo: zone-affinity arm performed no ownership migrations"
            )
        # Floors far below the steady-state wins (~2x majority, ~10x+
        # flex): only a broken migration path trips them.
        if not geo["remote_p50_improvement"] >= 1.3:
            problems.append(
                f"geo: remote-region p50 did not improve >= 1.3x after "
                f"migration (got {geo['remote_p50_improvement']:.3f}x)"
            )
        if not geo["flex_remote_p50_improvement"] >= 1.3:
            problems.append(
                f"geo: flexible-quorum arm did not improve remote p50 >= "
                f"1.3x (got {geo['flex_remote_p50_improvement']:.3f}x)"
            )
        nearest = geo.get("flex_nearest_remote_p50_improvement")
        if nearest is not None:
            # Latency-aware targeting must never regress the broadcast
            # flexible-quorum arm (5% slack absorbs the run-to-run
            # wobble of the migration timing, nothing more).
            if not nearest >= geo["flex_remote_p50_improvement"] * 0.95:
                problems.append(
                    f"geo: nearest-quorum targeting regressed the "
                    f"flexible-quorum arm ({nearest:.3f}x vs "
                    f"{geo['flex_remote_p50_improvement']:.3f}x)"
                )
    return problems


def _datapoint_key(datapoint: dict) -> tuple:
    """Identity of one measurement: config shape, seed, and bench set.
    Re-running the same configuration replaces the old entry instead of
    accumulating duplicates."""
    return (
        datapoint.get("config_hash"),
        datapoint.get("seed"),
        tuple(sorted(datapoint.get("results", {}))),
    )


def write_datapoint(datapoint: dict, path: str | None = None) -> str:
    """Write ``datapoint`` to ``path`` (default ``BENCH_<stamp>.json``).

    A fresh path gets the bare datapoint dict.  Writing to an existing
    file (the accumulated ``BENCH_full.json`` pattern) merges: the file
    becomes a list of datapoints, deduplicated on (config hash, seed,
    bench set) so repeated runs of one configuration keep only the
    latest measurement instead of appending duplicates.
    """
    if path is None:
        path = f"BENCH_{datapoint['stamp']}.json"
    payload: dict | list = datapoint
    if os.path.exists(path):
        with open(path) as fh:
            existing = json.load(fh)
        history = existing if isinstance(existing, list) else [existing]
        key = _datapoint_key(datapoint)
        history = [d for d in history if _datapoint_key(d) != key]
        history.append(datapoint)
        payload = history
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
