"""Per-figure experiment sweeps (Figures 1-8 of the paper).

Each ``figN()`` returns ``(rows, columns)`` where rows are dicts ready
for :func:`repro.bench.report.print_table`.  ``full=True`` runs the
paper's deployment sizes (up to 49 nodes -- several minutes per figure
in pure Python); the default "fast" mode uses a reduced node set with
identical mechanics, which is what the pytest benchmarks run.

Usage::

    python -m repro.bench.figures fig1          # fast mode
    python -m repro.bench.figures fig1 --full   # paper-scale sweep
    python -m repro.bench.figures all --full
"""

from __future__ import annotations

import sys
import time
from dataclasses import replace

from repro.bench.harness import PointSpec, run_point, saturated_spec
from repro.bench.report import print_table
from repro.workloads.synthetic import SyntheticConfig
from repro.workloads.tpcc import TpccConfig

PROTOCOLS = ("m2paxos", "multipaxos", "genpaxos", "epaxos")

NODES_FULL = (3, 5, 7, 11, 25, 49)
NODES_FAST = (3, 5, 11)


def _short_windows(spec: PointSpec) -> PointSpec:
    """Trim measurement windows for very large deployments, where each
    simulated second costs minutes of wall time."""
    if spec.n_nodes >= 25:
        return replace(spec, warmup=0.4, duration=0.2)
    return spec


def _max_throughput(protocol: str, n_nodes: int, **spec_kwargs) -> dict:
    spec = saturated_spec(PointSpec(protocol=protocol, n_nodes=n_nodes, **spec_kwargs))
    spec = _short_windows(spec)
    result = run_point(spec)
    return {
        "protocol": protocol,
        "nodes": n_nodes,
        "throughput": result.throughput,
        "p50_ms": result.latency.p50 * 1e3 if result.latency else float("nan"),
        "msgs": result.messages_sent,
    }


# ----------------------------------------------------------------------
# Figure 1: maximum attainable throughput vs node count, 100% locality.
# ----------------------------------------------------------------------


def fig1(full: bool = False):
    nodes = NODES_FULL if full else NODES_FAST
    rows = []
    for n in nodes:
        for protocol in PROTOCOLS:
            rows.append(_max_throughput(protocol, n))
    return rows, ["protocol", "nodes", "throughput"]


# ----------------------------------------------------------------------
# Figure 2: median latency without batching, light load.
# ----------------------------------------------------------------------


def fig2(full: bool = False):
    nodes = NODES_FULL if full else NODES_FAST
    rows = []
    for n in nodes:
        for protocol in PROTOCOLS:
            spec = PointSpec(
                protocol=protocol,
                n_nodes=n,
                batching=False,
                clients_per_node=4,
                think_time=0.01,
                max_inflight=8,
                warmup=0.3,
                duration=0.5,
            )
            result = run_point(spec)
            rows.append(
                {
                    "protocol": protocol,
                    "nodes": n,
                    "p50_ms": result.latency.p50 * 1e3,
                    "p95_ms": result.latency.p95 * 1e3,
                }
            )
    return rows, ["protocol", "nodes", "p50_ms", "p95_ms"]


# ----------------------------------------------------------------------
# Figure 3: scalability at fixed per-node load (64 clients, 5 ms think).
# ----------------------------------------------------------------------


def fig3(full: bool = False):
    nodes = NODES_FULL if full else NODES_FAST
    rows = []
    for n in nodes:
        for protocol in PROTOCOLS:
            spec = PointSpec(
                protocol=protocol,
                n_nodes=n,
                clients_per_node=64,
                think_time=0.005,
                max_inflight=96,
                warmup=0.5,
                duration=0.3,
            )
            spec = _short_windows(spec)
            result = run_point(spec)
            rows.append(
                {
                    "protocol": protocol,
                    "nodes": n,
                    "throughput": result.throughput,
                    "offered": 64 * n / 0.005 / 1000,  # k cmds/s, reference
                }
            )
    return rows, ["protocol", "nodes", "throughput"]


# ----------------------------------------------------------------------
# Figure 4: 11 nodes, CPU cores 4 -> 32.
# ----------------------------------------------------------------------


def fig4(full: bool = False):
    cores_sweep = (4, 8, 16, 32)
    # The core-scaling contrast needs the paper's 11-node deployment even
    # in fast mode: at smaller sizes every protocol is propose-bound and
    # gains from cores.
    n = 11
    rows = []
    for cores in cores_sweep:
        for protocol in PROTOCOLS:
            row = _max_throughput(protocol, n, cores=cores)
            row["cores"] = cores
            rows.append(row)
    return rows, ["protocol", "cores", "throughput"]


# ----------------------------------------------------------------------
# Figure 5: latency vs throughput, 0% and 100% locality.
# ----------------------------------------------------------------------


def fig5(full: bool = False):
    nodes = (5, 11, 49) if full else (5, 11)
    think_sweep = (0.02, 0.008, 0.004, 0.002, 0.001)
    rows = []
    for n in nodes:
        for protocol in ("m2paxos", "epaxos"):
            for locality in (1.0, 0.0):
                for think in think_sweep:
                    spec = PointSpec(
                        protocol=protocol,
                        n_nodes=n,
                        synthetic=SyntheticConfig(locality=locality),
                        clients_per_node=32,
                        think_time=think,
                        max_inflight=64,
                        warmup=0.4,
                        duration=0.25,
                    )
                    spec = _short_windows(spec)
                    result = run_point(spec)
                    rows.append(
                        {
                            "protocol": protocol,
                            "nodes": n,
                            "locality": locality,
                            "throughput": result.throughput,
                            "p50_ms": result.latency.p50 * 1e3
                            if result.latency
                            else float("nan"),
                        }
                    )
    return rows, ["protocol", "nodes", "locality", "throughput", "p50_ms"]


# ----------------------------------------------------------------------
# Figure 6: throughput vs fraction of non-local (remote) commands.
# ----------------------------------------------------------------------


def fig6(full: bool = False):
    nodes = (3, 11) if full else (3, 5)
    remote_sweep = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5) if full else (0.0, 0.1, 0.3)
    rows = []
    for n in nodes:
        for protocol in PROTOCOLS:
            for remote in remote_sweep:
                row = _max_throughput(
                    protocol,
                    n,
                    synthetic=SyntheticConfig(locality=1.0 - remote),
                )
                row["remote"] = remote
                rows.append(row)
    return rows, ["protocol", "nodes", "remote", "throughput"]


# ----------------------------------------------------------------------
# Figure 7: throughput vs fraction of complex commands (49 nodes).
# ----------------------------------------------------------------------


def fig7(full: bool = False):
    n = 49 if full else 11
    fractions = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0) if full else (0.0, 0.25, 0.75)
    local_sets = (10, 100, 1000)
    rows = []
    for local_set in local_sets:
        for fraction in fractions:
            row = _max_throughput(
                "m2paxos",
                n,
                synthetic=SyntheticConfig(
                    local_set_size=local_set, complex_fraction=fraction
                ),
            )
            row.update({"local_set": local_set, "complex": fraction})
            rows.append(row)
    # Baselines are insensitive to the local-set size; sweep them once.
    for protocol in ("multipaxos", "genpaxos", "epaxos"):
        for fraction in (fractions[0], fractions[-1]):
            row = _max_throughput(
                protocol,
                n,
                synthetic=SyntheticConfig(
                    local_set_size=100, complex_fraction=fraction
                ),
            )
            row.update({"local_set": 100, "complex": fraction})
            rows.append(row)
    return rows, ["protocol", "local_set", "complex", "throughput"]


# ----------------------------------------------------------------------
# Figure 8: TPC-C, up to 11 nodes, 0% / 15% remote warehouses.
# ----------------------------------------------------------------------


def fig8(full: bool = False):
    nodes = (3, 5, 7, 9, 11) if full else (3, 5)
    rows = []
    for remote in (0.0, 0.15):
        for n in nodes:
            for protocol in PROTOCOLS:
                spec = saturated_spec(
                    PointSpec(
                        protocol=protocol,
                        n_nodes=n,
                        workload="tpcc",
                        tpcc=TpccConfig(remote_warehouse_prob=remote),
                    )
                )
                result = run_point(spec)
                rows.append(
                    {
                        "protocol": protocol,
                        "nodes": n,
                        "remote_wh": remote,
                        "throughput": result.throughput,
                    }
                )
    return rows, ["protocol", "nodes", "remote_wh", "throughput"]


FIGURES = {
    "fig1": (fig1, "Fig. 1 -- max throughput vs nodes (100% locality)"),
    "fig2": (fig2, "Fig. 2 -- median latency, no batching"),
    "fig3": (fig3, "Fig. 3 -- scalability, 64 clients/node, 5 ms think"),
    "fig4": (fig4, "Fig. 4 -- throughput vs CPU cores"),
    "fig5": (fig5, "Fig. 5 -- latency vs throughput, 0%/100% locality"),
    "fig6": (fig6, "Fig. 6 -- throughput vs % non-local commands"),
    "fig7": (fig7, "Fig. 7 -- complex commands (local-set sweep)"),
    "fig8": (fig8, "Fig. 8 -- TPC-C, 0%/15% remote warehouses"),
}


def main(argv=None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    full = "--full" in argv
    if full:
        argv.remove("--full")
    targets = argv or ["all"]
    names = list(FIGURES) if targets == ["all"] else targets
    for name in names:
        fn, title = FIGURES[name]
        start = time.time()
        rows, columns = fn(full=full)
        print_table(f"{title} [{time.time() - start:.0f}s]", rows, columns)


if __name__ == "__main__":  # pragma: no cover
    main()
