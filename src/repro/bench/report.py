"""Aligned-table output for benchmark sweeps."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str]
) -> str:
    """Render rows as a monospace table with right-aligned numbers."""
    rendered: list[list[str]] = [[str(col) for col in columns]]
    for row in rows:
        line = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                if value != value:  # NaN (e.g. p99 of a single-sample path)
                    line.append("-")
                else:
                    line.append(f"{value:,.1f}" if value >= 10 else f"{value:.3f}")
            elif isinstance(value, int):
                line.append(f"{value:,}")
            else:
                line.append(str(value))
        rendered.append(line)
    widths = [
        max(len(line[i]) for line in rendered) for i in range(len(columns))
    ]
    out = []
    for idx, line in enumerate(rendered):
        out.append(
            "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        )
        if idx == 0:
            out.append("  ".join("-" * width for width in widths))
    return "\n".join(out)


def print_table(
    title: str, rows: Sequence[Mapping[str, object]], columns: Sequence[str]
) -> None:
    print(f"\n== {title} ==")
    print(format_table(rows, columns))


def series_by(
    rows: Iterable[Mapping[str, object]], key: str, x: str, y: str
) -> dict[object, list[tuple[object, object]]]:
    """Group rows into named (x, y) series, for assertions on shapes."""
    series: dict[object, list[tuple[object, object]]] = {}
    for row in rows:
        series.setdefault(row[key], []).append((row[x], row[y]))
    for points in series.values():
        points.sort(key=lambda p: p[0])
    return series
