"""Benchmark harness regenerating every figure of the paper's evaluation.

- :mod:`repro.bench.harness` -- one simulated datapoint: protocol x
  deployment x workload x offered load -> throughput / latency.
- :mod:`repro.bench.figures` -- the per-figure sweeps (Figures 1-8),
  runnable as ``python -m repro.bench.figures <fig1|fig2|...|all>``.
- :mod:`repro.bench.report` -- aligned-table printing.
"""

from repro.bench.harness import PointSpec, run_point, protocol_factory

__all__ = ["PointSpec", "run_point", "protocol_factory"]
