"""Durable storage: segmented log + snapshots behind the Storage API.

The substrate-independent contract (:class:`Storage`,
:class:`NullStorage`, :class:`StorageFull`) lives in
:mod:`repro.consensus.base` next to :class:`Env`; this package holds the
real implementations and the recovery driver.  See DESIGN.md,
"Durability".
"""

from repro.consensus.base import (
    NULL_STORAGE,
    NullStorage,
    Recovered,
    Storage,
    StorageFull,
)
from repro.storage.base import LogStorage, StorageConfig
from repro.storage.disk import DiskStorage
from repro.storage.mem import MemStorage
from repro.storage.record import (
    frame_record,
    frame_snapshot,
    parse_snapshot,
    scan_records,
)
from repro.storage.recovery import recover_protocol

__all__ = [
    "NULL_STORAGE",
    "NullStorage",
    "Recovered",
    "Storage",
    "StorageFull",
    "LogStorage",
    "StorageConfig",
    "DiskStorage",
    "MemStorage",
    "frame_record",
    "frame_snapshot",
    "parse_snapshot",
    "scan_records",
    "recover_protocol",
]
