"""Storage configuration and the shared group-commit log engine.

:class:`LogStorage` implements everything substrate-independent about a
segmented append-only log -- record sequencing, capacity modelling,
fsync batching (group-commit), snapshot scheduling, and the recovery
scan -- over four primitives a backend provides: persist framed records,
write a snapshot blob, truncate the covered log, and load whatever is
there.  :class:`~repro.storage.mem.MemStorage` keeps bytearray segments
(deterministic, for the sim); :class:`~repro.storage.disk.DiskStorage`
keeps real files and fsyncs them.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional

from repro.consensus.base import Env, Recovered, Storage, StorageFull, TimerHandle
from repro.storage.record import frame_record, frame_snapshot, parse_snapshot


@dataclass(frozen=True)
class StorageConfig:
    """Shape of a node's durable store.

    ``kind``: ``"none"`` (no durability, the default), ``"mem"``
    (deterministic in-memory segments with disk-like crash semantics),
    or ``"disk"`` (real files + fsync).
    ``dir``: root directory for ``"disk"``; each node gets a
    ``node-<id>/`` subdirectory.  ``None`` means the cluster builder
    must supply one (the chaos runner and CLI create a tmpdir).
    ``fsync_wait``: group-commit window in seconds, mirroring the
    proposer's ``batch_wait``.  ``0`` fsyncs synchronously per event;
    ``> 0`` defers each event's release (sends *and* deliveries) until
    one batched fsync covers it.
    ``segment_bytes``: roll the active segment after this many bytes.
    ``snapshot_every``: take a state snapshot (and truncate the covered
    log) every N flushed records; ``0`` disables snapshots.
    ``capacity_bytes`` / ``capacity_nodes``: modelled log capacity --
    appends beyond it raise :class:`StorageFull` and fail-stop the node.
    ``capacity_nodes`` restricts the cap to those node ids (``None`` =
    all nodes), so a chaos scenario can fill one node's disk while the
    rest of the cluster keeps quorum.  Snapshot space is not budgeted;
    the cap models the log only.
    """

    kind: str = "none"
    dir: Optional[str] = None
    fsync_wait: float = 0.0
    segment_bytes: int = 1 << 20
    snapshot_every: int = 0
    capacity_bytes: Optional[int] = None
    capacity_nodes: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("none", "mem", "disk"):
            raise ValueError(
                f"storage kind must be 'none', 'mem', or 'disk', got {self.kind!r}"
            )
        if self.fsync_wait < 0:
            raise ValueError("fsync_wait must be >= 0")
        if self.segment_bytes < 64:
            raise ValueError("segment_bytes must be >= 64")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if self.capacity_bytes is not None and self.capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")

    def build(self, node_id: int) -> Optional[Storage]:
        """A fresh :class:`Storage` for ``node_id`` (``None`` for
        ``kind="none"``: the hosting node keeps the shared
        :data:`~repro.consensus.base.NULL_STORAGE`)."""
        if self.kind == "none":
            return None
        capacity = self.capacity_bytes
        if capacity is not None and self.capacity_nodes is not None:
            if node_id not in self.capacity_nodes:
                capacity = None
        if self.kind == "mem":
            from repro.storage.mem import MemStorage

            return MemStorage(self, capacity=capacity)
        from repro.storage.disk import DiskStorage

        if self.dir is None:
            raise ValueError("kind='disk' requires a directory (StorageConfig.dir)")
        import os

        return DiskStorage(
            self, os.path.join(self.dir, f"node-{node_id}"), capacity=capacity
        )


class LogStorage(Storage):
    """Segmented append-only log with group-commit and snapshots.

    Backends implement :meth:`_persist`, :meth:`_write_snapshot`,
    :meth:`_truncate_log`, :meth:`_load`, and :meth:`_wipe_store`.
    """

    durable = True

    def __init__(self, config: StorageConfig, capacity: Optional[int] = None) -> None:
        self.config = config
        self.capacity = capacity
        self._env: Optional[Env] = None
        self._snapshot_source: Optional[Callable[[], Optional[bytes]]] = None
        self._pending: list[bytes] = []
        self._pending_bytes = 0
        self._releases: list[Callable[[], None]] = []
        self._timer: Optional[TimerHandle] = None
        self._seq = 0  # last assigned record sequence number
        self._log_bytes = 0  # persisted log bytes since last truncation
        self._records_since_snapshot = 0
        # Running totals for the obs layer / benches.
        self.fsyncs = 0
        self.records_flushed = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(
        self, env: Env, snapshot_source: Callable[[], Optional[bytes]]
    ) -> None:
        self._env = env
        self._snapshot_source = snapshot_source

    @property
    def defers(self) -> bool:
        return self.config.fsync_wait > 0

    @property
    def dirty(self) -> bool:
        return bool(self._pending)

    # ------------------------------------------------------------------
    # Append / commit
    # ------------------------------------------------------------------

    def append(self, rtype: int, payload: bytes) -> None:
        frame = frame_record(self._seq + 1, rtype, payload)
        if self.capacity is not None and (
            self._log_bytes + self._pending_bytes + len(frame) > self.capacity
        ):
            raise StorageFull(
                f"log full: {self._log_bytes + self._pending_bytes} of "
                f"{self.capacity} bytes used, record needs {len(frame)}"
            )
        self._seq += 1
        self._pending.append(frame)
        self._pending_bytes += len(frame)

    def commit(self, release: Callable[[], None]) -> None:
        if not self._pending and self._timer is None:
            # Nothing to persist and no earlier event queued behind a
            # group-commit window: release immediately, preserving the
            # exact NullStorage event ordering.
            release()
            return
        if not self.defers:
            self._flush_pending()
            release()
            self._maybe_snapshot()
            return
        self._releases.append(release)
        if self._timer is None:
            if self._env is None:
                # No scheduler wired (bare storage tests): degrade to a
                # synchronous commit.
                self._fire()
            else:
                self._timer = self._env.set_timer(
                    self.config.fsync_wait, self._fire
                )

    def _fire(self) -> None:
        """Group-commit window closed: one flush+fsync covers every
        queued event, then their releases run in commit order."""
        self._timer = None
        releases, self._releases = self._releases, []
        self._flush_pending()
        for release in releases:
            release()
        self._maybe_snapshot()

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        frames, self._pending = self._pending, []
        flushed_bytes, self._pending_bytes = self._pending_bytes, 0
        started = perf_counter()
        self._persist(frames)
        persist_seconds = perf_counter() - started
        self._log_bytes += flushed_bytes
        self._records_since_snapshot += len(frames)
        self.fsyncs += 1
        self.records_flushed += len(frames)
        if self._env is not None:
            # ``seconds`` is measured wall time of the persist call (real
            # fsync latency on DiskStorage, ~0 on MemStorage); consumers
            # treat it as data, so it never perturbs sim determinism.
            self._env.observe(
                "fsync",
                records=len(frames),
                bytes=flushed_bytes,
                wait=self.config.fsync_wait,
                seconds=persist_seconds,
            )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def _maybe_snapshot(self) -> None:
        if (
            self.config.snapshot_every <= 0
            or self._snapshot_source is None
            or self._records_since_snapshot < self.config.snapshot_every
        ):
            return
        payload = self._snapshot_source()
        if payload is None:
            return
        self.snapshot(payload)

    def snapshot(self, payload: bytes) -> None:
        """Persist ``payload`` covering all flushed records, truncate
        the covered log.  Only called at commit boundaries (never mid-
        handler), so the payload is a consistent cut."""
        framed = frame_snapshot(self._seq, payload)
        self._write_snapshot(framed)
        self._truncate_log()
        self._log_bytes = 0
        self._records_since_snapshot = 0
        if self._env is not None:
            self._env.observe(
                "snapshot", bytes=len(framed), covers_seq=self._seq
            )

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def discard_pending(self) -> None:
        # Un-fsynced records die with the process; their sequence
        # numbers are reused by the next incarnation.
        self._seq -= len(self._pending)
        self._pending.clear()
        self._pending_bytes = 0
        self._releases.clear()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def recover(self) -> Recovered:
        snap_framed, scanned, log_bytes = self._load()
        covers_seq = 0
        payload: Optional[bytes] = None
        if snap_framed is not None:
            parsed = parse_snapshot(snap_framed)
            if parsed is not None:
                covers_seq, payload = parsed
        # A crash between snapshot write and log truncation leaves
        # covered records in the log; ``seq`` filters them out.
        tail = [(rtype, rec) for seq, rtype, rec in scanned if seq > covers_seq]
        self._seq = max([covers_seq] + [seq for seq, _, _ in scanned])
        self._records_since_snapshot = len(tail)
        self._log_bytes = log_bytes
        return Recovered(payload, tail)

    def wipe(self) -> None:
        self.discard_pending()
        self._seq = 0
        self._log_bytes = 0
        self._records_since_snapshot = 0
        self._wipe_store()

    # ------------------------------------------------------------------
    # Backend primitives
    # ------------------------------------------------------------------

    def _persist(self, frames: list[bytes]) -> None:
        """Durably write framed records in order (one fsync)."""
        raise NotImplementedError

    def _write_snapshot(self, framed: bytes) -> None:
        """Durably write one framed snapshot blob."""
        raise NotImplementedError

    def _truncate_log(self) -> None:
        """Drop every persisted log segment (snapshot covers them)."""
        raise NotImplementedError

    def _load(self) -> tuple[Optional[bytes], list[tuple[int, int, bytes]], int]:
        """``(newest snapshot blob or None, scanned records, clean log
        bytes)``; backends truncate torn tails here."""
        raise NotImplementedError

    def _wipe_store(self) -> None:
        """Erase all persisted state."""
        raise NotImplementedError
