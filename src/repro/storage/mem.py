"""Deterministic in-memory storage with disk-like crash semantics.

The "disk" is a list of bytearray segments plus one snapshot blob, all
living on the storage object -- which the hosting node keeps across
crash/restart, exactly like a real disk survives a process death.
Un-fsynced records are dropped by :meth:`LogStorage.discard_pending`
at crash time, so the recovery scan sees precisely what a
:class:`~repro.storage.disk.DiskStorage` would: the fsynced prefix.

Nothing here draws randomness or reads clocks, so binding a MemStorage
(with ``fsync_wait=0``) to a simulated node leaves decision logs
byte-identical to NullStorage runs -- the property the chaos harness's
double-run fingerprint check rides on.
"""

from __future__ import annotations

from typing import Optional

from repro.storage.base import LogStorage, StorageConfig
from repro.storage.record import scan_records


class MemStorage(LogStorage):
    """Segmented log in process memory; see module docstring."""

    def __init__(self, config: StorageConfig, capacity: Optional[int] = None) -> None:
        super().__init__(config, capacity)
        self._segments: list[bytearray] = [bytearray()]
        self._snap: Optional[bytes] = None

    def _persist(self, frames: list[bytes]) -> None:
        segment = self._segments[-1]
        for frame in frames:
            segment += frame
            if len(segment) >= self.config.segment_bytes:
                segment = bytearray()
                self._segments.append(segment)

    def _write_snapshot(self, framed: bytes) -> None:
        self._snap = bytes(framed)

    def _truncate_log(self) -> None:
        self._segments = [bytearray()]

    def _load(self):
        records: list[tuple[int, int, bytes]] = []
        log_bytes = 0
        for index, segment in enumerate(self._segments):
            scanned, clean_end = scan_records(bytes(segment))
            records.extend(scanned)
            log_bytes += clean_end
            if clean_end != len(segment):
                # Torn tail (tests corrupt segments directly): truncate
                # it and drop any later segments, as disk recovery does.
                del segment[clean_end:]
                del self._segments[index + 1 :]
                break
        return self._snap, records, log_bytes

    def _wipe_store(self) -> None:
        self._segments = [bytearray()]
        self._snap = None
