"""Recovery driver: rebuild a protocol from snapshot + log tail.

The substrate-side restart paths (``SimNode.restart_from_storage``,
``RuntimeNode.restart(recover=True)``) both funnel through here, so
crash-recovery is one code path under the deterministic simulator and
the asyncio runtime -- the property the chaos harness's byte-identical
prefix check verifies.
"""

from __future__ import annotations

from repro.consensus.base import Protocol, Storage


def recover_protocol(protocol: Protocol, storage: Storage) -> dict:
    """Replay ``storage``'s snapshot + tail into a fresh, bound,
    not-yet-started ``protocol``.  Returns stats for the recovery span.

    Must run inside a protocol event (the hosting node wraps it in
    ``run_event``) so re-deliveries and any sends go through the normal
    outbox/commit discipline.
    """
    recovered = storage.recover()
    stats = {
        "snapshot_bytes": len(recovered.snapshot) if recovered.snapshot else 0,
        "records": len(recovered.records),
    }
    if recovered.snapshot is not None:
        protocol.restore_snapshot(recovered.snapshot)
    for rtype, payload in recovered.records:
        protocol.apply_log_record(rtype, payload)
    return stats
