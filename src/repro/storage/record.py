"""CRC-framed log records and snapshot blobs.

One record on disk (or in a :class:`~repro.storage.mem.MemStorage`
segment) is::

    0xD7 | seq uvarint | rtype uvarint | len uvarint | payload | crc32 (4B BE)

``seq`` increases monotonically across the whole log (never reset by
segment rolls), which is what lets recovery skip records a snapshot
already covers even when a crash lands between writing the snapshot and
truncating the log.  The CRC covers everything before it, so a torn or
bit-flipped record is detected and the scan stops there -- the clean
prefix is the log.

A snapshot blob uses the same shape with its own magic::

    0xD8 | covers_seq uvarint | len uvarint | payload | crc32 (4B BE)

Varints reuse the binary wire codec's encoding so durable bytes and
wire bytes share one vocabulary.
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional

from repro.runtime.codec import _read_uvarint, _write_uvarint

RECORD_MAGIC = 0xD7
SNAPSHOT_MAGIC = 0xD8

_CRC = struct.Struct(">I")


def frame_record(seq: int, rtype: int, payload: bytes) -> bytes:
    """One framed log record, CRC over header + payload."""
    out = bytearray()
    out.append(RECORD_MAGIC)
    _write_uvarint(out, seq)
    _write_uvarint(out, rtype)
    _write_uvarint(out, len(payload))
    out += payload
    out += _CRC.pack(zlib.crc32(bytes(out)))
    return bytes(out)


def scan_records(data: bytes) -> tuple[list[tuple[int, int, bytes]], int]:
    """Scan a segment's bytes into ``(records, clean_end)``.

    ``records`` is ``[(seq, rtype, payload), ...]`` for every record
    whose frame is intact; ``clean_end`` is the offset just past the
    last good record.  A bad magic byte, truncated frame, or CRC
    mismatch stops the scan -- that is the torn-write boundary recovery
    truncates to.
    """
    buf = memoryview(data)
    total = len(data)
    records: list[tuple[int, int, bytes]] = []
    pos = 0
    while pos < total:
        start = pos
        try:
            if buf[pos] != RECORD_MAGIC:
                break
            seq, p = _read_uvarint(buf, pos + 1)
            rtype, p = _read_uvarint(buf, p)
            size, p = _read_uvarint(buf, p)
            end = p + size + _CRC.size
            if end > total:
                break
            (crc,) = _CRC.unpack_from(buf, p + size)
            if crc != zlib.crc32(bytes(buf[start : p + size])):
                break
        except IndexError:
            # Varint ran off the end of the buffer: torn header.
            break
        records.append((seq, rtype, bytes(buf[p : p + size])))
        pos = end
    return records, pos


def frame_snapshot(covers_seq: int, payload: bytes) -> bytes:
    """One framed snapshot blob covering records up to ``covers_seq``."""
    out = bytearray()
    out.append(SNAPSHOT_MAGIC)
    _write_uvarint(out, covers_seq)
    _write_uvarint(out, len(payload))
    out += payload
    out += _CRC.pack(zlib.crc32(bytes(out)))
    return bytes(out)


def parse_snapshot(data: bytes) -> Optional[tuple[int, bytes]]:
    """``(covers_seq, payload)`` if ``data`` is a valid snapshot blob,
    else ``None`` (recovery then falls back to an older snapshot or a
    full log scan)."""
    if not data or data[0] != SNAPSHOT_MAGIC:
        return None
    buf = memoryview(data)
    try:
        covers_seq, p = _read_uvarint(buf, 1)
        size, p = _read_uvarint(buf, p)
        end = p + size + _CRC.size
        if end > len(data):
            return None
        (crc,) = _CRC.unpack_from(buf, p + size)
        if crc != zlib.crc32(bytes(buf[:p + size])):
            return None
    except IndexError:
        return None
    return covers_seq, bytes(buf[p : p + size])
