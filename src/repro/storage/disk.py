"""Real-file storage: segment files + fsync under one node directory.

Layout of a node's directory::

    seg-00000000.log    append-only record segments, rolled at
    seg-00000001.log    ``segment_bytes``; names order them
    snap-<seq>.bin      snapshot blobs; the highest valid one wins

Writes follow the usual crash-safe discipline: records are appended and
fsynced in one batch per commit (or per group-commit window); snapshots
go through a temp file + ``os.replace`` + directory fsync, and only
after the snapshot is durable are the covered segments deleted.  Any
OS-level write failure (``ENOSPC`` included) surfaces as
:class:`~repro.consensus.base.StorageFull`, which the hosting node
treats as fail-stop.

Under the simulator this backend is still deterministic: file I/O never
touches virtual time and draws no randomness.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.consensus.base import StorageFull
from repro.storage.base import LogStorage, StorageConfig
from repro.storage.record import scan_records

_SEG_PREFIX = "seg-"
_SEG_SUFFIX = ".log"
_SNAP_PREFIX = "snap-"
_SNAP_SUFFIX = ".bin"


class DiskStorage(LogStorage):
    """Segmented log + snapshots on real files; see module docstring."""

    def __init__(
        self, config: StorageConfig, path: str, capacity: Optional[int] = None
    ) -> None:
        super().__init__(config, capacity)
        self.path = path
        os.makedirs(path, exist_ok=True)
        self._fh = None
        self._seg_index = 0
        self._seg_size = 0
        self._current_snap: Optional[str] = None

    # ------------------------------------------------------------------
    # Segment file plumbing
    # ------------------------------------------------------------------

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.path, f"{_SEG_PREFIX}{index:08d}{_SEG_SUFFIX}")

    def _open_segment(self, index: int) -> None:
        self._close_fh()
        self._fh = open(self._segment_path(index), "ab")
        self._seg_index = index
        self._seg_size = self._fh.tell()

    def _close_fh(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def _listed(self, prefix: str, suffix: str) -> list[str]:
        return sorted(
            name
            for name in os.listdir(self.path)
            if name.startswith(prefix) and name.endswith(suffix)
        )

    def _fsync_dir(self) -> None:
        fd = os.open(self.path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Backend primitives
    # ------------------------------------------------------------------

    def _persist(self, frames: list[bytes]) -> None:
        try:
            if self._fh is None:
                existing = self._listed(_SEG_PREFIX, _SEG_SUFFIX)
                index = (
                    int(existing[-1][len(_SEG_PREFIX) : -len(_SEG_SUFFIX)])
                    if existing
                    else 0
                )
                self._open_segment(index)
            for frame in frames:
                self._fh.write(frame)
                self._seg_size += len(frame)
                if self._seg_size >= self.config.segment_bytes:
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
                    self._open_segment(self._seg_index + 1)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            raise StorageFull(f"log write failed: {exc}") from exc

    def _write_snapshot(self, framed: bytes) -> None:
        try:
            tmp = os.path.join(self.path, "snap.tmp")
            with open(tmp, "wb") as fh:
                fh.write(framed)
                fh.flush()
                os.fsync(fh.fileno())
            final = os.path.join(
                self.path, f"{_SNAP_PREFIX}{self._seq:016d}{_SNAP_SUFFIX}"
            )
            os.replace(tmp, final)
            self._fsync_dir()
            self._current_snap = final
        except OSError as exc:
            raise StorageFull(f"snapshot write failed: {exc}") from exc

    def _truncate_log(self) -> None:
        # Only reached after the covering snapshot is durable.
        self._close_fh()
        for name in self._listed(_SEG_PREFIX, _SEG_SUFFIX):
            os.unlink(os.path.join(self.path, name))
        for name in self._listed(_SNAP_PREFIX, _SNAP_SUFFIX):
            full = os.path.join(self.path, name)
            if full != self._current_snap:
                os.unlink(full)
        self._fsync_dir()
        self._open_segment(0)

    def _load(self):
        self._close_fh()
        snap_framed: Optional[bytes] = None
        for name in reversed(self._listed(_SNAP_PREFIX, _SNAP_SUFFIX)):
            full = os.path.join(self.path, name)
            with open(full, "rb") as fh:
                data = fh.read()
            from repro.storage.record import parse_snapshot

            if parse_snapshot(data) is not None:
                snap_framed = data
                self._current_snap = full
                break
        records: list[tuple[int, int, bytes]] = []
        log_bytes = 0
        segments = self._listed(_SEG_PREFIX, _SEG_SUFFIX)
        kept = segments
        for i, name in enumerate(segments):
            full = os.path.join(self.path, name)
            with open(full, "rb") as fh:
                data = fh.read()
            scanned, clean_end = scan_records(data)
            records.extend(scanned)
            log_bytes += clean_end
            if clean_end != len(data):
                # Torn write: truncate to the clean prefix and drop any
                # later segments (sequential appends mean they hold
                # nothing the torn one does not invalidate).
                with open(full, "r+b") as fh:
                    fh.truncate(clean_end)
                    fh.flush()
                    os.fsync(fh.fileno())
                for later in segments[i + 1 :]:
                    os.unlink(os.path.join(self.path, later))
                kept = segments[: i + 1]
                break
        if kept:
            self._open_segment(int(kept[-1][len(_SEG_PREFIX) : -len(_SEG_SUFFIX)]))
        else:
            self._open_segment(0)
        return snap_framed, records, log_bytes

    def _wipe_store(self) -> None:
        self._close_fh()
        for name in self._listed(_SEG_PREFIX, _SEG_SUFFIX):
            os.unlink(os.path.join(self.path, name))
        for name in self._listed(_SNAP_PREFIX, _SNAP_SUFFIX):
            os.unlink(os.path.join(self.path, name))
        self._current_snap = None

    def close(self) -> None:
        self._close_fh()
