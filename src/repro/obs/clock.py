"""Clock abstraction: one collector, two notions of time.

The simulator runs on a virtual clock (the event loop's ``now``); the
asyncio runtime runs on the wall clock.  Observability code takes a
:class:`Clock` so the same collector, span model, and exporters work
unchanged on both substrates -- timestamps are just "seconds on this
substrate's clock".
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Source of timestamps for observability data."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (monotonic within one run)."""


class SimClock(Clock):
    """Virtual time of a simulator event loop."""

    def __init__(self, loop) -> None:
        self._loop = loop

    def now(self) -> float:
        return self._loop.now


class WallClock(Clock):
    """Monotonic wall time -- the same timebase asyncio loops use."""

    def now(self) -> float:
        return time.monotonic()
