"""The substrate-independent observability collector.

An :class:`ObsCollector` registers as an :class:`~repro.consensus.base.EnvObserver`
on every node's :class:`Env` and assembles, from the generic hook
stream (propose, handler entry/exit, flush, deliver) plus the
protocols' structured notes (``path`` / ``quorum`` / ``decide`` /
``epoch_bump`` / ``owner_handoff`` / ``outbox_depth``):

- one :class:`~repro.obs.span.CommandTrace` per command;
- per-message-type handler counts and CPU attribution (measured with
  ``perf_counter``, so it is real Python CPU on both substrates);
- ownership-churn gauges (epoch bumps and owner handoffs per object)
  and per-destination outbox depth;
- a timeline of fault events (``fault`` notes emitted by the substrate
  on crash/restart), so chaos runs can place failures on the same
  clock as command traces -- and, in span mode, audit that a crashed
  node performed *zero* transitions while down (no handler or wire
  span may fall inside a crash window);
- optionally (``record_spans=True``) a full span log for the Chrome
  trace exporter.  Span retention is opt-in *and* bounded: at most
  ``max_spans`` spans are kept (default
  :attr:`ObsCollector.DEFAULT_MAX_SPANS`); further spans are counted in
  ``dropped_spans`` instead of retained, so long runs cannot exhaust
  memory.  For unbounded-run live metrics use
  :mod:`repro.obs.telemetry`, which never stores per-event state.

The same collector attaches to a simulated cluster (virtual clock) or
a runtime cluster (wall clock); only the :class:`~repro.obs.clock.Clock`
differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.consensus.base import EnvObserver, Message
from repro.obs.clock import Clock, SimClock, WallClock
from repro.obs.span import (
    Cid,
    CommandTrace,
    PathStats,
    Span,
    fast_ratio,
    path_breakdown,
)


@dataclass
class HandlerStats:
    """Aggregate cost of one message type's handler."""

    count: int = 0
    cpu_seconds: float = 0.0


@dataclass
class FaultEvent:
    """One crash or restart, as observed on the collector's clock."""

    node: int
    event: str  # "crash" | "restart"
    at: float
    mode: Optional[str] = None  # restart only: "durable" | "amnesia"
    incarnation: int = 0


@dataclass
class StorageStats:
    """Aggregate durable-storage activity across the cluster (from the
    ``fsync`` / ``snapshot`` / ``recovery`` notes the storage layer
    emits)."""

    fsyncs: int = 0
    records_flushed: int = 0
    bytes_flushed: int = 0
    snapshots: int = 0
    snapshot_bytes: int = 0
    recoveries: int = 0
    records_replayed: int = 0


@dataclass
class OwnershipChurn:
    """Per-object ownership movement (the WPaxos migration metric)."""

    epoch_bumps: dict[str, int] = field(default_factory=dict)
    owner_handoffs: dict[str, int] = field(default_factory=dict)

    @property
    def total_epoch_bumps(self) -> int:
        return sum(self.epoch_bumps.values())

    @property
    def total_handoffs(self) -> int:
        return sum(self.owner_handoffs.values())


class ObsCollector(EnvObserver):
    """Attach to every node's Env; query after (or during) the run."""

    #: Default ceiling on retained spans when ``record_spans=True``.  A
    #: saturated run emits several spans per command; 200k entries is
    #: minutes of heavy traffic while bounding memory to tens of MB.
    #: Spans past the cap are counted in ``dropped_spans``, not stored.
    DEFAULT_MAX_SPANS = 200_000

    def __init__(
        self,
        clock: Clock,
        record_spans: bool = False,
        max_spans: Optional[int] = None,
    ) -> None:
        self.clock = clock
        self.record_spans = record_spans
        self.max_spans = self.DEFAULT_MAX_SPANS if max_spans is None else max_spans
        self.dropped_spans = 0
        self.traces: dict[Cid, CommandTrace] = {}
        self.spans: list[Span] = []
        self.handler_stats: dict[str, HandlerStats] = {}
        self.faults: list[FaultEvent] = []
        self.storage = StorageStats()
        self.churn = OwnershipChurn()
        self.outbox_depth: dict[int, int] = {}  # dst -> max depth seen
        self.client_inflight: dict[int, int] = {}  # node -> max pipeline depth
        self.message_types: dict[str, int] = {}
        self.flush_batches = 0
        self.wire_messages = 0
        self.wire_bytes = 0
        self._attached: list = []  # envs we observe, for detach()
        # Handler spans nest (a handler may deliver, whose listener
        # proposes); per-node stacks pair entries with exits.
        self._handler_starts: dict[int, list[float]] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    @classmethod
    def for_cluster(
        cls,
        cluster,
        record_spans: bool = False,
        max_spans: Optional[int] = None,
    ) -> "ObsCollector":
        """Build and attach to a sim ``Cluster`` or runtime ``LocalCluster``:
        the virtual clock when the cluster has an event loop, wall time
        otherwise."""
        loop = getattr(cluster, "loop", None)
        clock: Clock = SimClock(loop) if loop is not None else WallClock()
        collector = cls(clock, record_spans=record_spans, max_spans=max_spans)
        collector.attach(cluster)
        return collector

    def _add_span(self, span: Span) -> None:
        """Retain ``span`` unless the cap is hit (then count the drop)."""
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self.spans.append(span)

    def attach(self, cluster) -> None:
        for node in cluster.nodes:
            node.env.add_observer(self)
            self._attached.append(node.env)

    def detach(self) -> None:
        """Remove this collector from every env it observes."""
        for env in self._attached:
            env.remove_observer(self)
        self._attached.clear()

    # ------------------------------------------------------------------
    # EnvObserver hooks
    # ------------------------------------------------------------------

    def on_propose(self, node_id: int, command) -> None:
        if command.cid not in self.traces:  # re-proposals keep the origin
            self.traces[command.cid] = CommandTrace(
                cid=command.cid, proposer=node_id, proposed_at=self.clock.now()
            )

    def on_handler_enter(self, node_id: int, sender: int, message: Message) -> None:
        self._handler_starts.setdefault(node_id, []).append(self.clock.now())

    def on_handler_exit(
        self, node_id: int, sender: int, message: Message, cpu_seconds: float
    ) -> None:
        name = type(message).__name__
        stats = self.handler_stats.get(name)
        if stats is None:
            stats = self.handler_stats[name] = HandlerStats()
        stats.count += 1
        stats.cpu_seconds += cpu_seconds
        starts = self._handler_starts.get(node_id)
        start = starts.pop() if starts else self.clock.now()
        if self.record_spans:
            self._add_span(
                Span(
                    name=f"handle {name}",
                    category="handler",
                    node=node_id,
                    start=start,
                    duration=self.clock.now() - start,
                    args={"from": sender, "cpu_us": cpu_seconds * 1e6},
                )
            )

    def on_flush(self, node_id: int, queued, batches) -> None:
        self.flush_batches += len(batches)
        for _dst, message in queued:
            name = type(message).__name__
            self.message_types[name] = self.message_types.get(name, 0) + 1
            self.wire_messages += 1
            self.wire_bytes += message.size_bytes()
        for dst, messages in batches.items():
            if len(messages) > self.outbox_depth.get(dst, 0):
                self.outbox_depth[dst] = len(messages)
        if self.record_spans and queued:
            # Instant span per flush: together with handler spans this
            # covers every way a node makes progress (any transition
            # either handles an event or sends), which is what the
            # crash-quiescence audit keys off.
            self._add_span(
                Span(
                    name=f"flush x{len(queued)}",
                    category="wire",
                    node=node_id,
                    start=self.clock.now(),
                    duration=0.0,
                    args={"messages": len(queued), "batches": len(batches)},
                )
            )

    def on_deliver(self, node_id: int, command) -> None:
        trace = self.traces.get(command.cid)
        if trace is None:
            return
        now = self.clock.now()
        if trace.first_delivered_at is None:
            trace.first_delivered_at = now
        if node_id == trace.proposer and trace.delivered_at is None:
            trace.delivered_at = now
            if self.record_spans:
                self._add_span(
                    Span(
                        name=f"cmd {command.cid[0]}.{command.cid[1]}",
                        category="command",
                        node=trace.proposer,
                        start=trace.proposed_at,
                        duration=now - trace.proposed_at,
                        args={
                            "path": trace.resolved_path,
                            "hops": trace.forward_hops,
                            "epoch_bumps": trace.epoch_bumps,
                            "objects": sorted(command.ls),
                        },
                    )
                )

    def on_note(self, node_id: int, kind: str, fields: dict) -> None:
        if kind in ("read_local", "session_hit"):
            # A leased owner-local read (or an exactly-once session
            # replay) completes at its proposer without ever being
            # decided or delivered: close its trace here so the
            # per-path breakdown shows the consensus-free path
            # explicitly instead of leaking the command as "inflight".
            trace = self.traces.get(fields.get("cid"))
            if trace is not None and trace.first_delivered_at is None:
                now = self.clock.now()
                trace.observe_path(kind)
                trace.first_delivered_at = now
                if node_id == trace.proposer:
                    trace.delivered_at = now
            return
        if kind == "path":
            trace = self.traces.get(fields["cid"])
            if trace is not None:
                trace.observe_path(fields["path"], fields.get("hops", 0))
        elif kind == "decide":
            trace = self.traces.get(fields["cid"])
            if trace is not None and trace.decided_at is None:
                trace.decided_at = self.clock.now()
        elif kind == "quorum":
            trace = self.traces.get(fields["cid"])
            if trace is not None and trace.quorum_at is None:
                trace.quorum_at = self.clock.now()
        elif kind == "epoch_bump":
            obj = fields["obj"]
            bumps = self.churn.epoch_bumps
            bumps[obj] = bumps.get(obj, 0) + 1
            trace = self.traces.get(fields.get("cid"))
            if trace is not None:
                trace.epoch_bumps += 1
        elif kind == "owner_handoff":
            obj = fields["obj"]
            handoffs = self.churn.owner_handoffs
            handoffs[obj] = handoffs.get(obj, 0) + 1
        elif kind == "outbox_depth":
            dst = fields["dst"]
            if fields["depth"] > self.outbox_depth.get(dst, 0):
                self.outbox_depth[dst] = fields["depth"]
        elif kind == "inflight":
            # Client pipeline depth gauge, emitted by the runtime's
            # PipelineDriver before each propose.
            if fields["depth"] > self.client_inflight.get(node_id, 0):
                self.client_inflight[node_id] = fields["depth"]
        elif kind in ("fsync", "snapshot", "recovery"):
            stats = self.storage
            if kind == "fsync":
                stats.fsyncs += 1
                stats.records_flushed += fields.get("records", 0)
                stats.bytes_flushed += fields.get("bytes", 0)
            elif kind == "snapshot":
                stats.snapshots += 1
                stats.snapshot_bytes += fields.get("bytes", 0)
            else:
                stats.recoveries += 1
                stats.records_replayed += fields.get("records", 0)
            if self.record_spans:
                # Category "storage", deliberately outside the
                # handler/wire set the crash-quiescence audit scans: a
                # group-commit fsync firing is I/O completing, not the
                # node taking a protocol transition.
                self._add_span(
                    Span(
                        name=kind,
                        category="storage",
                        node=node_id,
                        start=self.clock.now(),
                        duration=0.0,
                        args=dict(fields),
                    )
                )
        elif kind == "fault":
            now = self.clock.now()
            event = fields["event"]
            mode = fields.get("mode")
            self.faults.append(
                FaultEvent(
                    node=node_id,
                    event=event,
                    at=now,
                    mode=mode,
                    incarnation=fields.get("incarnation", 0),
                )
            )
            if self.record_spans:
                name = event if mode is None else f"{event} ({mode})"
                self._add_span(
                    Span(
                        name=name,
                        category="fault",
                        node=node_id,
                        start=now,
                        duration=0.0,
                        args=dict(fields),
                    )
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def path_counts(self) -> dict[str, int]:
        """Decision-path counts over every *delivered* trace."""
        counts: dict[str, int] = {}
        for trace in self.traces.values():
            if trace.first_delivered_at is None:
                continue
            path = trace.resolved_path
            counts[path] = counts.get(path, 0) + 1
        return counts

    def path_stats(
        self,
        window_start: Optional[float] = None,
        window_end: Optional[float] = None,
    ) -> dict[str, PathStats]:
        return path_breakdown(self.traces.values(), window_start, window_end)

    def fast_ratio(
        self,
        window_start: Optional[float] = None,
        window_end: Optional[float] = None,
    ) -> float:
        return fast_ratio(self.path_stats(window_start, window_end))

    def inflight(self) -> int:
        """Commands proposed but never delivered anywhere (lost or still
        in flight when the collector was read)."""
        return sum(
            1 for t in self.traces.values() if t.first_delivered_at is None
        )

    def activity_spans(
        self, node: int, start: float, end: float
    ) -> list[Span]:
        """Handler and wire spans of ``node`` starting inside
        ``(start, end)`` -- the spans that prove a state transition.
        A crashed node must produce none between its crash and restart
        (requires ``record_spans=True``)."""
        return [
            s
            for s in self.spans
            if s.node == node
            and s.category in ("handler", "wire")
            and start < s.start < end
        ]
