"""Span and command-trace model: the paper's decision paths as data.

The headline claim of M2Paxos is *which decision path a command takes*:

- ``fast``: the proposer owned every object -- two one-way delays;
- ``forward``: a single remote owner -- three delays;
- ``slow``: an extra coordination round (EPaxos/GenPaxos slow paths);
- ``acquisition``: ownership had to be (re)acquired -- four or more
  delays, unbounded under contention.

A :class:`CommandTrace` follows one command from C-PROPOSE through path
classification to quorum, decide, and local delivery.  Classifications
*escalate*: a command first forwarded and then caught in an acquisition
ends as ``acquisition``; re-runs on the fast path never downgrade it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.metrics.stats import Summary, summarize

Cid = tuple[int, int]

PATH_SEVERITY = {"fast": 0, "forward": 1, "slow": 2, "acquisition": 3}
"""Escalation order of decision paths; unknown labels rank highest."""


def path_severity(path: str) -> int:
    return PATH_SEVERITY.get(path, len(PATH_SEVERITY))


@dataclass
class Span:
    """One timed interval (or instant, when ``duration`` is 0) on a node.

    ``category`` groups spans for export: ``"command"`` (propose to
    local delivery), ``"handler"`` (one message handler invocation), or
    ``"mark"`` (instant annotations such as path classifications).
    ``args`` carries free-form structured detail.
    """

    name: str
    category: str
    node: int
    start: float
    duration: float = 0.0
    args: dict = field(default_factory=dict)


@dataclass
class CommandTrace:
    """Everything observed about one command's journey to delivery.

    Timestamps are on the attached collector's :class:`~repro.obs.clock.Clock`
    (virtual seconds under the simulator, wall seconds in the runtime).
    ``None`` means the milestone has not been observed (yet).
    """

    cid: Cid
    proposer: int
    proposed_at: float
    path: Optional[str] = None  # most severe classification observed
    forward_hops: int = 0
    epoch_bumps: int = 0
    quorum_at: Optional[float] = None
    decided_at: Optional[float] = None  # first decide on any node
    delivered_at: Optional[float] = None  # local delivery at the proposer
    first_delivered_at: Optional[float] = None  # first delivery anywhere

    @property
    def resolved_path(self) -> str:
        """The final classification.  A command that never escalated
        beyond its optimistic first round is the fast path."""
        return self.path if self.path is not None else "fast"

    def observe_path(self, path: str, hops: int = 0) -> None:
        """Record one classification; keep the most severe seen."""
        if self.path is None or path_severity(path) > path_severity(self.path):
            self.path = path
        if hops > self.forward_hops:
            self.forward_hops = hops

    @property
    def latency(self) -> Optional[float]:
        """C-PROPOSE to local delivery at the proposer (client view)."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.proposed_at

    @property
    def decision_latency(self) -> Optional[float]:
        """C-PROPOSE to the first decide anywhere -- the quantity the
        paper's delay counts (2 / 3 / >=4 one-way delays) refer to."""
        if self.decided_at is None:
            return None
        return self.decided_at - self.proposed_at


@dataclass(frozen=True)
class PathStats:
    """Per-decision-path breakdown for one run."""

    count: int
    latency: Optional[Summary]

    @property
    def p50(self) -> float:
        return self.latency.p50 if self.latency else float("nan")

    @property
    def p99(self) -> float:
        return self.latency.p99 if self.latency else float("nan")


def path_breakdown(
    traces,
    window_start: Optional[float] = None,
    window_end: Optional[float] = None,
) -> dict[str, PathStats]:
    """Group delivered traces by decision path.

    Counts every trace whose first delivery falls inside the window;
    latency summaries use the proposer-local latency of the traces that
    have one (the same latency definition as the metrics collector).
    """

    def in_window(t: Optional[float]) -> bool:
        if t is None:
            return False
        if window_start is not None and t < window_start:
            return False
        return window_end is None or t <= window_end

    counts: dict[str, int] = {}
    latencies: dict[str, list[float]] = {}
    for trace in traces:
        if not in_window(trace.first_delivered_at):
            continue
        path = trace.resolved_path
        counts[path] = counts.get(path, 0) + 1
        if trace.latency is not None and in_window(trace.delivered_at):
            latencies.setdefault(path, []).append(trace.latency)
    return {
        path: PathStats(
            count=count,
            latency=summarize(latencies[path]) if latencies.get(path) else None,
        )
        for path, count in counts.items()
    }


def fast_ratio(paths: dict[str, PathStats]) -> float:
    """Share of delivered commands that took the fast path."""
    total = sum(stats.count for stats in paths.values())
    if total == 0:
        return 0.0
    return paths.get("fast", PathStats(0, None)).count / total
