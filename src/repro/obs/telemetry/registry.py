"""Typed metric instruments with labels, behind one registry.

The registry is deliberately small: three instrument kinds (Counter,
Gauge, Histogram), label support via per-family child maps keyed by label
value tuples, and constant labels stamped on everything at exposition
time (e.g. ``protocol="m2paxos"``).  All instruments are bounded-memory:
counters and gauges are one float each, histograms are fixed-bucket
``LogSketch`` instances.

This is not a Prometheus client library clone — only what the sampler,
the exposition endpoint, and the detectors need.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from .sketch import LATENCY_HIGH, LATENCY_LOW, LogSketch

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """Point-in-time value that can move both ways."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Sketch-backed distribution; quantiles cost O(buckets)."""

    __slots__ = ("sketch",)

    def __init__(
        self,
        low: float = LATENCY_LOW,
        high: float = LATENCY_HIGH,
        growth: Optional[float] = None,
    ) -> None:
        if growth is None:
            self.sketch = LogSketch(low, high)
        else:
            self.sketch = LogSketch(low, high, growth)

    def observe(self, value: float) -> None:
        self.sketch.observe(value)

    @property
    def count(self) -> int:
        return self.sketch.count

    @property
    def total(self) -> float:
        return self.sketch.total

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)


class MetricFamily:
    """All children (label combinations) of one named metric."""

    __slots__ = ("name", "help", "kind", "label_names", "children", "_hist_args")

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: Tuple[str, ...],
        hist_args: Optional[Tuple[float, float, Optional[float]]] = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = label_names
        self.children: Dict[Tuple, object] = {}
        self._hist_args = hist_args

    def _make(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        low, high, growth = self._hist_args or (LATENCY_LOW, LATENCY_HIGH, None)
        return Histogram(low, high, growth)

    def child(self, *label_values):
        """Fast-path child lookup by positional label values."""
        if len(label_values) != len(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, got {label_values!r}"
            )
        key = label_values
        instrument = self.children.get(key)
        if instrument is None:
            instrument = self._make()
            self.children[key] = instrument
        return instrument

    def labels(self, **kwargs):
        try:
            values = tuple(kwargs[name] for name in self.label_names)
        except KeyError as exc:
            raise ValueError(
                f"{self.name} requires labels {self.label_names}, missing {exc}"
            ) from exc
        if len(kwargs) != len(self.label_names):
            extra = set(kwargs) - set(self.label_names)
            raise ValueError(f"{self.name} got unknown labels {sorted(extra)}")
        return self.child(*values)

    # Convenience: a family declared without labels acts as its own child.
    def inc(self, amount: float = 1.0) -> None:
        self.child().inc(amount)

    def set(self, value: float) -> None:
        self.child().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self.child().dec(amount)

    def observe(self, value: float) -> None:
        self.child().observe(value)

    @property
    def value(self) -> float:
        child = self.children.get(())
        return child.value if child is not None else 0.0

    def items(self) -> Iterator[Tuple[Tuple, object]]:
        """Children in sorted label order (stable exposition)."""
        for key in sorted(self.children, key=lambda k: tuple(str(v) for v in k)):
            yield key, self.children[key]

    def total(self) -> float:
        """Sum of all children (counters/gauges only)."""
        return sum(child.value for child in self.children.values())

    def totals_by(self, label: str) -> Dict[object, float]:
        """Sum children grouped by one label's value."""
        position = self.label_names.index(label)
        grouped: Dict[object, float] = {}
        for key, child in self.children.items():
            group = key[position]
            grouped[group] = grouped.get(group, 0.0) + child.value
        return grouped


class MetricsRegistry:
    """Ordered collection of metric families plus constant labels."""

    def __init__(self, const_labels: Optional[Mapping[str, str]] = None) -> None:
        self.families: Dict[str, MetricFamily] = {}
        self.const_labels: Dict[str, str] = dict(const_labels or {})
        for label in self.const_labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")

    def _register(
        self,
        name: str,
        help_text: str,
        kind: str,
        labels: Tuple[str, ...],
        hist_args=None,
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        existing = self.families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name} already registered as {existing.kind}"
                    f"{existing.label_names}"
                )
            return existing
        family = MetricFamily(name, help_text, kind, tuple(labels), hist_args)
        self.families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labels: Tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._register(name, help_text, "counter", tuple(labels))

    def gauge(
        self, name: str, help_text: str = "", labels: Tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._register(name, help_text, "gauge", tuple(labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Tuple[str, ...] = (),
        low: float = LATENCY_LOW,
        high: float = LATENCY_HIGH,
        growth: Optional[float] = None,
    ) -> MetricFamily:
        return self._register(
            name, help_text, "histogram", tuple(labels), (low, high, growth)
        )

    def collect(self) -> List[MetricFamily]:
        return list(self.families.values())
