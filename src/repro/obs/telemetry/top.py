"""`repro top` rendering: live refreshing frame tables.

Pure formatting — the CLI drives either a stepped sim run or a runtime
cluster and calls :func:`render_screen` after each interval.  Output is
plain text (ANSI clear between refreshes when attached to a TTY), built
on the same aligned-table helper as the bench reports.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.bench.report import format_table

from .collector import PATHS
from .health import HealthEvent
from .sampler import Frame

CLEAR = "\x1b[2J\x1b[H"


def _ms(seconds: float) -> float:
    return seconds * 1e3


def frame_row(frame: Frame) -> dict:
    """One table row summarising a frame."""
    row = {
        "t": f"{frame.end:.2f}",
        "cps": frame.throughput,
        "fast%": frame.fast_share * 100.0,
        "p50ms": _ms(frame.p50),
        "p99ms": _ms(frame.p99),
        "inflight": frame.inflight,
        "outbox": frame.outbox_depth,
        "fsyncs": frame.fsyncs,
        "churn": frame.epoch_bumps,
    }
    if frame.faults:
        row["faults"] = ",".join(f"{n}:{e}" for n, e in frame.faults)
    return row


FRAME_COLUMNS = (
    "t",
    "cps",
    "fast%",
    "p50ms",
    "p99ms",
    "inflight",
    "outbox",
    "fsyncs",
    "churn",
)


def path_rows(frame: Frame) -> List[dict]:
    rows = []
    for path in PATHS:
        count = frame.path_counts.get(path, 0)
        if not count:
            continue
        rows.append(
            {
                "path": path,
                "count": count,
                "share%": 100.0 * count / frame.decides if frame.decides else 0.0,
                "p50ms": _ms(frame.path_p50.get(path, float("nan"))),
                "p99ms": _ms(frame.path_p99.get(path, float("nan"))),
            }
        )
    return rows


def zone_rows(frame: Frame) -> List[dict]:
    """Per-zone breakdown of one frame (empty on single-zone runs)."""
    nan = float("nan")
    rows = []
    for zone in sorted(frame.zone_decides):
        rows.append(
            {
                "zone": zone,
                "decides": frame.zone_decides[zone],
                "fast%": frame.zone_fast_share.get(zone, nan) * 100.0,
                "p50ms": _ms(frame.zone_p50.get(zone, nan)),
                "p99ms": _ms(frame.zone_p99.get(zone, nan)),
            }
        )
    return rows


ZONE_COLUMNS = ("zone", "decides", "fast%", "p50ms", "p99ms")


def render_frames(
    frames: Sequence[Frame],
    events: Iterable[HealthEvent] = (),
    history: int = 10,
    title: str = "telemetry",
) -> str:
    """Multi-section screen: recent frames, last-frame paths, health."""
    lines = [f"== {title} =="]
    window = list(frames)[-history:]
    if not window:
        lines.append("(no frames yet)")
        return "\n".join(lines)
    lines.append(format_table([frame_row(f) for f in window], FRAME_COLUMNS))
    last = window[-1]
    paths = path_rows(last)
    if paths:
        lines.append("")
        lines.append(f"-- paths (frame {last.index}) --")
        lines.append(
            format_table(paths, ("path", "count", "share%", "p50ms", "p99ms"))
        )
    zones = zone_rows(last)
    if zones:
        lines.append("")
        lines.append(f"-- zones (frame {last.index}) --")
        lines.append(format_table(zones, ZONE_COLUMNS))
    recent_events = list(events)[-5:]
    if recent_events:
        lines.append("")
        lines.append("-- health --")
        for event in recent_events:
            details = ", ".join(
                f"{k}={v:.3g}" for k, v in sorted(event.details.items())
            )
            lines.append(f"[{event.at:.2f}] {event.kind} ({details})")
    return "\n".join(lines)


def render_screen(
    frames: Sequence[Frame],
    events: Iterable[HealthEvent] = (),
    history: int = 10,
    title: str = "telemetry",
    clear: Optional[bool] = None,
) -> str:
    import sys

    if clear is None:
        clear = sys.stdout.isatty()
    body = render_frames(frames, events, history=history, title=title)
    return (CLEAR + body) if clear else body
