"""Health detection over interval frames.

The :class:`HealthDetector` is a frame listener that classifies each
interval against three rules and emits structured events on the
False→True transition (one event per episode, not per frame):

- ``contention``: the acquisition-path share of decides crosses
  ``contention_ratio`` — the M²Paxos degenerate regime CAESAR targets;
  the :class:`~repro.core.switcher.AdaptiveSwitcher` subscribes to this.
- ``overload``: inflight depth crosses ``overload_inflight``, or overall
  p50 latency rises monotonically across ``overload_slope_frames``
  consecutive frames by at least ``overload_slope_factor`` total.
- ``stall``: ``stall_frames`` consecutive frames with proposes but zero
  decides.

Frames with fewer than ``min_decides`` decides are too sparse for the
ratio rules (a single slow command would read as 100% contention) and
only feed the stall rule.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from .sampler import Frame

HealthListener = Callable[["HealthEvent"], None]


@dataclass(frozen=True)
class HealthConfig:
    min_decides: int = 8
    contention_ratio: float = 0.30
    overload_inflight: int = 512
    overload_slope_frames: int = 3
    overload_slope_factor: float = 1.5
    stall_frames: int = 2


@dataclass(frozen=True)
class HealthEvent:
    kind: str  # "contention" | "overload" | "stall"
    at: float  # frame end time on the substrate's clock
    frame_index: int
    details: Dict[str, float] = field(default_factory=dict)


class HealthDetector:
    """Classify frames; emit events on episode start."""

    def __init__(self, config: Optional[HealthConfig] = None) -> None:
        self.config = config if config is not None else HealthConfig()
        self.events: List[HealthEvent] = []
        self.listeners: List[HealthListener] = []
        self._active: set = set()
        self._p50_history: Deque[float] = deque(
            maxlen=max(2, self.config.overload_slope_frames)
        )
        self._stall_streak = 0

    def subscribe(self, listener: HealthListener) -> None:
        self.listeners.append(listener)

    def _emit(self, kind: str, frame: Frame, **details) -> None:
        if kind in self._active:
            return
        self._active.add(kind)
        event = HealthEvent(
            kind=kind, at=frame.end, frame_index=frame.index, details=details
        )
        self.events.append(event)
        for listener in self.listeners:
            listener(event)

    def _clear(self, kind: str) -> None:
        self._active.discard(kind)

    # ------------------------------------------------------------------
    # Frame listener
    # ------------------------------------------------------------------

    def observe_frame(self, frame: Frame) -> None:
        config = self.config

        # --- contention -------------------------------------------------
        if frame.decides >= config.min_decides:
            ratio = frame.path_ratio("acquisition")
            if ratio >= config.contention_ratio:
                self._emit(
                    "contention",
                    frame,
                    acquisition_ratio=ratio,
                    decides=frame.decides,
                )
            else:
                self._clear("contention")

        # --- overload ---------------------------------------------------
        if not math.isnan(frame.p50):
            self._p50_history.append(frame.p50)
        depth_breach = frame.inflight >= config.overload_inflight
        slope_breach = False
        history = self._p50_history
        if len(history) == history.maxlen and history[0] > 0:
            rising = all(
                later >= earlier for earlier, later in zip(history, list(history)[1:])
            )
            slope_breach = (
                rising and history[-1] >= config.overload_slope_factor * history[0]
            )
        if depth_breach or slope_breach:
            self._emit(
                "overload",
                frame,
                inflight=frame.inflight,
                p50=frame.p50,
                slope=(history[-1] / history[0]) if slope_breach else 0.0,
            )
        else:
            self._clear("overload")

        # --- stall ------------------------------------------------------
        if frame.proposes > 0 and frame.decides == 0:
            self._stall_streak += 1
        elif frame.decides > 0:
            self._stall_streak = 0
            self._clear("stall")
        if self._stall_streak >= config.stall_frames:
            self._emit(
                "stall", frame, proposes=frame.proposes, streak=self._stall_streak
            )
