"""Streaming quantile sketch: fixed-bucket log-scale histogram.

``LogSketch`` records observations into geometrically spaced buckets so a
quantile query costs O(buckets), never O(samples), and memory is fixed at
construction time regardless of run length.  With growth factor ``g`` the
bucket edges are ``low * g**i``; a quantile is answered with the geometric
midpoint of the bucket holding the target rank, so the per-bucket relative
error is bounded by ``sqrt(g) - 1`` for any in-range sample.  The default
``g = 2**(1/8)`` (8 buckets per doubling) gives a documented bound of
about 4.5% — see ``LogSketch.relative_error``.

Out-of-range observations are clamped into the first/last bucket (the
error bound applies to samples inside ``[low, high)``); exact ``min``,
``max``, ``sum`` and ``count`` are tracked on the side so means and tails
stay honest.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Tuple

DEFAULT_GROWTH = 2.0 ** 0.125

# Latency range for consensus commands: 1us .. 10,000s covers everything
# from a sim fast path under zero-cost networks to a stalled recovery.
LATENCY_LOW = 1e-6
LATENCY_HIGH = 1e4


class LogSketch:
    """Fixed-memory log-bucket histogram with rank-based quantiles."""

    __slots__ = (
        "low",
        "high",
        "growth",
        "counts",
        "count",
        "total",
        "minimum",
        "maximum",
        "_edges",
        "_inv_log_growth",
        "_sqrt_growth",
    )

    def __init__(
        self,
        low: float = LATENCY_LOW,
        high: float = LATENCY_HIGH,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        if not (0.0 < low < high):
            raise ValueError(f"need 0 < low < high, got low={low} high={high}")
        if growth <= 1.0:
            raise ValueError(f"growth factor must exceed 1, got {growth}")
        self.low = low
        self.high = high
        self.growth = growth
        self._inv_log_growth = 1.0 / math.log(growth)
        self._sqrt_growth = math.sqrt(growth)
        n_buckets = max(1, math.ceil(math.log(high / low) * self._inv_log_growth))
        # edges[i] .. edges[i+1] bound bucket i; len(edges) == n_buckets + 1.
        self._edges = [low * growth**i for i in range(n_buckets + 1)]
        self.counts: List[int] = [0] * n_buckets
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    @property
    def n_buckets(self) -> int:
        return len(self.counts)

    @property
    def relative_error(self) -> float:
        """Documented worst-case relative error for in-range samples."""
        return self._sqrt_growth - 1.0

    def observe(self, value: float) -> None:
        if value != value:  # NaN guard: never poison the sketch
            return
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        self.counts[self._index(value)] += 1

    def _index(self, value: float) -> int:
        if value < self.low:
            return 0
        if value >= self._edges[-1]:
            return len(self.counts) - 1
        i = int(math.log(value / self.low) * self._inv_log_growth)
        # Float rounding at an edge can land one bucket off; nudge so the
        # invariant edges[i] <= value < edges[i+1] holds exactly.
        if i >= len(self.counts):
            i = len(self.counts) - 1
        if value >= self._edges[i + 1]:
            i += 1
        elif value < self._edges[i]:
            i -= 1
        return min(max(i, 0), len(self.counts) - 1)

    def _estimate(self, index: int) -> float:
        # Geometric midpoint of the bucket: at most sqrt(growth) away
        # from any sample that hashed into it.
        return self._edges[index] * self._sqrt_growth

    def quantile(self, q: float) -> float:
        """Estimate the q-th percentile (0 <= q <= 100) of observations.

        Returns NaN when empty.  The estimate lies within a factor of
        ``sqrt(growth)`` of the exact order statistic at the same rank,
        for samples inside ``[low, high)``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile must be in [0, 100], got {q}")
        if self.count == 0:
            return float("nan")
        # 1-based rank of the upper bracketing order statistic for the
        # interpolated percentile definition used by metrics/stats.py.
        rank = math.ceil((self.count - 1) * q / 100.0) + 1
        cumulative = 0
        estimate = self._estimate(len(self.counts) - 1)
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                estimate = self._estimate(i)
                break
        if self.minimum is not None and self.maximum is not None:
            # Exact extrema can only tighten the estimate.
            estimate = min(max(estimate, self.minimum), self.maximum)
        return estimate

    def state(self) -> Tuple[int, float, List[int]]:
        """Cheap copy of the counters for later interval differencing."""
        return (self.count, self.total, list(self.counts))

    def since(self, state: Optional[Tuple[int, float, List[int]]]) -> "LogSketch":
        """New sketch holding only observations made after ``state``.

        Interval sketches do not track exact min/max (those are
        cumulative), so their quantiles are pure bucket estimates.
        """
        delta = LogSketch(self.low, self.high, self.growth)
        if state is None:
            delta.count = self.count
            delta.total = self.total
            delta.counts = list(self.counts)
        else:
            prev_count, prev_total, prev_counts = state
            delta.count = self.count - prev_count
            delta.total = self.total - prev_total
            delta.counts = [a - b for a, b in zip(self.counts, prev_counts)]
        return delta

    def merge(self, other: "LogSketch") -> None:
        if (other.low, other.high, other.growth) != (self.low, self.high, self.growth):
            raise ValueError("cannot merge sketches with different bucket layouts")
        self.count += other.count
        self.total += other.total
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        for value in (other.minimum, other.maximum):
            if value is None:
                continue
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def nonzero_buckets(self) -> Iterator[Tuple[float, int]]:
        """Yield ``(upper_edge, cumulative_count)`` for non-empty buckets.

        This is the Prometheus classic-histogram shape: cumulative counts
        keyed by ``le`` upper bounds, sparse so a 260-bucket sketch with a
        handful of occupied buckets stays cheap to render.
        """
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count:
                cumulative += bucket_count
                yield (self._edges[i + 1], cumulative)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogSketch(count={self.count}, p50={self.quantile(50):.6g}, "
            f"p99={self.quantile(99):.6g})"
        )
