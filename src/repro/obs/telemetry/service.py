"""One-call telemetry facade for either substrate.

``Telemetry(cluster)`` wires collector → sampler → detector for a sim
``Cluster`` (virtual clock, event-loop timer cadence) or a runtime
``LocalCluster`` (wall clock, asyncio task cadence), mirroring
``ObsCollector.for_cluster``'s substrate detection.  Optional per-node
Prometheus endpoints share the one registry (samples carry ``node``
labels, so any endpoint exposes the full cluster view).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs.clock import Clock, SimClock, WallClock

from .collector import TelemetryCollector
from .health import HealthConfig, HealthDetector
from .prometheus import MetricsServer
from .registry import MetricsRegistry
from .sampler import IntervalSampler


def _protocol_listener(node, handler):
    def listener(event) -> None:
        if getattr(node, "crashed", False):
            return
        run_event = getattr(node, "run_event", None)
        if run_event is not None:
            run_event(lambda: handler(event))
        else:
            handler(event)

    return listener


class Telemetry:
    """Live telemetry for one cluster: collector, sampler, detector."""

    def __init__(
        self,
        cluster,
        interval: float = 0.25,
        ring: int = 240,
        registry: Optional[MetricsRegistry] = None,
        health: Optional[HealthConfig] = None,
        max_pending: int = 65536,
        const_labels: Optional[dict] = None,
    ) -> None:
        self.cluster = cluster
        self._sim_loop = getattr(cluster, "loop", None)
        self.clock: Clock = (
            SimClock(self._sim_loop) if self._sim_loop is not None else WallClock()
        )
        self.registry = (
            registry
            if registry is not None
            else MetricsRegistry(const_labels=const_labels)
        )
        # Geo runs: pick the zone map off the cluster config (sim
        # ClusterConfig and runtime configs both carry ``zones``) so
        # per-zone instruments appear without any explicit wiring.
        zones = getattr(getattr(cluster, "config", None), "zones", None)
        self.collector = TelemetryCollector(
            self.clock,
            registry=self.registry,
            max_pending=max_pending,
            zones=zones,
        )
        self.collector.attach(cluster)
        self.sampler = IntervalSampler(
            self.collector, self.clock, interval=interval, ring=ring
        )
        self.detector = HealthDetector(health)
        self.sampler.add_listener(self.detector.observe_frame)
        self.servers: List[MetricsServer] = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the sampling cadence on the sim's virtual clock."""
        if self._sim_loop is None:
            raise RuntimeError(
                "no event loop on this cluster; use start_runtime() instead"
            )
        self.sampler.start_sim(self._sim_loop)
        self._started = True

    async def start_runtime(
        self, serve: bool = False, host: str = "127.0.0.1"
    ) -> None:
        """Start the wall-clock cadence; optionally one HTTP endpoint
        per runtime node (all serving the shared registry)."""
        if self._sim_loop is not None:
            raise RuntimeError("sim cluster detected; use start() instead")
        self.sampler.start_runtime()
        self._started = True
        if serve:
            for node in self.cluster.nodes:
                server = MetricsServer(self.registry, host=host)
                address = await server.start()
                self.servers.append(server)
                # Stamp the scrape address on the node for discoverability.
                node.metrics_address = address

    async def stop_runtime(self) -> None:
        self.sampler.stop()
        for server in self.servers:
            await server.stop()
        self.servers.clear()
        self._started = False

    def stop(self) -> None:
        """Stop sampling (sim, or runtime without servers)."""
        self.sampler.stop()
        self._started = False

    def detach(self) -> None:
        self.collector.detach()

    def subscribe_protocols(self) -> int:
        """Wire every protocol exposing ``on_health_event`` (e.g. the
        :class:`~repro.core.switcher.AdaptiveSwitcher`) to the detector.
        Handlers run inside the node's event scope when the substrate has
        one, so any sends they issue flush as normal batches.  Returns
        the number of nodes subscribed."""
        wired = 0
        for node in self.cluster.nodes:
            handler = getattr(node.protocol, "on_health_event", None)
            if handler is None:
                continue
            self.detector.subscribe(_protocol_listener(node, handler))
            wired += 1
        return wired

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def frames(self):
        return self.sampler.frames

    @property
    def events(self):
        return self.detector.events

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        return [s.address for s in self.servers if s.address is not None]

    def final_sample(self):
        """Cut one last (possibly partial) frame; safe after stop()."""
        return self.sampler.sample()
