"""Prometheus text-format exposition and a per-node HTTP endpoint.

``render_prometheus`` turns a :class:`~repro.obs.telemetry.registry.MetricsRegistry`
into text-format 0.0.4 output: counters and gauges one sample per child,
histograms as cumulative ``_bucket{le=...}`` samples over the sketch's
*non-empty* buckets plus ``+Inf``, ``_sum`` and ``_count``.  Constant
registry labels (e.g. ``protocol``) are stamped on every sample.

``MetricsServer`` is a deliberately tiny asyncio HTTP/1.0 server — just
enough for ``curl`` and a Prometheus scraper: ``GET /metrics`` (200,
text/plain; version=0.0.4), anything else 404.  One server per runtime
node; all of a cluster's servers can share one registry since samples
are labelled by ``node``.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Tuple

from .registry import Histogram, MetricsRegistry


def _escape(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    const = tuple(registry.const_labels.items())
    lines = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, instrument in family.items():
            labels = const + tuple(zip(family.label_names, key))
            if isinstance(instrument, Histogram):
                sketch = instrument.sketch
                for upper, cumulative in sketch.nonzero_buckets():
                    bucket_labels = labels + (("le", f"{upper:.6g}"),)
                    lines.append(
                        f"{family.name}_bucket{_label_str(bucket_labels)} "
                        f"{cumulative}"
                    )
                inf_labels = labels + (("le", "+Inf"),)
                lines.append(
                    f"{family.name}_bucket{_label_str(inf_labels)} {sketch.count}"
                )
                lines.append(
                    f"{family.name}_sum{_label_str(labels)} "
                    f"{_format_value(sketch.total)}"
                )
                lines.append(f"{family.name}_count{_label_str(labels)} {sketch.count}")
            else:
                lines.append(
                    f"{family.name}{_label_str(labels)} "
                    f"{_format_value(instrument.value)}"
                )
    return "\n".join(lines) + "\n"


CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve ``GET /metrics`` for one registry over asyncio TCP."""

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            # Drain headers until the blank line; ignore their content.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else ""
            if parts and parts[0] == "GET" and path in ("/metrics", "/"):
                body = render_prometheus(self.registry).encode("utf-8")
                status = "200 OK"
            else:
                body = b"not found\n"
                status = "404 Not Found"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {CONTENT_TYPE}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
            )
            writer.write(body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
