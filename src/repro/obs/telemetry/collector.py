"""Bounded-memory live metrics collector.

``TelemetryCollector`` is the second :class:`~repro.consensus.base.EnvObserver`
implementation in the tree, built for *live* consumption where
:class:`~repro.obs.collect.ObsCollector` is built for post-hoc analysis.
The difference is memory: ObsCollector keeps one ``CommandTrace`` per
command forever; this collector folds every event into fixed-size
instruments (counters, gauges, log-bucket histograms) the moment it
arrives.  The only per-command state is a pending map from cid to
``(proposed_at, path)`` that is popped at proposer delivery and capped at
``max_pending`` entries (overflow counted, never stored), so a
week-long run holds the same few hundred kilobytes as a one-second run.

Metric names follow Prometheus conventions (``repro_*_total`` counters,
``_seconds`` histograms); label values keep cardinality bounded: ``node``
is the cluster size, ``path`` is the four decision paths, and
``object_shard`` is the workload's object universe.

The collector is *push where it must, pull where it can*: per-event
hooks carry only what exists per event (completion latency, decision
paths, wire counters), while state that is readable at sampling cadence
-- per-node delivery totals -- is pulled in :meth:`TelemetryCollector.refresh`.
Together with the subscription attributes on
:class:`~repro.consensus.base.EnvObserver` this keeps the live stack's
saturation-throughput tax to a few percent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.consensus.base import EnvObserver, Message
from repro.obs.clock import Clock
from repro.obs.span import PATH_SEVERITY

from .registry import MetricsRegistry

# The four consensus decision paths plus the serving tier's two
# consensus-free completion paths (leased owner-local reads and
# exactly-once session replays) -- the sampler's per-path iteration
# covers all six so served reads appear in frame throughput and
# latency breakdowns like any other completion.
PATHS = tuple(PATH_SEVERITY) + ("read_local", "session_hit")


class TelemetryCollector(EnvObserver):
    """Fold the env event stream into a :class:`MetricsRegistry`."""

    # Counters have no use for per-handler CPU brackets; opting out
    # lets the dispatcher skip two observer calls and two clock reads
    # per message when only telemetry is attached.
    wants_handler_timing = False
    # Per-event delivery hooks only for client-visible completions (the
    # latency/decide accounting); per-node delivery *totals* are pulled
    # from the substrate's own delivery log in :meth:`refresh`, so the
    # replicated copies' fan-out can be skipped.
    deliver_scope = "proposer"

    def __init__(
        self,
        clock: Clock,
        registry: Optional[MetricsRegistry] = None,
        max_pending: int = 65536,
        zones: Optional[Sequence[int]] = None,
    ) -> None:
        self.clock = clock
        # Geo runs: ``zones[node_id]`` labels the decide/latency stream
        # per region.  None (the default) registers no zone families at
        # all, so single-zone runs pay nothing.
        self.zones: Optional[Tuple[int, ...]] = (
            tuple(zones) if zones is not None else None
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_pending = max_pending
        r = self.registry
        self.proposes = r.counter(
            "repro_proposes_total", "commands submitted via C-PROPOSE", ("node",)
        )
        self.decides = r.counter(
            "repro_decides_total",
            "commands delivered at their proposer, by decision path",
            ("node", "path"),
        )
        self.deliveries = r.counter(
            "repro_deliveries_total", "per-node application deliveries", ("node",)
        )
        self.latency = r.histogram(
            "repro_command_latency_seconds",
            "propose-to-proposer-delivery latency by decision path",
            ("path",),
        )
        self.wire_messages = r.counter(
            "repro_wire_messages_total", "messages flushed to the wire", ("node",)
        )
        self.wire_bytes = r.counter(
            "repro_wire_bytes_total", "payload bytes flushed to the wire", ("node",)
        )
        self.outbox_depth = r.gauge(
            "repro_outbox_depth",
            "queued frames behind the per-destination sender",
            ("node",),
        )
        self.client_window = r.gauge(
            "repro_client_inflight",
            "client pipeline depth (PipelineDriver inflight notes)",
            ("node",),
        )
        self.inflight = r.gauge(
            "repro_inflight_commands",
            "commands proposed but not yet delivered at their proposer",
        )
        self.fsyncs = r.counter(
            "repro_fsyncs_total", "group-commit storage flushes", ("node",)
        )
        self.fsync_seconds = r.histogram(
            "repro_fsync_seconds",
            "wall time of one storage flush (persist call)",
            ("node",),
            low=1e-7,
            high=1e2,
        )
        self.epoch_bumps = r.counter(
            "repro_ownership_epoch_bumps_total",
            "ownership epoch bumps (acquisition attempts)",
            ("object_shard",),
        )
        self.handoffs = r.counter(
            "repro_ownership_handoffs_total",
            "completed ownership handoffs",
            ("object_shard",),
        )
        self.faults = r.counter(
            "repro_faults_total", "injected crash/restart events", ("node", "event")
        )
        self.migrations = r.counter(
            "repro_ownership_migrations_total",
            "policy-chosen acquisitions away from a live remote owner",
            ("node",),
        )
        self.reads_local = r.counter(
            "repro_reads_local_total",
            "reads served locally under an ownership lease (no consensus)",
            ("node",),
        )
        self.session_hits = r.counter(
            "repro_session_hits_total",
            "retries answered from the exactly-once session cache",
            ("node",),
        )
        self.session_evictions = r.counter(
            "repro_session_evictions_total",
            "session dedup entries evicted by the session_cap bound",
            ("node",),
        )
        self.zone_decides = None
        self.zone_latency = None
        if self.zones is not None:
            self.zone_decides = r.counter(
                "repro_zone_decides_total",
                "proposer-side completions by proposer zone and path",
                ("zone", "path"),
            )
            self.zone_latency = r.histogram(
                "repro_zone_command_latency_seconds",
                "propose-to-proposer-delivery latency by proposer zone",
                ("zone",),
            )
        self.dropped = r.counter(
            "repro_telemetry_dropped_commands_total",
            "commands not latency-tracked because max_pending was hit",
        )
        # cid -> (proposed_at, worst path seen so far).  Popped at
        # proposer delivery; bounded by max_pending.
        self._pending: Dict[Tuple[int, int], Tuple[float, str]] = {}
        # Resolved-child caches for the per-event hooks: one dict probe
        # instead of a ``child()`` varargs call (tuple pack, arity
        # check, family dict get) on every event.  Bounded by the same
        # label cardinality as the families themselves.
        self._inflight_gauge = self.inflight.child()
        self._proposes_c: Dict[int, object] = {}
        self._deliveries_c: Dict[int, object] = {}
        self._wire_messages_c: Dict[int, object] = {}
        self._wire_bytes_c: Dict[int, object] = {}
        self._outbox_depth_c: Dict[int, object] = {}
        self._decides_c: Dict[Tuple[int, str], object] = {}
        self._latency_c: Dict[str, object] = {}
        self._zone_decides_c: Dict[Tuple[str, str], object] = {}
        self._zone_latency_c: Dict[str, object] = {}
        self._migrations_c: Dict[int, object] = {}
        self._reads_local_c: Dict[int, object] = {}
        self._session_hits_c: Dict[int, object] = {}
        self._session_evict_c: Dict[int, object] = {}
        # Note dispatch by kind: one dict probe per note, and kinds this
        # collector does not track (``decide``, ``quorum``, ...) -- the
        # majority of note traffic under load -- fall out immediately
        # instead of walking a comparison chain.
        self._note_handlers = {
            "path": self._note_path,
            "wire_bytes": self._note_wire_bytes,
            "outbox_depth": self._note_outbox_depth,
            "inflight": self._note_inflight,
            "fsync": self._note_fsync,
            "epoch_bump": self._note_epoch_bump,
            "owner_handoff": self._note_owner_handoff,
            "migration": self._note_migration,
            "fault": self._note_fault,
            "read_local": self._note_read_local,
            "session_hit": self._note_session_hit,
            "session_evict": self._note_session_evict,
        }
        # Subscribe to exactly the kinds handled above: the env then
        # never calls us for the trace-layer kinds (``decide``,
        # ``quorum``) that dominate note traffic under load.
        self.note_kinds = frozenset(self._note_handlers)
        # Shadow ``on_note`` with a per-instance closure: one of the
        # busiest hooks under saturation skips the descriptor bind and
        # both attribute loads on every call.
        note_get = self._note_handlers.get

        def _dispatch_note(node_id: int, kind: str, fields: dict) -> None:
            handler = note_get(kind)
            if handler is not None:
                handler(node_id, fields)

        self.on_note = _dispatch_note  # type: ignore[method-assign]
        self._now = clock.now
        # Fault events since the last sampler drain, stamped into frames.
        self.interval_faults: List[Tuple[int, str]] = []
        self._attached: list = []
        self._nodes: list = []

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self, cluster) -> None:
        for node in cluster.nodes:
            node.env.add_observer(self)
            self._attached.append(node.env)
            self._nodes.append(node)

    def detach(self) -> None:
        self.refresh()  # final pull so totals survive the detach
        for env in self._attached:
            env.remove_observer(self)
        self._attached.clear()
        self._nodes.clear()

    def refresh(self) -> None:
        """Pull state that is readable at sampling cadence instead of
        being pushed per event: per-node delivery totals come from the
        substrate's own application log (``node.delivered``, plus the
        archived logs of finished amnesia incarnations), which both
        substrates maintain regardless of telemetry.  The sampler calls
        this before cutting each frame, so a Prometheus scrape sees
        delivery counts at most one sampling interval stale."""
        for node in self._nodes:
            total = len(node.delivered)
            for log in node.delivery_history:
                total += len(log)
            counter = self._deliveries_c.get(node.node_id)
            if counter is None:
                counter = self._deliveries_c[node.node_id] = (
                    self.deliveries.child(node.node_id)
                )
            counter.value = float(total)

    # ------------------------------------------------------------------
    # EnvObserver hooks
    # ------------------------------------------------------------------

    # The per-event bodies below mutate ``instrument.value`` directly
    # instead of calling ``inc``/``set``: every amount here is
    # structurally non-negative, so the method call would only re-check
    # that, and these hooks fire a dozen times per command at
    # saturation.

    def on_propose(self, node_id: int, command) -> None:
        counter = self._proposes_c.get(node_id)
        if counter is None:
            counter = self._proposes_c[node_id] = self.proposes.child(node_id)
        counter.value += 1.0
        cid = command.cid
        pending = self._pending
        if cid in pending:
            return  # re-proposal keeps the origin timestamp
        if len(pending) >= self.max_pending:
            self.dropped.inc()
            return
        pending[cid] = (self._now(), "fast")
        self._inflight_gauge.value = len(pending)

    def on_flush(self, node_id: int, queued, batches) -> None:
        # Byte counts arrive as ``wire_bytes`` notes from the substrate,
        # which knows the real frame sizes for free (the runtime just
        # encoded them; the sim just priced them for the network model).
        # Re-deriving them here via ``Message.size_bytes`` would walk
        # every message's fields on the hot path.
        counter = self._wire_messages_c.get(node_id)
        if counter is None:
            counter = self._wire_messages_c[node_id] = self.wire_messages.child(
                node_id
            )
        counter.value += len(queued)

    def on_deliver(self, node_id: int, command) -> None:
        # The env only routes proposer-side deliveries here
        # (``deliver_scope``); the guard keeps direct callers honest.
        if command.proposer != node_id:
            return  # completion is delivery at the proposer
        entry = self._pending.pop(command.cid, None)
        if entry is None:
            return
        proposed_at, path = entry
        self._inflight_gauge.value = len(self._pending)
        decided = self._decides_c.get((node_id, path))
        if decided is None:
            decided = self._decides_c[(node_id, path)] = self.decides.child(
                node_id, path
            )
        decided.value += 1.0
        histogram = self._latency_c.get(path)
        if histogram is None:
            histogram = self._latency_c[path] = self.latency.child(path)
        latency = self._now() - proposed_at
        histogram.observe(latency)
        if self.zones is not None:
            zone = str(self.zones[node_id])
            decided = self._zone_decides_c.get((zone, path))
            if decided is None:
                decided = self._zone_decides_c[(zone, path)] = (
                    self.zone_decides.child(zone, path)
                )
            decided.value += 1.0
            histogram = self._zone_latency_c.get(zone)
            if histogram is None:
                histogram = self._zone_latency_c[zone] = (
                    self.zone_latency.child(zone)
                )
            histogram.observe(latency)

    def on_note(self, node_id: int, kind: str, fields: dict) -> None:
        handler = self._note_handlers.get(kind)
        if handler is not None:
            handler(node_id, fields)

    def _note_path(self, node_id: int, fields: dict) -> None:
        entry = self._pending.get(fields["cid"])
        if entry is not None:
            path = fields["path"]
            # Escalate only: fast < forward < slow < acquisition.
            if PATH_SEVERITY.get(path, 0) > PATH_SEVERITY.get(entry[1], 0):
                self._pending[fields["cid"]] = (entry[0], path)

    def _note_wire_bytes(self, node_id: int, fields: dict) -> None:
        counter = self._wire_bytes_c.get(node_id)
        if counter is None:
            counter = self._wire_bytes_c[node_id] = self.wire_bytes.child(
                node_id
            )
        counter.value += fields["bytes"]

    def _note_outbox_depth(self, node_id: int, fields: dict) -> None:
        gauge = self._outbox_depth_c.get(node_id)
        if gauge is None:
            gauge = self._outbox_depth_c[node_id] = self.outbox_depth.child(
                node_id
            )
        depth = fields["depth"]
        if depth > gauge.value:
            gauge.value = depth

    def _note_inflight(self, node_id: int, fields: dict) -> None:
        self.client_window.child(node_id).set(fields["depth"])

    def _note_fsync(self, node_id: int, fields: dict) -> None:
        self.fsyncs.child(node_id).inc()
        seconds = fields.get("seconds")
        if seconds is not None:
            self.fsync_seconds.child(node_id).observe(seconds)

    def _note_epoch_bump(self, node_id: int, fields: dict) -> None:
        self.epoch_bumps.child(str(fields["obj"])).inc()

    def _note_owner_handoff(self, node_id: int, fields: dict) -> None:
        self.handoffs.child(str(fields["obj"])).inc()

    def _note_migration(self, node_id: int, fields: dict) -> None:
        counter = self._migrations_c.get(node_id)
        if counter is None:
            counter = self._migrations_c[node_id] = self.migrations.child(
                node_id
            )
        counter.value += 1.0

    def _note_fault(self, node_id: int, fields: dict) -> None:
        event = fields["event"]
        self.faults.child(node_id, event).inc()
        self.interval_faults.append((node_id, event))

    def _complete_without_consensus(
        self, node_id: int, fields: dict, path: str
    ) -> None:
        """A read (or session replay) finished at its proposer without a
        decide: close its latency window under the serving-tier path."""
        entry = self._pending.pop(fields.get("cid"), None)
        if entry is None:
            return
        proposed_at, _ = entry
        self._inflight_gauge.value = len(self._pending)
        decided = self._decides_c.get((node_id, path))
        if decided is None:
            decided = self._decides_c[(node_id, path)] = self.decides.child(
                node_id, path
            )
        decided.value += 1.0
        histogram = self._latency_c.get(path)
        if histogram is None:
            histogram = self._latency_c[path] = self.latency.child(path)
        histogram.observe(self._now() - proposed_at)

    def _note_read_local(self, node_id: int, fields: dict) -> None:
        counter = self._reads_local_c.get(node_id)
        if counter is None:
            counter = self._reads_local_c[node_id] = self.reads_local.child(
                node_id
            )
        counter.value += 1.0
        self._complete_without_consensus(node_id, fields, "read_local")

    def _note_session_hit(self, node_id: int, fields: dict) -> None:
        counter = self._session_hits_c.get(node_id)
        if counter is None:
            counter = self._session_hits_c[node_id] = self.session_hits.child(
                node_id
            )
        counter.value += 1.0
        self._complete_without_consensus(node_id, fields, "session_hit")

    def _note_session_evict(self, node_id: int, fields: dict) -> None:
        counter = self._session_evict_c.get(node_id)
        if counter is None:
            counter = self._session_evict_c[node_id] = (
                self.session_evictions.child(node_id)
            )
        counter.value += 1.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def pending(self) -> int:
        """Commands proposed but not yet delivered at their proposer."""
        return len(self._pending)

    def drain_faults(self) -> List[Tuple[int, str]]:
        faults, self.interval_faults = self.interval_faults, []
        return faults
