"""Live, bounded-memory telemetry shared by both substrates.

Layers (each usable alone):

- :mod:`~repro.obs.telemetry.sketch` — ``LogSketch`` streaming quantile
  sketch: fixed log-scale buckets, O(buckets) quantiles, documented
  relative-error bound.
- :mod:`~repro.obs.telemetry.registry` — typed instruments (Counter,
  Gauge, sketch-backed Histogram) with labels under a ``MetricsRegistry``.
- :mod:`~repro.obs.telemetry.collector` — ``TelemetryCollector``, an
  ``EnvObserver`` folding the event stream into the registry with O(1)
  per-command state.
- :mod:`~repro.obs.telemetry.sampler` — ``IntervalSampler`` cutting
  per-interval ``Frame``s into a ring buffer (virtual-clock timers in
  the sim, an asyncio task in the runtime), JSONL export.
- :mod:`~repro.obs.telemetry.health` — ``HealthDetector`` emitting
  ``contention`` / ``overload`` / ``stall`` events from frames.
- :mod:`~repro.obs.telemetry.prometheus` — text-format exposition and a
  minimal per-node HTTP ``/metrics`` server.
- :mod:`~repro.obs.telemetry.service` — the ``Telemetry`` facade wiring
  all of the above to a cluster of either substrate.
"""

from .collector import PATHS, TelemetryCollector
from .health import HealthConfig, HealthDetector, HealthEvent
from .prometheus import MetricsServer, render_prometheus
from .registry import Counter, Gauge, Histogram, MetricFamily, MetricsRegistry
from .sampler import Frame, IntervalSampler
from .service import Telemetry
from .sketch import LogSketch
from .top import render_frames, render_screen, zone_rows

__all__ = [
    "PATHS",
    "Counter",
    "Frame",
    "Gauge",
    "HealthConfig",
    "HealthDetector",
    "HealthEvent",
    "Histogram",
    "IntervalSampler",
    "LogSketch",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsServer",
    "Telemetry",
    "TelemetryCollector",
    "render_frames",
    "render_prometheus",
    "render_screen",
    "zone_rows",
]
