"""Interval sampling: registry snapshots into a ring of frames.

The :class:`IntervalSampler` differences the live registry on a cadence
and appends one :class:`Frame` per interval to a bounded ring buffer.
Cadence semantics follow the substrate's clock:

- **Simulator**: a repeating event-loop timer fires ``sample()`` every
  ``interval`` *virtual* seconds.  The callback only reads, so decision
  logs stay byte-identical with the sampler attached (sampler events
  shift event sequence numbers but never the relative order of protocol
  events).  Note that a repeating timer keeps the loop's heap non-empty:
  drive sampled sim runs with ``run_for``/``run_until`` (not
  run-to-quiescence) or ``stop()`` the sampler first.
- **Runtime**: an asyncio task sleeps ``interval`` *wall* seconds
  between samples.

Frames are plain data (``to_dict`` → JSONL exportable) and are fanned to
listeners as they are cut — the :class:`~repro.obs.telemetry.health.HealthDetector`
is one such listener, `repro top` is another.
"""

from __future__ import annotations

import asyncio
import json
import math
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.clock import Clock

from .collector import PATHS, TelemetryCollector

FrameListener = Callable[["Frame"], None]


@dataclass(frozen=True)
class Frame:
    """Aggregates for one sampling interval (deltas unless noted)."""

    index: int
    start: float
    end: float
    proposes: int
    decides: int
    deliveries: int
    throughput: float  # decides per second over the interval
    path_counts: Dict[str, int]
    path_p50: Dict[str, float]  # seconds; NaN when the path saw nothing
    path_p99: Dict[str, float]
    p50: float  # across all paths
    p99: float
    fast_share: float  # NaN when no decides
    inflight: int  # gauge at sample time (pending at proposers)
    client_window: int  # max PipelineDriver depth across nodes
    outbox_depth: int  # max per-destination outbox depth seen
    wire_messages: int
    wire_bytes: int
    fsyncs: int
    fsync_p99: float  # seconds; NaN when no fsyncs this interval
    epoch_bumps: int
    handoffs: int
    dropped_commands: int  # cumulative, not a delta
    faults: Tuple[Tuple[int, str], ...] = field(default_factory=tuple)
    # Geo fields (empty/zero on single-zone runs): ownership migrations
    # this interval, and per-zone decide/latency breakdowns keyed by
    # zone label.
    migrations: int = 0
    # Serving tier (zero on lease-less runs): reads answered locally
    # under a lease, retries answered from the session cache, and
    # session entries evicted by the cap -- all interval deltas.  Served
    # completions also appear in ``path_counts`` under "read_local" /
    # "session_hit" (and hence in ``decides``/``throughput``).
    reads_local: int = 0
    session_hits: int = 0
    session_evictions: int = 0
    zone_decides: Dict[str, int] = field(default_factory=dict)
    zone_fast_share: Dict[str, float] = field(default_factory=dict)
    zone_p50: Dict[str, float] = field(default_factory=dict)
    zone_p99: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def path_ratio(self, path: str) -> float:
        """Share of this interval's decides that took ``path``."""
        if not self.decides:
            return float("nan")
        return self.path_counts.get(path, 0) / self.decides

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["faults"] = [list(f) for f in self.faults]
        return payload


class _CounterState:
    """Previous totals for delta computation, keyed by family/label."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.by_path: Dict[str, float] = {}
        self.sketches: Dict[str, object] = {}  # name -> LogSketch.state()


class IntervalSampler:
    """Cut per-interval frames from a :class:`TelemetryCollector`."""

    def __init__(
        self,
        collector: TelemetryCollector,
        clock: Clock,
        interval: float = 0.25,
        ring: int = 240,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.collector = collector
        self.clock = clock
        self.interval = interval
        self.frames: Deque[Frame] = deque(maxlen=ring)
        self.listeners: List[FrameListener] = []
        self._prev = _CounterState()
        self._window_start = clock.now()
        self._index = 0
        self._sim_timer = None
        self._wall_task: Optional[asyncio.Task] = None

    def add_listener(self, listener: FrameListener) -> None:
        self.listeners.append(listener)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _delta(self, family) -> float:
        current = family.total()
        previous = self._prev.totals.get(family.name, 0.0)
        self._prev.totals[family.name] = current
        return current - previous

    def _path_deltas(self) -> Dict[str, int]:
        grouped = self.collector.decides.totals_by("path")
        deltas: Dict[str, int] = {}
        for path in PATHS:
            current = grouped.get(path, 0.0)
            previous = self._prev.by_path.get(path, 0.0)
            self._prev.by_path[path] = current
            delta = int(current - previous)
            if delta:
                deltas[path] = delta
        return deltas

    def _interval_sketch(self, name: str, sketch):
        previous = self._prev.sketches.get(name)
        self._prev.sketches[name] = sketch.state()
        return sketch.since(previous)

    def sample(self) -> Frame:
        """Cut one frame covering [previous sample, now)."""
        collector = self.collector
        # Pull-updated instruments (per-node delivery totals) refresh at
        # sampling cadence, right before the deltas are taken.
        collector.refresh()
        now = self.clock.now()
        duration = now - self._window_start
        proposes = self._delta(collector.proposes)
        decides_by_path = self._path_deltas()
        decides = sum(decides_by_path.values())
        deliveries = self._delta(collector.deliveries)

        path_p50: Dict[str, float] = {}
        path_p99: Dict[str, float] = {}
        overall = None
        for path in PATHS:
            child = collector.latency.children.get((path,))
            if child is None:
                continue
            interval_sketch = self._interval_sketch(f"latency:{path}", child.sketch)
            if overall is None:
                overall = interval_sketch
            else:
                overall.merge(interval_sketch)
            if interval_sketch.count:
                path_p50[path] = interval_sketch.quantile(50)
                path_p99[path] = interval_sketch.quantile(99)
        nan = float("nan")
        p50 = overall.quantile(50) if overall is not None else nan
        p99 = overall.quantile(99) if overall is not None else nan

        fsync_p99 = nan
        fsyncs = int(self._delta(collector.fsyncs))
        fsync_overall = None
        for key, child in collector.fsync_seconds.children.items():
            interval_sketch = self._interval_sketch(
                f"fsync:{key[0]}", child.sketch
            )
            if fsync_overall is None:
                fsync_overall = interval_sketch
            else:
                fsync_overall.merge(interval_sketch)
        if fsync_overall is not None and fsync_overall.count:
            fsync_p99 = fsync_overall.quantile(99)

        zone_decides: Dict[str, int] = {}
        zone_fast: Dict[str, int] = {}
        zone_p50: Dict[str, float] = {}
        zone_p99: Dict[str, float] = {}
        if collector.zone_decides is not None:
            for (zone, path), child in collector.zone_decides.children.items():
                key = f"zone_decides:{zone}:{path}"
                previous = self._prev.totals.get(key, 0.0)
                self._prev.totals[key] = child.value
                delta = int(child.value - previous)
                if delta:
                    zone_decides[zone] = zone_decides.get(zone, 0) + delta
                    if path == "fast":
                        zone_fast[zone] = zone_fast.get(zone, 0) + delta
            for (zone,), child in collector.zone_latency.children.items():
                interval_sketch = self._interval_sketch(
                    f"zone_latency:{zone}", child.sketch
                )
                if interval_sketch.count:
                    zone_p50[zone] = interval_sketch.quantile(50)
                    zone_p99[zone] = interval_sketch.quantile(99)
        zone_fast_share = {
            zone: zone_fast.get(zone, 0) / count
            for zone, count in zone_decides.items()
        }

        outbox = collector.outbox_depth.children.values()
        window = collector.client_window.children.values()
        frame = Frame(
            index=self._index,
            start=self._window_start,
            end=now,
            proposes=int(proposes),
            decides=decides,
            deliveries=int(deliveries),
            throughput=decides / duration if duration > 0 else 0.0,
            path_counts=decides_by_path,
            path_p50=path_p50,
            path_p99=path_p99,
            p50=p50,
            p99=p99,
            fast_share=(
                decides_by_path.get("fast", 0) / decides if decides else nan
            ),
            inflight=collector.pending(),
            client_window=int(max((g.value for g in window), default=0)),
            outbox_depth=int(max((g.value for g in outbox), default=0)),
            wire_messages=int(self._delta(collector.wire_messages)),
            wire_bytes=int(self._delta(collector.wire_bytes)),
            fsyncs=fsyncs,
            fsync_p99=fsync_p99,
            epoch_bumps=int(self._delta(collector.epoch_bumps)),
            handoffs=int(self._delta(collector.handoffs)),
            dropped_commands=int(collector.dropped.value),
            faults=tuple(collector.drain_faults()),
            migrations=int(self._delta(collector.migrations)),
            reads_local=int(self._delta(collector.reads_local)),
            session_hits=int(self._delta(collector.session_hits)),
            session_evictions=int(self._delta(collector.session_evictions)),
            zone_decides=zone_decides,
            zone_fast_share=zone_fast_share,
            zone_p50=zone_p50,
            zone_p99=zone_p99,
        )
        self._window_start = now
        self._index += 1
        self.frames.append(frame)
        for listener in self.listeners:
            listener(frame)
        return frame

    # ------------------------------------------------------------------
    # Scheduling — virtual clock (sim) or wall clock (runtime)
    # ------------------------------------------------------------------

    def start_sim(self, loop) -> None:
        """Repeat ``sample()`` every ``interval`` virtual seconds."""
        if self._sim_timer is not None:
            raise RuntimeError("sampler already started")
        self._window_start = self.clock.now()
        self._sim_timer = loop.schedule_repeating(self.interval, self.sample)

    def start_runtime(self) -> None:
        """Repeat ``sample()`` every ``interval`` wall seconds (asyncio)."""
        if self._wall_task is not None:
            raise RuntimeError("sampler already started")
        self._window_start = self.clock.now()

        async def _run() -> None:
            while True:
                await asyncio.sleep(self.interval)
                self.sample()

        self._wall_task = asyncio.get_running_loop().create_task(_run())

    def stop(self) -> None:
        if self._sim_timer is not None:
            self._sim_timer.cancel()
            self._sim_timer = None
        if self._wall_task is not None:
            self._wall_task.cancel()
            self._wall_task = None

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def write_jsonl(self, path: str) -> int:
        """Write every buffered frame as one JSON object per line."""
        count = 0
        with open(path, "w", encoding="utf-8") as fh:
            for frame in self.frames:
                fh.write(json.dumps(_jsonable(frame.to_dict())) + "\n")
                count += 1
        return count


def _jsonable(obj):
    """JSON has no NaN; export them as null."""
    if isinstance(obj, float) and math.isnan(obj):
        return None
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj
