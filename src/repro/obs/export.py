"""Trace exporters: JSONL structured log and Chrome trace-event JSON.

The Chrome format (one JSON object with a ``traceEvents`` array of
``ph: "X"`` complete events, timestamps in microseconds) loads directly
in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``: one
track per node, command spans on the proposer's track, handler spans
underneath.  The JSONL export is one self-describing object per line
(``kind`` field), for ad-hoc analysis with ``jq`` or pandas.
"""

from __future__ import annotations

import json
from typing import Iterator

from repro.obs.collect import ObsCollector

# Chrome trace "tid" lanes within one node's "pid" track.
_TID_COMMANDS = 0
_TID_HANDLERS = 1
_TID_WIRE = 2
_TID_FAULTS = 3

_CATEGORY_TID = {
    "command": _TID_COMMANDS,
    "handler": _TID_HANDLERS,
    "wire": _TID_WIRE,
    "fault": _TID_FAULTS,
}

_TID_LABELS = (
    (_TID_COMMANDS, "commands"),
    (_TID_HANDLERS, "handlers"),
    (_TID_WIRE, "wire"),
    (_TID_FAULTS, "faults"),
)


def chrome_trace_events(collector: ObsCollector) -> list[dict]:
    """The ``traceEvents`` array for one collected run."""
    events: list[dict] = []
    nodes = {span.node for span in collector.spans} | {
        trace.proposer for trace in collector.traces.values()
    }
    for node in sorted(nodes):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": node,
                "tid": 0,
                "args": {"name": f"node {node}"},
            }
        )
        for tid, label in _TID_LABELS:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": node,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
    for span in collector.spans:
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.node,
                "tid": _CATEGORY_TID.get(span.category, _TID_HANDLERS),
                "args": span.args,
            }
        )
    return events


def to_chrome_trace(collector: ObsCollector) -> dict:
    return {
        "traceEvents": chrome_trace_events(collector),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(collector: ObsCollector, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(collector), fh)


def _cid_str(cid: tuple[int, int]) -> str:
    return f"{cid[0]}.{cid[1]}"


def jsonl_records(collector: ObsCollector) -> Iterator[dict]:
    """One record per command trace, handler stat, and gauge."""
    for trace in collector.traces.values():
        yield {
            "kind": "command",
            "cid": _cid_str(trace.cid),
            "proposer": trace.proposer,
            "path": trace.resolved_path,
            "forward_hops": trace.forward_hops,
            "epoch_bumps": trace.epoch_bumps,
            "proposed_at": trace.proposed_at,
            "quorum_at": trace.quorum_at,
            "decided_at": trace.decided_at,
            "delivered_at": trace.delivered_at,
            "latency": trace.latency,
            "decision_latency": trace.decision_latency,
        }
    for name, stats in sorted(collector.handler_stats.items()):
        yield {
            "kind": "handler",
            "message_type": name,
            "count": stats.count,
            "cpu_seconds": stats.cpu_seconds,
        }
    for obj, bumps in sorted(collector.churn.epoch_bumps.items()):
        yield {"kind": "epoch_bumps", "object": obj, "count": bumps}
    for obj, handoffs in sorted(collector.churn.owner_handoffs.items()):
        yield {"kind": "owner_handoffs", "object": obj, "count": handoffs}
    for dst, depth in sorted(collector.outbox_depth.items()):
        yield {"kind": "outbox_depth", "destination": dst, "max_depth": depth}
    for fault in collector.faults:
        yield {
            "kind": "fault",
            "node": fault.node,
            "event": fault.event,
            "at": fault.at,
            "mode": fault.mode,
            "incarnation": fault.incarnation,
        }
    yield {
        "kind": "summary",
        "path_counts": collector.path_counts(),
        "fast_ratio": collector.fast_ratio(),
        "inflight": collector.inflight(),
        "message_types": collector.message_types,
        "flush_batches": collector.flush_batches,
        "wire_messages": collector.wire_messages,
        "wire_bytes": collector.wire_bytes,
    }


def write_jsonl(collector: ObsCollector, path: str) -> None:
    with open(path, "w") as fh:
        for record in jsonl_records(collector):
            fh.write(json.dumps(record) + "\n")
