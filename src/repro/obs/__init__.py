"""Substrate-independent observability: spans, traces, and exporters.

One :class:`ObsCollector` attaches to a simulated cluster or the
asyncio runtime alike (the :class:`Clock` hides the difference) and
reconstructs, per command, the paper's decision-path story: fast,
forward, or acquisition, with forward-hop counts, epoch bumps, quorum
and decide times, and delivery latency.  Exporters turn a collected
run into a JSONL log or a Chrome trace-event file viewable in
Perfetto.
"""

from repro.obs.clock import Clock, SimClock, WallClock
from repro.obs.collect import HandlerStats, ObsCollector, OwnershipChurn
from repro.obs.export import (
    jsonl_records,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.span import (
    PATH_SEVERITY,
    CommandTrace,
    PathStats,
    Span,
    fast_ratio,
    path_breakdown,
)

__all__ = [
    "Clock",
    "SimClock",
    "WallClock",
    "ObsCollector",
    "HandlerStats",
    "OwnershipChurn",
    "CommandTrace",
    "PathStats",
    "Span",
    "PATH_SEVERITY",
    "fast_ratio",
    "path_breakdown",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "jsonl_records",
]
