"""Command-line interface: quick experiments without writing a script.

Usage::

    python -m repro run --protocol m2paxos --nodes 5 --duration 0.3
    python -m repro run --protocol epaxos --workload tpcc --remote 0.15
    python -m repro compare --nodes 5
    python -m repro trace --protocol m2paxos --out trace.json
    python -m repro top --protocol m2paxos --duration 1.0
    python -m repro top --runtime --commands 2000
    python -m repro figures fig1 [--full]
    python -m repro modelcheck [--ballots 2]
    python -m repro chaos [--smoke | --list | NAME ...]
    python -m repro perf [--smoke] [--out BENCH.json]
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import PROTOCOLS, PointSpec, run_point, saturated_spec
from repro.bench.report import print_table
from repro.workloads.synthetic import SyntheticConfig
from repro.workloads.tpcc import TpccConfig


def _storage_from_args(args):
    """The :class:`~repro.storage.base.StorageConfig` the flags name, or
    None for ``--storage none`` (the default: no durability)."""
    if getattr(args, "storage", "none") == "none":
        return None
    from repro.storage.base import StorageConfig

    storage_dir = args.storage_dir
    if args.storage == "disk" and storage_dir is None:
        import tempfile

        storage_dir = tempfile.mkdtemp(prefix="repro-storage-")
        print(f"storage: disk logs under {storage_dir}")
    return StorageConfig(
        kind=args.storage,
        dir=storage_dir,
        fsync_wait=args.fsync_wait,
        snapshot_every=args.snapshot_every,
    )


def _parse_zones(text: str) -> tuple[int, ...]:
    """``"0,0,1,1,2"`` -> ``(0, 0, 1, 1, 2)`` (node -> zone map)."""
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"zones must be comma-separated integers, got {text!r}"
        )


def _zone_shape_from_args(args):
    """The ``(zones, zone_latency)`` pair the geo flags describe."""
    if getattr(args, "zones", None) is None:
        return None, None
    from repro.spec import ZoneLatency

    zones = _parse_zones(args.zones)
    latency = ZoneLatency(
        intra=args.zone_intra_ms * 1e-3,
        inter=args.zone_inter_ms * 1e-3,
        jitter=args.zone_jitter_ms * 1e-3,
    )
    return zones, latency


def _spec_from_args(args, protocol: str) -> PointSpec:
    zones, zone_latency = _zone_shape_from_args(args)
    spec = PointSpec(
        protocol=protocol,
        n_nodes=args.nodes,
        workload=args.workload,
        synthetic=SyntheticConfig(
            locality=args.locality,
            complex_fraction=args.complex,
            local_set_size=args.local_set,
            read_fraction=args.read_fraction,
        ),
        tpcc=TpccConfig(remote_warehouse_prob=args.remote),
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
        cores=args.cores,
        storage=_storage_from_args(args),
        zones=zones,
        zone_latency=zone_latency,
        zone_affinity=getattr(args, "zone_affinity", False),
        lease_duration=args.leases,
        sessions_per_node=args.sessions,
    )
    if args.saturate:
        spec = saturated_spec(spec)
    return spec


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=5)
    parser.add_argument("--workload", choices=("synthetic", "tpcc"), default="synthetic")
    parser.add_argument("--locality", type=float, default=1.0)
    parser.add_argument("--complex", type=float, default=0.0)
    parser.add_argument("--local-set", dest="local_set", type=int, default=100)
    parser.add_argument("--remote", type=float, default=0.0,
                        help="TPC-C remote-warehouse probability")
    parser.add_argument("--duration", type=float, default=0.3)
    parser.add_argument("--warmup", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--cores", type=int, default=16)
    parser.add_argument("--saturate", action="store_true",
                        help="drive to saturation (max-throughput methodology)")
    parser.add_argument(
        "--telemetry-interval", type=float, default=None,
        help="live-telemetry sampling cadence in virtual seconds "
             "(default: duration/4)",
    )
    parser.add_argument(
        "--zones", default=None,
        help="geo deployment: comma-separated node->zone map "
             "(e.g. 0,0,1,1,2); must cover --nodes nodes",
    )
    parser.add_argument(
        "--zone-intra-ms", type=float, default=0.5,
        help="one-way latency inside a zone, milliseconds",
    )
    parser.add_argument(
        "--zone-inter-ms", type=float, default=40.0,
        help="one-way latency between zones, milliseconds",
    )
    parser.add_argument(
        "--zone-jitter-ms", type=float, default=0.0,
        help="symmetric per-message latency jitter, milliseconds",
    )
    parser.add_argument(
        "--zone-affinity", action="store_true",
        help="run the zone-aware ownership-migration policy "
             "(m2paxos only; requires --zones)",
    )
    parser.add_argument(
        "--read-fraction", dest="read_fraction", type=float, default=0.0,
        help="fraction of synthetic commands that are reads (0..1)",
    )
    parser.add_argument(
        "--leases", type=float, default=0.0,
        help="ownership-lease duration in virtual seconds; a leased "
             "owner answers reads locally with zero consensus messages "
             "(m2paxos only; 0 = off)",
    )
    parser.add_argument(
        "--sessions", type=int, default=0,
        help="exactly-once client sessions per node: commands carry "
             "(client_id, seq) stamps and duplicate retries replay the "
             "cached result (0 = off)",
    )
    _add_storage_args(parser)


def _add_storage_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--storage", choices=("none", "mem", "disk"), default="none",
        help="durable per-node log: none (default), deterministic "
             "in-memory segments, or real files + fsync",
    )
    parser.add_argument(
        "--storage-dir", default=None,
        help="root directory for --storage disk (default: a fresh tmpdir)",
    )
    parser.add_argument(
        "--fsync-wait", type=float, default=0.0,
        help="group-commit window in seconds (0 = fsync per event)",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=0,
        help="snapshot + truncate the log every N records (0 = never)",
    )


_RUN_COLUMNS = [
    "protocol", "throughput", "p50_ms", "p95_ms", "fast%", "reads",
    "inflight", "messages", "MB",
]


def _row(protocol: str, result) -> dict:
    return {
        "protocol": protocol,
        "throughput": result.throughput,
        "p50_ms": result.latency.p50 * 1e3 if result.latency else float("nan"),
        "p95_ms": result.latency.p95 * 1e3 if result.latency else float("nan"),
        "fast%": result.fast_ratio * 100,
        "reads": result.reads_served,
        "inflight": result.inflight,
        "messages": result.messages_sent,
        "MB": result.bytes_sent / 1e6,
    }


def _path_rows(result) -> list[dict]:
    """Per-decision-path breakdown from the span layer."""
    total = sum(stats.count for stats in result.paths.values()) or 1
    rows = []
    for path, stats in sorted(result.paths.items(), key=lambda kv: -kv[1].count):
        rows.append(
            {
                "path": path,
                "count": stats.count,
                "share%": 100.0 * stats.count / total,
                "p50_ms": stats.p50 * 1e3,
                "p99_ms": stats.p99 * 1e3,
            }
        )
    return rows


_PATH_COLUMNS = ["path", "count", "share%", "p50_ms", "p99_ms"]


def _telemetry_interval(args, spec) -> float:
    if args.telemetry_interval is not None:
        return args.telemetry_interval
    return max(spec.duration / 4.0, 0.02)


def _final_frame(telemetry):
    """The last interval frame that saw decides (else the last frame)."""
    frames = list(telemetry.frames)
    if not frames:
        return None
    active = [f for f in frames if f.decides]
    return (active or frames)[-1]


def _telemetry_frame_row(protocol: str, telemetry) -> dict | None:
    from repro.obs.telemetry.top import frame_row

    frame = _final_frame(telemetry)
    if frame is None:
        return None
    row = {"protocol": protocol}
    row.update(frame_row(frame))
    return row


_TELEMETRY_COLUMNS = [
    "protocol", "t", "cps", "fast%", "p50ms", "p99ms",
    "inflight", "outbox", "fsyncs", "churn",
]


def _print_telemetry(protocol: str, result) -> None:
    telemetry = result.extra.get("telemetry")
    if telemetry is None:
        return
    row = _telemetry_frame_row(protocol, telemetry)
    if row is None:
        return
    print_table("telemetry (final interval frame)", [row], _TELEMETRY_COLUMNS)
    from repro.obs.telemetry.top import ZONE_COLUMNS, zone_rows

    frame = _final_frame(telemetry)
    zones = zone_rows(frame) if frame is not None else []
    if zones:
        print_table("per-zone (final interval frame)", zones, ZONE_COLUMNS)
    for event in telemetry.events:
        details = ", ".join(
            f"{k}={v:.3g}" for k, v in sorted(event.details.items())
        )
        print(f"health: [{event.at:.2f}] {event.kind} ({details})")


def cmd_run(args) -> int:
    spec = _spec_from_args(args, args.protocol)
    result = run_point(
        spec, telemetry_interval=_telemetry_interval(args, spec)
    )
    print_table(
        f"{args.protocol} / {args.workload} / {args.nodes} nodes",
        [_row(args.protocol, result)],
        _RUN_COLUMNS,
    )
    print_table("decision paths", _path_rows(result), _PATH_COLUMNS)
    _print_telemetry(args.protocol, result)
    return 0


def cmd_compare(args) -> int:
    rows = []
    telemetry_rows = []
    for protocol in PROTOCOLS:
        spec = _spec_from_args(args, protocol)
        result = run_point(
            spec, telemetry_interval=_telemetry_interval(args, spec)
        )
        rows.append(_row(protocol, result))
        telemetry = result.extra.get("telemetry")
        if telemetry is not None:
            telemetry_row = _telemetry_frame_row(protocol, telemetry)
            if telemetry_row is not None:
                telemetry_rows.append(telemetry_row)
    rows.sort(key=lambda row: -row["throughput"])
    print_table(
        f"all protocols / {args.workload} / {args.nodes} nodes",
        rows,
        _RUN_COLUMNS,
    )
    if telemetry_rows:
        print_table(
            "telemetry (final interval frame per protocol)",
            telemetry_rows,
            _TELEMETRY_COLUMNS,
        )
    return 0


def cmd_top(args) -> int:
    """Live refreshing telemetry table, sim or runtime."""
    if args.runtime:
        return _top_runtime(args)

    import math

    from repro.bench.harness import build_run, fast_mode
    from repro.obs.telemetry import Telemetry, render_screen

    spec = _spec_from_args(args, args.protocol)
    if fast_mode():
        spec = spec.scaled_for_fast_mode()
    interval = args.interval
    handle = build_run(spec)
    telemetry = Telemetry(handle.cluster, interval=interval)
    telemetry.subscribe_protocols()
    telemetry.start()
    handle.start()
    total = spec.warmup + spec.duration
    for _ in range(max(1, math.ceil(total / interval))):
        handle.cluster.run_for(interval)
        print(
            render_screen(
                telemetry.frames,
                telemetry.events,
                history=args.history,
                title=f"repro top — sim {args.protocol} ({args.nodes} nodes)",
            )
        )
    telemetry.stop()
    handle.clients.stop()
    if args.jsonl:
        count = telemetry.sampler.write_jsonl(args.jsonl)
        print(f"frames: {args.jsonl} ({count} intervals)")
    return 0


def _top_runtime(args) -> int:
    """`repro top --runtime`: a real asyncio cluster under pipelined
    load, sampled on the wall clock, Prometheus endpoint per node."""
    import asyncio

    from repro.bench.harness import protocol_factory
    from repro.bench.perf import SATURATION_M2
    from repro.consensus.commands import Command
    from repro.obs.telemetry import render_screen
    from repro.runtime.cluster import LocalCluster, run
    from repro.runtime.driver import PipelineDriver

    async def main() -> int:
        cluster = LocalCluster(
            args.nodes, protocol_factory("m2paxos", **SATURATION_M2)
        )
        await cluster.start()
        telemetry = await cluster.start_telemetry(
            interval=args.interval, serve=True
        )
        for node in cluster.nodes:
            host, port = node.metrics_address
            print(f"node {node.node_id} metrics: http://{host}:{port}/metrics")
        driver = PipelineDriver(cluster, depth=16)
        n = args.nodes
        proposals = (
            (i % n, Command.make(i % n, i + 1, [f"top-{i % n}"]))
            for i in range(args.commands)
        )
        task = asyncio.ensure_future(driver.run(proposals, timeout=60.0))
        while not task.done():
            await asyncio.sleep(args.interval)
            print(
                render_screen(
                    telemetry.frames,
                    telemetry.events,
                    history=args.history,
                    title=f"repro top — runtime m2paxos ({n} nodes)",
                )
            )
        await task
        if args.jsonl:
            count = telemetry.sampler.write_jsonl(args.jsonl)
            print(f"frames: {args.jsonl} ({count} intervals)")
        await cluster.stop()
        return 0

    return run(main(), uvloop=False)


def cmd_trace(args) -> int:
    """One traced run: record spans, export Chrome JSON (Perfetto)."""
    from repro.obs import write_chrome_trace, write_jsonl

    spec = _spec_from_args(args, args.protocol)
    result = run_point(spec, record_spans=True)
    obs = result.extra["obs"]
    write_chrome_trace(obs, args.out)
    print(f"chrome trace: {args.out} ({len(obs.spans)} spans; "
          f"load in https://ui.perfetto.dev)")
    if args.jsonl:
        write_jsonl(obs, args.jsonl)
        print(f"jsonl log: {args.jsonl}")
    print_table(
        f"{args.protocol} / {args.workload} / {args.nodes} nodes",
        [_row(args.protocol, result)],
        _RUN_COLUMNS,
    )
    print_table("decision paths", _path_rows(result), _PATH_COLUMNS)
    churn = obs.churn
    if churn.total_epoch_bumps or churn.total_handoffs:
        print(
            f"ownership churn: {churn.total_epoch_bumps} epoch bumps, "
            f"{churn.total_handoffs} owner handoffs "
            f"across {len(churn.epoch_bumps)} objects"
        )
    return 0


def cmd_figures(args) -> int:
    from repro.bench.figures import main as figures_main

    argv = list(args.names)
    if args.full:
        argv.append("--full")
    figures_main(argv)
    return 0


def cmd_chaos(args) -> int:
    """Run seeded fault-injection scenarios through the safety checker.

    Every scenario runs twice; the delivery-history fingerprints must
    match (determinism) and both runs must pass the checker.
    """
    from dataclasses import replace

    from repro.chaos import DURABLE_SMOKE, SCENARIOS, SMOKE, by_name, run_scenario
    from repro.storage.base import StorageConfig

    if args.list:
        for scenario in SCENARIOS:
            print(f"{scenario.name:24s} {scenario.description}")
        return 0
    if args.names:
        scenarios = [by_name(name) for name in args.names]
    elif args.durable_smoke:
        scenarios = [by_name(name) for name in DURABLE_SMOKE]
    elif args.smoke:
        scenarios = [by_name(name) for name in SMOKE]
    else:
        scenarios = list(SCENARIOS)

    def storage_override(scenario):
        """``--storage`` reruns a scenario on a different substrate,
        keeping its snapshot/fsync/capacity knobs (disk dirs are
        per-run tmpdirs unless --storage-dir names one)."""
        if args.storage is None:
            return None
        base = scenario.storage or StorageConfig(kind="mem")
        return replace(base, kind=args.storage, dir=args.storage_dir)

    rows = []
    failed = 0
    for scenario in scenarios:
        storage = storage_override(scenario)
        first = run_scenario(scenario, storage=storage)
        second = run_scenario(scenario, storage=storage)
        deterministic = first.fingerprint == second.fingerprint
        ok = first.ok and second.ok and deterministic
        failed += 0 if ok else 1
        rows.append(
            {
                "scenario": scenario.name,
                "status": "ok" if ok else "FAIL",
                "proposed": first.proposed,
                "delivered": first.report.delivered_union,
                "dropped": first.dropped,
                "dup": first.duplicated,
                "faults": first.faults_observed,
                "deterministic": "yes" if deterministic else "NO",
            }
        )
        if not first.ok:
            for violation in first.report.violations:
                print(f"{scenario.name}: {violation}", file=sys.stderr)
        if not deterministic:
            print(
                f"{scenario.name}: fingerprints differ across two runs "
                f"({first.fingerprint[:12]} vs {second.fingerprint[:12]})",
                file=sys.stderr,
            )
    print_table(
        f"chaos suite ({len(scenarios)} scenarios, each run twice)",
        rows,
        ["scenario", "status", "proposed", "delivered",
         "dropped", "dup", "faults", "deterministic"],
    )
    if failed:
        print(f"{failed} scenario(s) failed", file=sys.stderr)
        return 1
    return 0


def cmd_perf(args) -> int:
    """Run the seeded performance microbenches; write one BENCH_*.json
    datapoint.  ``--smoke`` shrinks every bench for CI and makes the
    regression assertions (batched beats unbatched, binary beats JSON)
    fatal."""
    from repro.bench.perf import (
        PerfConfig,
        check_regressions,
        run_perf,
        write_datapoint,
    )

    config = PerfConfig(seed=args.seed, uvloop=args.uvloop)
    if args.smoke:
        config = config.scaled_for_smoke()
    datapoint = run_perf(config, only=args.benches or None)
    path = write_datapoint(datapoint, args.out)

    rows = []
    results = datapoint["results"]
    if "sim" in results:
        rows.append({"bench": "sim events/sec",
                     "value": results["sim"]["events_per_sec"]})
    if "codec" in results:
        rows.append({"bench": "codec binary/json speedup",
                     "value": results["codec"]["speedup"]})
        rows.append({"bench": "codec bytes/msg (bin)",
                     "value": results["codec"]["binary_bytes_per_msg"]})
    if "m2_batching" in results:
        rows.append({"bench": "m2 batched cmds/sec",
                     "value": results["m2_batching"]["batched"]["commands_per_sec"]})
        rows.append({"bench": "m2 batching speedup",
                     "value": results["m2_batching"]["speedup"]})
    if "runtime_tcp" in results:
        rows.append({"bench": "runtime TCP cmds/sec",
                     "value": results["runtime_tcp"]["commands_per_sec"]})
    if "runtime_saturation" in results:
        saturation = results["runtime_saturation"]
        for depth, entry in saturation["depths"].items():
            rows.append({"bench": f"runtime depth={depth} cmds/sec",
                         "value": entry["commands_per_sec"]})
        rows.append({"bench": "runtime pipelined speedup",
                     "value": saturation["pipelined_speedup"]})
    if "sim_runtime_gap" in results:
        rows.append({"bench": "sim/runtime gap ratio",
                     "value": results["sim_runtime_gap"]["gap_ratio"]})
    if "storage_fsync" in results:
        rows.append({"bench": "fsync-batched records/sec",
                     "value": results["storage_fsync"]["batched_fsync_records_per_sec"]})
        rows.append({"bench": "fsync batching speedup",
                     "value": results["storage_fsync"]["speedup"]})
    if "telemetry_overhead" in results:
        telemetry = results["telemetry_overhead"]
        rows.append({"bench": "telemetry-off cmds/sec",
                     "value": telemetry["off"]["commands_per_sec"]})
        rows.append({"bench": "telemetry-on cmds/sec",
                     "value": telemetry["on"]["commands_per_sec"]})
        rows.append({"bench": "telemetry overhead ratio",
                     "value": telemetry["overhead_ratio"]})
    if "serving" in results:
        serving = results["serving"]
        for ratio, entry in serving["ratios"].items():
            rows.append({"bench": f"serving {ratio} reads leased cmds/sec",
                         "value": entry["leased"]["commands_per_sec"]})
            rows.append({"bench": f"serving {ratio} reads speedup",
                         "value": entry["speedup"]})
        rows.append({"bench": "serving read_local speedup",
                     "value": serving["read_local_speedup"]})
        rows.append({"bench": "serving runtime speedup (90% reads)",
                     "value": serving["runtime"]["speedup"]})
    if "geo" in results:
        geo = results["geo"]
        rows.append({"bench": "geo pinned remote p50 ms",
                     "value": geo["pinned"]["remote_p50_ms"]})
        rows.append({"bench": "geo affinity remote p50 ms",
                     "value": geo["zone_affinity"]["remote_p50_ms"]})
        rows.append({"bench": "geo affinity+flex remote p50 ms",
                     "value": geo["zone_affinity_flex"]["remote_p50_ms"]})
        rows.append({"bench": "geo remote p50 improvement",
                     "value": geo["remote_p50_improvement"]})
        rows.append({"bench": "geo flex remote p50 improvement",
                     "value": geo["flex_remote_p50_improvement"]})
        rows.append({"bench": "geo flex+nearest remote p50 improvement",
                     "value": geo["flex_nearest_remote_p50_improvement"]})
    print_table(f"perf ({', '.join(results) or 'none'})", rows, ["bench", "value"])
    print(f"datapoint: {path}")

    problems = check_regressions(datapoint)
    for problem in problems:
        print(f"perf regression: {problem}", file=sys.stderr)
    if problems:
        return 1
    return 0


def _quorum_from_args(args):
    """The :class:`~repro.core.quorum.QuorumSystem` spec the modelcheck
    flags name (always non-None; majority is the default)."""
    from repro.core.quorum import (
        FlexibleQuorums,
        MajorityQuorums,
        ZoneQuorums,
    )

    if args.quorum == "flexible":
        return FlexibleQuorums(prepare=args.prepare, accept=args.accept)
    if args.quorum == "zone":
        return ZoneQuorums(_parse_zones(args.zones or "0,0,1,1,2"))
    return MajorityQuorums()


def cmd_modelcheck(args) -> int:
    from repro.core.modelcheck import (
        ModelChecker,
        ModelConfig,
        verify_intersections,
    )
    from repro.core.quorum import check_fast_collision_intersections

    system = _quorum_from_args(args)

    # Phase 1: exhaustive prepare x accept intersection sweep over
    # cluster sizes 3..5 (the Flexible Paxos safety condition).  Sizes
    # the spec cannot bind to (a zone map pins one n) are skipped.
    results = verify_intersections(system, n_lo=3, n_hi=5)
    failed = False
    for n, problems in sorted(results.items()):
        if problems:
            failed = True
            print(f"intersections n={n}: {len(problems)} violation(s)")
            for problem in problems[:3]:
                print(f"  {problem}")
        else:
            bound = system.build(n)
            triple = check_fast_collision_intersections(bound)
            note = (
                "" if not triple
                else " (FastPaxos triple condition fails -- informational:"
                " striped epochs rule out uncoordinated fast rounds)"
            )
            print(f"intersections n={n}: ok [{bound.describe()}]{note}")
    if failed:
        print("quorum system UNSAFE: prepare/accept quorums can miss "
              "each other", file=sys.stderr)
        return 1

    # Phase 2: BFS over the abstract GFPaxos state space under the
    # configured quorum families, when the spec binds at the model size.
    try:
        config = ModelConfig(
            n_ballots=args.ballots,
            max_states=args.max_states,
            quorum_system=system,
        )
        checker = ModelChecker(config)
    except ValueError as exc:
        print(f"state search skipped: {exc} (model uses 3 acceptors)")
        return 0
    try:
        states = checker.run()
    except RuntimeError:
        print(
            f"bounded: {checker.states_explored} states (cap reached), "
            f"no violation found"
        )
        return 0
    print(f"exhaustive: {states} distinct states, no violation found")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="one protocol, one datapoint")
    run_parser.add_argument("--protocol", choices=PROTOCOLS, default="m2paxos")
    _add_run_args(run_parser)
    run_parser.set_defaults(fn=cmd_run)

    compare_parser = sub.add_parser("compare", help="all protocols, same workload")
    _add_run_args(compare_parser)
    compare_parser.set_defaults(fn=cmd_compare)

    trace_parser = sub.add_parser(
        "trace", help="one traced run; export Chrome/Perfetto trace"
    )
    trace_parser.add_argument("--protocol", choices=PROTOCOLS, default="m2paxos")
    _add_run_args(trace_parser)
    trace_parser.add_argument(
        "--out", default="trace.json", help="Chrome trace-event JSON output path"
    )
    trace_parser.add_argument(
        "--jsonl", default=None, help="also write a JSONL structured log here"
    )
    trace_parser.set_defaults(fn=cmd_trace)

    top_parser = sub.add_parser(
        "top", help="live refreshing telemetry table (sim or runtime)"
    )
    top_parser.add_argument("--protocol", choices=PROTOCOLS, default="m2paxos")
    _add_run_args(top_parser)
    top_parser.add_argument(
        "--interval", type=float, default=0.1,
        help="sampling + refresh cadence in seconds (virtual for sim, "
             "wall for --runtime)",
    )
    top_parser.add_argument(
        "--history", type=int, default=10,
        help="interval rows kept on screen",
    )
    top_parser.add_argument(
        "--runtime", action="store_true",
        help="drive a real asyncio cluster under pipelined load and "
             "serve per-node Prometheus /metrics endpoints",
    )
    top_parser.add_argument(
        "--commands", type=int, default=2000,
        help="--runtime only: proposals to pump through the pipeline",
    )
    top_parser.add_argument(
        "--jsonl", default=None, help="also export interval frames as JSONL"
    )
    top_parser.set_defaults(fn=cmd_top)

    figures_parser = sub.add_parser("figures", help="regenerate paper figures")
    figures_parser.add_argument("names", nargs="*", default=["all"])
    figures_parser.add_argument("--full", action="store_true")
    figures_parser.set_defaults(fn=cmd_figures)

    chaos_parser = sub.add_parser(
        "chaos", help="seeded fault-injection scenarios + safety checker"
    )
    chaos_parser.add_argument(
        "names", nargs="*", help="scenario names (default: full suite)"
    )
    chaos_parser.add_argument(
        "--smoke", action="store_true", help="quick CI subset"
    )
    chaos_parser.add_argument(
        "--durable-smoke", action="store_true",
        help="durable-storage CI subset (run with --storage disk for "
             "real files + fsync)",
    )
    chaos_parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    chaos_parser.add_argument(
        "--storage", choices=("none", "mem", "disk"), default=None,
        help="override each scenario's storage substrate "
             "(default: the scenario's own)",
    )
    chaos_parser.add_argument(
        "--storage-dir", default=None,
        help="root directory for --storage disk (default: per-run tmpdir)",
    )
    chaos_parser.set_defaults(fn=cmd_chaos)

    perf_parser = sub.add_parser(
        "perf", help="seeded perf microbenches; writes BENCH_<stamp>.json"
    )
    perf_parser.add_argument(
        "benches", nargs="*",
        help="subset to run: sim codec m2_batching runtime_tcp "
             "runtime_saturation storage_fsync telemetry_overhead "
             "serving geo (default: all)",
    )
    perf_parser.add_argument("--seed", type=int, default=1)
    perf_parser.add_argument(
        "--smoke", action="store_true", help="quick CI variant"
    )
    perf_parser.add_argument(
        "--uvloop", action="store_true",
        help="run runtime benches under uvloop when installed "
             "(silently falls back to stock asyncio)",
    )
    perf_parser.add_argument(
        "--out", default=None, help="datapoint path (default BENCH_<stamp>.json)"
    )
    perf_parser.set_defaults(fn=cmd_perf)

    mc_parser = sub.add_parser("modelcheck", help="exhaustive TLA+-mirror check")
    mc_parser.add_argument("--ballots", type=int, default=1)
    mc_parser.add_argument("--max-states", type=int, default=2_000_000)
    mc_parser.add_argument(
        "--quorum", choices=("majority", "flexible", "zone"),
        default="majority",
        help="quorum system to verify: intersection sweep at n=3..5, "
             "then the BFS state search under its families",
    )
    mc_parser.add_argument(
        "--prepare", type=int, default=4,
        help="--quorum flexible: phase-1 quorum size",
    )
    mc_parser.add_argument(
        "--accept", type=int, default=2,
        help="--quorum flexible: phase-2 (fast-path) quorum size",
    )
    mc_parser.add_argument(
        "--zones", default=None,
        help="--quorum zone: comma-separated node->zone map "
             "(default 0,0,1,1,2)",
    )
    mc_parser.set_defaults(fn=cmd_modelcheck)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
