"""Per-node CPU contention model.

The paper's evaluation (Figures 1 and 4) hinges on *where CPU work
happens*: Multi-Paxos saturates its single leader, EPaxos spends serial
CPU time maintaining shared dependency metadata, and M2Paxos has almost
no cross-thread shared state.  We reproduce this with a small queueing
model:

- a node has ``cores`` identical workers;
- each unit of work has a *serial* part (executed under a node-global
  lock -- one at a time) and a *parallel* part (executed on any worker);
- the model tracks, in virtual time, when the lock and each worker next
  become free, and returns the completion time of each submitted job.

With a serial fraction ``s``, per-node throughput is capped at
``1 / (s * cost)`` no matter how many cores there are -- Amdahl's law --
which is exactly the contrast between EPaxos (high ``s``) and M2Paxos
(negligible ``s``) that Figure 4 shows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuConfig:
    """Shape of a node's CPU.

    ``cores``: number of parallel workers.
    ``speed``: relative speed multiplier (1.0 = baseline c3.4xlarge core).
    """

    cores: int = 16
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.speed <= 0:
            raise ValueError("speed must be > 0")


class CpuModel:
    """Tracks busy intervals of one node's cores and serial lock."""

    def __init__(self, config: CpuConfig) -> None:
        self.config = config
        self._core_free = [0.0] * config.cores
        self._lock_free = 0.0
        self.busy_time = 0.0  # accumulated work, for utilisation stats

    def submit(self, now: float, cost: float, serial_fraction: float) -> float:
        """Submit a job arriving at ``now``; return its completion time.

        ``cost`` is the total CPU seconds the job needs on a baseline
        core.  ``serial_fraction`` of it contends on the node-global
        lock; the rest runs on the least-loaded core.
        """
        if cost < 0:
            raise ValueError("cost must be >= 0")
        if not 0.0 <= serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")
        cost = cost / self.config.speed
        serial = cost * serial_fraction
        parallel = cost - serial

        start_serial = max(now, self._lock_free)
        end_serial = start_serial + serial
        self._lock_free = end_serial

        # Least-loaded core runs the parallel part after the serial part.
        idx = min(range(len(self._core_free)), key=self._core_free.__getitem__)
        start_parallel = max(end_serial, self._core_free[idx])
        end = start_parallel + parallel
        self._core_free[idx] = end

        self.busy_time += cost
        return end

    def utilisation(self, elapsed: float) -> float:
        """Fraction of total core-time spent busy over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self.config.cores))

    def backlog(self, now: float) -> float:
        """Seconds until the most-loaded core becomes free."""
        return max(0.0, max(self._core_free) - now)
