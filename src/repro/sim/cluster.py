"""Cluster builder: N simulated nodes + network + one event loop.

This is the top-level convenience object: tests, examples, and the
benchmark harness all create a :class:`Cluster`, feed proposals in, run
virtual time forward, and then inspect delivered sequences and metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.consensus.base import Protocol
from repro.consensus.commands import Command
from repro.sim.cpu import CpuConfig
from repro.sim.event_loop import EventLoop
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import SimNode
from repro.sim.rng import RngRegistry
from repro.storage.base import StorageConfig

ProtocolFactory = Callable[[int, int], Protocol]
"""Maps ``(node_id, n_nodes)`` to a fresh protocol instance."""


@dataclass
class ClusterConfig:
    """Deployment shape for a simulated cluster.

    Deprecated as a public entry point: new code should build a
    :class:`repro.spec.ClusterSpec` and call :meth:`Cluster.from_spec`,
    which covers protocol choice, codec, and storage in one object.
    This class remains the internal carrier (and a thin shim for
    existing callers/tests).
    """

    n_nodes: int = 3
    seed: int = 0
    network: NetworkConfig = field(default_factory=NetworkConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    storage: Optional[StorageConfig] = None
    # Geo runs: zone of each node (telemetry labels + cross-zone wire
    # accounting).  None means single-zone.
    zones: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.zones is not None and len(self.zones) != self.n_nodes:
            raise ValueError(
                f"zones must assign all {self.n_nodes} nodes, "
                f"got {len(self.zones)} entries"
            )


class ConsistencyViolation(AssertionError):
    """Raised when two nodes deliver conflicting commands in different
    orders -- a violation of Generalized Consensus *Consistency*."""


class Cluster:
    """N nodes running the same protocol under one virtual clock."""

    def __init__(self, config: ClusterConfig, protocol_factory: ProtocolFactory) -> None:
        self.config = config
        self.protocol_factory = protocol_factory
        self.loop = EventLoop()
        self.rng = RngRegistry(config.seed)
        self.network = Network(
            self.loop, config.n_nodes, config.network, self.rng,
            zones=config.zones,
        )
        self.nodes: list[SimNode] = []
        for node_id in range(config.n_nodes):
            protocol = protocol_factory(node_id, config.n_nodes)
            storage = (
                config.storage.build(node_id)
                if config.storage is not None
                else None
            )
            node = SimNode(
                node_id,
                self.loop,
                self.network,
                protocol,
                self.rng,
                cpu_config=config.cpu,
                storage=storage,
            )
            self.nodes.append(node)

    @classmethod
    def from_spec(cls, spec) -> "Cluster":
        """Build from a :class:`repro.spec.ClusterSpec` -- the preferred
        constructor (one config object for both substrates)."""
        return cls(spec.sim_cluster_config(), spec.protocol_factory())

    def close_storage(self) -> None:
        """Release every node's storage resources (file handles)."""
        for node in self.nodes:
            node.env.storage.close()

    def start(self) -> None:
        """Fire every node's startup hook (e.g. initial leader election)."""
        for node in self.nodes:
            node.start()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def propose(self, node_id: int, command: Command) -> None:
        self.nodes[node_id].propose(command)

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until quiescence (or ``max_events``)."""
        self.loop.run(max_events=max_events)

    def run_for(self, duration: float) -> None:
        """Advance virtual time by ``duration`` seconds."""
        self.loop.run_until(self.loop.now + duration)

    def run_until(self, deadline: float) -> None:
        self.loop.run_until(deadline)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def crash(self, node_id: int) -> None:
        self.nodes[node_id].crash()

    def restart(self, node_id: int, mode: str = "durable") -> None:
        """Boot a new incarnation of a crashed node.

        ``mode="durable"`` with a durable storage bound replays the
        node's snapshot + log tail into a factory-fresh protocol (the
        real recovery scan); without one it falls back to the legacy
        shortcut of keeping the protocol object (its state standing in
        for the durable log) and clearing volatile round state.
        ``mode="amnesia"`` wipes the store and binds a fresh instance --
        all acceptor promises are lost, exactly the failure the paper's
        crash-recovery sketch has to survive.
        """
        node = self.nodes[node_id]
        if mode == "durable":
            if node.env.storage.durable:
                node.restart_from_storage(
                    self.protocol_factory(node_id, self.config.n_nodes)
                )
            else:
                node.restart()
        elif mode == "amnesia":
            node.env.storage.wipe()
            protocol = self.protocol_factory(node_id, self.config.n_nodes)
            node.restart(protocol)
        else:
            raise ValueError(f"unknown restart mode: {mode!r}")

    def partition(self, group_a: set[int], group_b: set[int]) -> None:
        self.network.partition(group_a, group_b)

    def heal_partitions(self) -> None:
        self.network.heal_partitions()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def delivered(self, node_id: int) -> list[Command]:
        """The sequence node ``node_id`` has delivered so far."""
        return list(self.nodes[node_id].delivered)

    def all_delivered_cids(self) -> set[tuple[int, int]]:
        """Commands delivered by at least one node."""
        return {c.cid for node in self.nodes for c in node.delivered}

    def check_consistency(self) -> None:
        """Assert the Generalized Consensus safety properties.

        For every pair of delivery logs -- the current log of every
        (possibly crashed) node plus the archived log of every past
        amnesia incarnation -- the restrictions to each object must be
        prefixes of one another, and no log may contain the same
        command twice.  An amnesia restart legitimately *re*-delivers
        from scratch, but each incarnation must replay the same
        per-object order.

        Implementation note: instead of the quadratic pairwise
        `CStruct.is_prefix_compatible`, each log's per-object sequence
        is extracted once and every sequence is compared against the
        longest -- same property, one pass over each delivery log.
        """
        labelled_logs: list[tuple[str, list]] = []
        for node in self.nodes:
            for life, log in enumerate(node.delivery_history):
                labelled_logs.append((f"node {node.node_id} (life {life})", log))
            labelled_logs.append((f"node {node.node_id}", node.delivered))
        per_log: list[dict[str, list[tuple[int, int]]]] = []
        for label, log in labelled_logs:
            seqs: dict[str, list[tuple[int, int]]] = {}
            seen: set[tuple[int, int]] = set()
            for command in log:
                if command.cid in seen:
                    raise ConsistencyViolation(
                        f"{label} delivered {command} twice"
                    )
                seen.add(command.cid)
                for obj in command.ls:
                    seqs.setdefault(obj, []).append(command.cid)
            per_log.append(seqs)
        all_objects = set()
        for seqs in per_log:
            all_objects.update(seqs)
        for obj in all_objects:
            sequences = [seqs.get(obj, []) for seqs in per_log]
            longest = max(sequences, key=len)
            for (label, _log), seq in zip(labelled_logs, sequences):
                if seq != longest[: len(seq)]:
                    raise ConsistencyViolation(
                        f"object {obj!r}: {label} delivered conflicting "
                        f"commands in a different order"
                    )
