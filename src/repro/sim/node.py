"""Simulated node: hosts a protocol, charges CPU time, keeps timers.

The node is the glue between the sans-I/O protocol object and the
simulation substrate.  Every inbound event (message, propose, timer)
passes through the node's :class:`repro.sim.cpu.CpuModel`, so protocol
handlers *complete* only after their simulated CPU cost has been paid --
this is what creates the saturation behaviour the paper's throughput
figures measure.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.consensus.base import Env, Message, Protocol, TimerHandle
from repro.consensus.commands import Command
from repro.sim.cpu import CpuConfig, CpuModel
from repro.sim.event_loop import Event, EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngRegistry


class _SimTimer(TimerHandle):
    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancel()


class SimEnv(Env):
    """The :class:`Env` implementation backed by the simulator."""

    def __init__(self, node: "SimNode") -> None:
        self._node = node
        self.node_id = node.node_id
        self.n_nodes = node.network.n_nodes

    def send(self, dst: int, message: Message) -> None:
        node = self._node
        # Sending costs CPU (serialisation + syscall); batching amortises
        # it.  The cost occupies the sender's cores but does not delay the
        # message itself (the NIC drains asynchronously).
        cost = node.protocol.costs.send_cost
        if node.network.config.batching:
            cost /= node.network.config.batch_factor
        if cost > 0:
            node.cpu.submit(node.loop.now, cost, 0.0)
        node.network.send(self.node_id, dst, message, message.size_bytes())

    def set_timer(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        node = self._node

        def fire() -> None:
            if not node.crashed:
                callback()

        return _SimTimer(node.loop.schedule(delay, fire))

    def now(self) -> float:
        return self._node.loop.now

    def deliver(self, command: Command) -> None:
        self._node.on_deliver(command)

    @property
    def rng(self) -> random.Random:
        return self._node.rng


class SimNode:
    """One simulated machine running one protocol instance."""

    def __init__(
        self,
        node_id: int,
        loop: EventLoop,
        network: Network,
        protocol: Protocol,
        rng: RngRegistry,
        cpu_config: Optional[CpuConfig] = None,
    ) -> None:
        self.node_id = node_id
        self.loop = loop
        self.network = network
        self.protocol = protocol
        self.rng = rng.stream(f"node-{node_id}")
        self.cpu = CpuModel(cpu_config or CpuConfig())
        self.crashed = False
        self.delivered: list[Command] = []
        self.deliver_listeners: list[Callable[[int, Command, float], None]] = []

        self.env = SimEnv(self)
        protocol.bind(self.env)
        network.register(node_id, self._on_network_message)

    def start(self) -> None:
        """Run the protocol's startup hook (leader election etc.)."""
        self.protocol.on_start()

    # ------------------------------------------------------------------
    # Inbound events -- all charged to the CPU model.
    # ------------------------------------------------------------------

    def _charge_and_run(self, message: Optional[Message], fn: Callable[[], None]) -> None:
        cost, serial = self.protocol.processing_cost(message)
        done = self.cpu.submit(self.loop.now, cost, serial)
        if done <= self.loop.now:
            fn()
        else:
            self.loop.schedule_at(done, fn)

    def _on_network_message(self, sender: int, message: object, size: int) -> None:
        if self.crashed:
            return
        assert isinstance(message, Message)
        occupancy, occupancy_serial = self.protocol.occupancy_cost(message)
        if occupancy > 0:
            self.cpu.submit(self.loop.now, occupancy, occupancy_serial)

        def handle() -> None:
            if not self.crashed:
                self.protocol.on_message(sender, message)

        self._charge_and_run(message, handle)

    def propose(self, command: Command) -> None:
        """Client-side C-PROPOSE entry point.

        The per-command client-handling cost is charged as occupancy
        (it loads the cores, creating the throughput ceiling, without
        sitting on the latency-critical path); the protocol handler
        itself is charged like a message.
        """
        if self.crashed:
            return
        costs = self.protocol.costs
        if costs.propose_cost > 0:
            self.cpu.submit(
                self.loop.now, costs.propose_cost, costs.propose_serial_fraction
            )

        def handle() -> None:
            if not self.crashed:
                self.protocol.propose(command)

        self._charge_and_run(None, handle)

    # ------------------------------------------------------------------
    # Delivery and failure injection
    # ------------------------------------------------------------------

    def on_deliver(self, command: Command) -> None:
        self.delivered.append(command)
        now = self.loop.now
        for listener in self.deliver_listeners:
            listener(self.node_id, command, now)

    def crash(self) -> None:
        """Crash this node: no more sends, receives, or timer firings."""
        self.crashed = True
        self.network.crash(self.node_id)
        self.protocol.crash()
