"""Simulated node: hosts a protocol, charges CPU time, keeps timers.

The node is the glue between the sans-I/O protocol object and the
simulation substrate.  Every inbound event (message, propose, timer)
passes through the node's :class:`repro.sim.cpu.CpuModel`, so protocol
handlers *complete* only after their simulated CPU cost has been paid --
this is what creates the saturation behaviour the paper's throughput
figures measure.

Crash--restart is real here, not a message filter: :meth:`SimNode.crash`
cancels every live timer, quarantines the node (no sends, receives,
proposals, timer firings, or deliveries), and bumps an incarnation
counter so in-flight events charged to the old life can never execute
in the new one.  :meth:`SimNode.restart` rejoins the cluster either
*durably* (the protocol object -- acceptor promises, accepted values,
decided log -- survives as if reloaded from disk, with volatile round
state cleared via :meth:`Protocol.on_restart`) or with *amnesia* (a
fresh protocol instance; the previous delivery log is archived to
``delivery_history`` because the application state machine restarts
from scratch too).
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.consensus.base import (
    Env,
    Message,
    Protocol,
    Storage,
    StorageFull,
    TimerHandle,
)
from repro.consensus.commands import Command
from repro.sim.cpu import CpuConfig, CpuModel
from repro.sim.event_loop import Event, EventLoop
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.storage.recovery import recover_protocol


class _SimTimer(TimerHandle):
    __slots__ = ("_event", "_registry")

    def __init__(self, event: Event, registry: set[Event]) -> None:
        self._event = event
        self._registry = registry

    def cancel(self) -> None:
        self._event.cancel()
        self._registry.discard(self._event)


class _DeadTimer(TimerHandle):
    """Returned for timers set while crashed: never fires, cancel no-ops."""

    __slots__ = ()

    def cancel(self) -> None:
        pass


class SimEnv(Env):
    """The :class:`Env` implementation backed by the simulator."""

    def __init__(self, node: "SimNode") -> None:
        self._node = node
        self.node_id = node.node_id
        self.n_nodes = node.network.n_nodes

    def _transmit(self, dst: int, message: Message) -> None:
        # Out-of-event send (tests poking a protocol directly): one
        # message, one syscall's worth of CPU.
        node = self._node
        if node.crashed:
            return
        self._charge_send(n_messages=1, n_batches=1)
        size = node.network.size_of(message)
        node.network.send(self.node_id, dst, message, size)
        self.observe("wire_bytes", bytes=size)

    def _flush(
        self,
        queued: list[tuple[int, Message]],
        batches: dict[int, list[Message]],
    ) -> None:
        # Sending costs CPU (serialisation + syscall); with batching on,
        # one event's sends to the same destination share a single
        # syscall, so the cost is charged once per *batch*.  The cost
        # occupies the sender's cores but does not delay the messages
        # (the NIC drains asynchronously).
        node = self._node
        if node.crashed:
            return
        self._charge_send(n_messages=len(queued), n_batches=len(batches))
        # Transmit in issue order, not batch order: per-send latency
        # draws and event-heap insertion stay identical to unbatched
        # runs, keeping decision logs reproducible.
        network = node.network
        total = 0
        for dst, message in queued:
            size = network.size_of(message)
            network.send(self.node_id, dst, message, size)
            total += size
        # The sizes were just priced for the network model anyway; hand
        # them to telemetry for free rather than re-estimating there.
        self.observe("wire_bytes", bytes=total)

    def _charge_send(self, n_messages: int, n_batches: int) -> None:
        node = self._node
        costs = node.protocol.costs
        if node.network.config.batching:
            cost = costs.batched_send_cost * n_batches
        else:
            cost = costs.send_cost * n_messages
        if cost > 0:
            node.cpu.submit(node.loop.now, cost, 0.0)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        node = self._node
        if node.crashed:
            # A crashed machine arms nothing; the handle is inert.
            return _DeadTimer()
        incarnation = node.incarnation

        def fire() -> None:
            node._timers.discard(event)
            if not node.crashed and node.incarnation == incarnation:
                node.run_event(callback)

        event = node.loop.schedule(delay, fire)
        node._timers.add(event)
        return _SimTimer(event, node._timers)

    def now(self) -> float:
        return self._node.loop.now

    def _deliver(self, command: Command) -> None:
        self._node.on_deliver(command)

    def _deliver_read(self, command: Command, result: object) -> None:
        self._node.on_read(command, result)

    @property
    def rng(self) -> random.Random:
        return self._node.rng


class SimNode:
    """One simulated machine running one protocol instance."""

    def __init__(
        self,
        node_id: int,
        loop: EventLoop,
        network: Network,
        protocol: Protocol,
        rng: RngRegistry,
        cpu_config: Optional[CpuConfig] = None,
        storage: Optional[Storage] = None,
    ) -> None:
        self.node_id = node_id
        self.loop = loop
        self.network = network
        self.protocol = protocol
        self.rng = rng.stream(f"node-{node_id}")
        self.cpu = CpuModel(cpu_config or CpuConfig())
        self.crashed = False
        self.incarnation = 0
        self.delivered: list[Command] = []
        # One entry per finished amnesia incarnation: the delivery log
        # the application had built before that crash wiped it.
        self.delivery_history: list[list[Command]] = []
        self.deliver_listeners: list[Callable[[int, Command, float], None]] = []
        # Serving tier: locally-answered reads / cached session replies.
        # Kept apart from ``delivered`` on purpose -- served reads happen
        # at the owner alone and must never enter the replicated
        # decision log the consistency checker byte-compares.
        self.read_log: list[tuple[Command, object]] = []
        self.read_listeners: list[
            Callable[[int, Command, object, float], None]
        ] = []
        self._timers: set[Event] = set()

        self.env = SimEnv(self)
        if storage is not None:
            # The storage object *is* the node's disk: it stays on the
            # env across crash/restart, and its group-commit timer runs
            # on the node's virtual clock (cancelled by a crash, exactly
            # like an in-flight fsync dies with the process).
            self.env.storage = storage
            storage.attach(self.env, lambda: self.protocol.snapshot_payload())
        protocol.bind(self.env)
        network.register(node_id, self._on_network_message)

    def start(self) -> None:
        """Run the protocol's startup hook (leader election etc.)."""
        self.run_event(self.protocol.on_start)

    # ------------------------------------------------------------------
    # Inbound events -- all charged to the CPU model.
    # ------------------------------------------------------------------

    def run_event(self, fn: Callable[[], None]) -> None:
        """Run one protocol event inside the env's outbox scope, so its
        sends flush as batches when the event completes.  Exceptions
        (e.g. SafetyViolation) still propagate; the depth counter is
        restored either way.

        :class:`StorageFull` -- from a modelled capacity cap during the
        handler, or from a real write failure during the end-of-event
        commit -- is fail-stop: the event's outbox is discarded (a node
        that could not persist must not acknowledge) and the node
        crashes."""
        self.env.begin_event()
        storage_failed = False
        try:
            try:
                fn()
            except StorageFull:
                storage_failed = True
        finally:
            try:
                self.env.end_event(discard=storage_failed)
            except StorageFull:
                storage_failed = True
                self.env.storage.discard_pending()
        if storage_failed:
            self.crash()

    def _charge_and_run(self, message: Optional[Message], fn: Callable[[], None]) -> None:
        cost, serial = self.protocol.processing_cost(message)
        done = self.cpu.submit(self.loop.now, cost, serial)
        incarnation = self.incarnation

        def run() -> None:
            # The CPU-completion callback may be reached after a crash
            # (and even after a restart): work charged to a dead
            # incarnation must never execute.
            if not self.crashed and self.incarnation == incarnation:
                self.run_event(fn)

        if done <= self.loop.now:
            run()
        else:
            self.loop.schedule_at(done, run)

    def _on_network_message(self, sender: int, message: object, size: int) -> None:
        if self.crashed:
            return
        assert isinstance(message, Message)
        occupancy, occupancy_serial = self.protocol.occupancy_cost(message)
        if occupancy > 0:
            self.cpu.submit(self.loop.now, occupancy, occupancy_serial)

        def handle() -> None:
            if not self.crashed:
                self.protocol.on_message(sender, message)

        self._charge_and_run(message, handle)

    def propose(self, command: Command) -> None:
        """Client-side C-PROPOSE entry point.

        The per-command client-handling cost is charged as occupancy
        (it loads the cores, creating the throughput ceiling, without
        sitting on the latency-critical path); the protocol handler
        itself is charged like a message.
        """
        if self.crashed:
            return
        self.env.observe_propose(command)
        costs = self.protocol.costs
        if costs.propose_cost > 0:
            self.cpu.submit(
                self.loop.now, costs.propose_cost, costs.propose_serial_fraction
            )

        def handle() -> None:
            if not self.crashed:
                self.protocol.propose(command)

        self._charge_and_run(None, handle)

    # ------------------------------------------------------------------
    # Delivery and failure injection
    # ------------------------------------------------------------------

    def on_deliver(self, command: Command) -> None:
        if self.crashed:
            return
        self.delivered.append(command)
        now = self.loop.now
        for listener in self.deliver_listeners:
            listener(self.node_id, command, now)

    def on_read(self, command: Command, result: object) -> None:
        if self.crashed:
            return
        self.read_log.append((command, result))
        now = self.loop.now
        for listener in self.read_listeners:
            listener(self.node_id, command, result, now)

    def crash(self) -> None:
        """Crash this node for real: cancel every live timer, stop all
        sends/receives/proposals/deliveries, and notify observers.  The
        process is dead until :meth:`restart`; nothing it scheduled
        before the crash may run."""
        if self.crashed:
            return
        self.env.observe("fault", event="crash", incarnation=self.incarnation)
        self.crashed = True
        for event in self._timers:
            event.cancel()
        self._timers.clear()
        # Un-fsynced records and queued group-commit releases die with
        # the process; only what the storage flushed survives.
        self.env.storage.discard_pending()
        self.network.crash(self.node_id)
        self.protocol.crash()

    def restart(self, protocol: Optional[Protocol] = None) -> None:
        """Boot a new incarnation of this machine.

        ``protocol=None`` is a *durable-log* restart: the existing
        protocol object's state survives (it is the durable log) and
        :meth:`Protocol.on_restart` clears its volatile round state.
        Passing a fresh ``protocol`` is an *amnesia* restart: all
        acceptor state is lost, the application log is archived, and
        the node rejoins as a blank participant.
        """
        if not self.crashed:
            raise RuntimeError(f"node {self.node_id} is not crashed")
        self.incarnation += 1
        mode = "durable" if protocol is None else "amnesia"
        if protocol is None:
            self.protocol.on_restart()
        else:
            self.delivery_history.append(self.delivered)
            self.delivered = []
            protocol.bind(self.env)
            self.protocol = protocol
        self.crashed = False
        self.network.recover(self.node_id)
        self.env.observe(
            "fault", event="restart", mode=mode, incarnation=self.incarnation
        )
        self.run_event(self.protocol.on_start)

    def restart_from_storage(self, protocol: Protocol) -> None:
        """Boot a new incarnation from the durable store.

        A factory-fresh ``protocol`` is bound and rebuilt by replaying
        the storage's snapshot + log tail through
        :func:`repro.storage.recovery.recover_protocol` -- the same scan
        the asyncio runtime uses.  The pre-crash delivery log is
        archived; replay must rebuild it as a byte-identical prefix of
        the new incarnation's log (the chaos checker asserts this), so
        the node is *not* amnesiac.
        """
        if not self.crashed:
            raise RuntimeError(f"node {self.node_id} is not crashed")
        storage = self.env.storage
        if not storage.durable:
            raise RuntimeError(f"node {self.node_id} has no durable storage")
        self.incarnation += 1
        self.delivery_history.append(self.delivered)
        self.delivered = []
        protocol.bind(self.env)
        self.protocol = protocol
        self.crashed = False
        self.network.recover(self.node_id)
        self.env.observe(
            "fault",
            event="restart",
            mode="durable",
            incarnation=self.incarnation,
            recovered=True,
        )

        def replay() -> None:
            stats = recover_protocol(self.protocol, storage)
            self.env.observe(
                "recovery", delivered=len(self.delivered), **stats
            )

        self.run_event(replay)
        self.run_event(self.protocol.on_start)
