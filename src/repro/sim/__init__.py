"""Deterministic discrete-event simulation substrate.

Everything in this package is driven by a single virtual clock
(:class:`repro.sim.event_loop.EventLoop`).  Determinism is guaranteed by
(a) a totally ordered event heap with sequence-number tie-breaking and
(b) explicit seeded RNG streams (:mod:`repro.sim.rng`) -- no global
random state, no wall-clock reads.
"""

from repro.sim.event_loop import Event, EventLoop
from repro.sim.latency import (
    FixedLatency,
    GaussianLatency,
    LatencyModel,
    TopologyLatency,
    UniformLatency,
)
from repro.sim.network import Network, NetworkConfig
from repro.sim.cpu import CpuModel, CpuConfig
from repro.sim.node import SimEnv, SimNode
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.trace import Tracer, TraceEvent

__all__ = [
    "Event",
    "EventLoop",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "GaussianLatency",
    "TopologyLatency",
    "Network",
    "NetworkConfig",
    "CpuModel",
    "CpuConfig",
    "SimEnv",
    "SimNode",
    "Cluster",
    "ClusterConfig",
    "Tracer",
    "TraceEvent",
]
