"""Simulated message-passing network.

Delivery delay for a message of ``size`` bytes from ``src`` to ``dst``:

    propagation (latency model)  +  (size + header) / bandwidth

Links are FIFO by default (as TCP connections are); the asynchronous
model of the paper (arbitrary finite delays) is available by turning
FIFO off and using a jittery latency model.  The network also supports
message drop probability, partitions, and crashed receivers -- the
failure-injection hooks used by the fault-tolerance tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.event_loop import EventLoop
from repro.sim.latency import FixedLatency, LatencyModel
from repro.sim.rng import RngRegistry


@dataclass
class NetworkConfig:
    """Knobs for the network model.

    ``bandwidth``: bytes/second per link (EC2 measured ~7.9 Gbps in the
    paper; default approximates that).
    ``header_bytes``: fixed per-message framing overhead.
    ``batching``: when True, framing overhead is amortised over
    ``batch_factor`` messages (the paper batches messages everywhere
    except the Figure 2 latency experiment).
    """

    latency: LatencyModel = field(default_factory=lambda: FixedLatency(100e-6))
    bandwidth: float = 987_500_000.0  # 7.9 Gbps in bytes/s
    header_bytes: int = 58
    batching: bool = True
    batch_factor: int = 16
    fifo_links: bool = True
    drop_probability: float = 0.0
    # How transmission delay sizes a message: ``"estimate"`` uses the
    # field-walk approximation in :meth:`Message.size_bytes` (the seed
    # behaviour, kept as the default so recorded runs replay
    # identically); ``"codec"`` uses the real binary-codec frame size
    # from :func:`repro.runtime.codec.wire_size` -- smaller, and exactly
    # what the asyncio runtime puts on a TCP socket.
    frame_sizes: str = "estimate"

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if self.batch_factor < 1:
            raise ValueError("batch_factor must be >= 1")
        if self.frame_sizes not in ("estimate", "codec"):
            raise ValueError(
                f"frame_sizes must be 'estimate' or 'codec', "
                f"got {self.frame_sizes!r}"
            )


class Network:
    """Routes messages between nodes over the event loop."""

    def __init__(
        self,
        loop: EventLoop,
        n_nodes: int,
        config: NetworkConfig,
        rng: RngRegistry,
        zones: Optional[tuple[int, ...]] = None,
    ) -> None:
        self.loop = loop
        self.n_nodes = n_nodes
        self.config = config
        self.zones = zones
        self._rng = rng.stream("network")
        self._receivers: dict[int, Callable[[int, object, int], None]] = {}
        self._crashed: set[int] = set()
        self._partitions: list[tuple[frozenset[int], frozenset[int]]] = []
        self._last_delivery: dict[tuple[int, int], float] = {}
        # Optional chaos hook (see repro.chaos.injector.WireFaults): maps
        # ``(src, dst, now)`` to the delay offsets of the copies to
        # deliver -- ``[]`` drops, ``[0.0]`` is a plain delivery,
        # ``[0.0, 0.0]`` duplicates, non-zero entries add delay spikes.
        self.injector: Optional[Callable[[int, int, float], list[float]]] = None
        # Counters for the metrics layer.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.bytes_sent = 0
        # Geo accounting (zones configured): WAN traffic is what a geo
        # deployment pays for, so the bench reports it separately.
        self.messages_cross_zone = 0
        self.bytes_cross_zone = 0

    def register(
        self, node_id: int, receiver: Callable[[int, object, int], None]
    ) -> None:
        """Attach the delivery callback for ``node_id``.

        The callback receives ``(sender, message, size_bytes)``.
        """
        if node_id in self._receivers:
            raise ValueError(f"node {node_id} already registered")
        self._receivers[node_id] = receiver

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def crash(self, node_id: int) -> None:
        """Stop delivering to and from ``node_id``."""
        self._crashed.add(node_id)

    def recover(self, node_id: int) -> None:
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: int) -> bool:
        return node_id in self._crashed

    def partition(self, group_a: set[int], group_b: set[int]) -> None:
        """Block all traffic between the two groups (both directions)."""
        self._partitions.append((frozenset(group_a), frozenset(group_b)))

    def heal_partitions(self) -> None:
        self._partitions.clear()

    def _partitioned(self, src: int, dst: int) -> bool:
        for a, b in self._partitions:
            if (src in a and dst in b) or (src in b and dst in a):
                return True
        return False

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def size_of(self, message: object) -> int:
        """Wire size charged for ``message``, per ``config.frame_sizes``."""
        if self.config.frame_sizes == "codec":
            from repro.runtime.codec import wire_size

            return wire_size(message)
        return message.size_bytes()  # type: ignore[attr-defined]

    def transmission_delay(self, size: int) -> float:
        """Serialisation delay on the wire for ``size`` payload bytes."""
        header = self.config.header_bytes
        if self.config.batching:
            header = header / self.config.batch_factor
        return (size + header) / self.config.bandwidth

    def send(self, src: int, dst: int, message: object, size: int) -> None:
        """Send ``message`` (``size`` payload bytes) from ``src`` to ``dst``."""
        self.messages_sent += 1
        self.bytes_sent += size
        if self.zones is not None and self.zones[src] != self.zones[dst]:
            self.messages_cross_zone += 1
            self.bytes_cross_zone += size
        if src in self._crashed or dst in self._crashed:
            self.messages_dropped += 1
            return
        if self._partitioned(src, dst):
            self.messages_dropped += 1
            return
        if self.config.drop_probability and (
            self._rng.random() < self.config.drop_probability
        ):
            self.messages_dropped += 1
            return
        if self.injector is not None and src != dst:
            offsets = self.injector(src, dst, self.loop.now)
            if not offsets:
                self.messages_dropped += 1
                return
            self.messages_duplicated += len(offsets) - 1
        else:
            offsets = (0.0,)
        for extra in offsets:
            self._schedule_delivery(src, dst, message, size, extra)

    def _schedule_delivery(
        self, src: int, dst: int, message: object, size: int, extra: float
    ) -> None:
        delay = self.config.latency.sample(src, dst, self._rng)
        delay += self.transmission_delay(size) + extra
        arrival = self.loop.now + delay
        if self.config.fifo_links and src != dst:
            link = (src, dst)
            arrival = max(arrival, self._last_delivery.get(link, 0.0))
            self._last_delivery[link] = arrival

        def deliver() -> None:
            # Re-check crash state at delivery time: the receiver may have
            # crashed while the message was in flight.
            if dst in self._crashed:
                self.messages_dropped += 1
                return
            receiver = self._receivers.get(dst)
            if receiver is None:
                self.messages_dropped += 1
                return
            self.messages_delivered += 1
            receiver(src, message, size)

        self.loop.schedule_at(arrival, deliver)
