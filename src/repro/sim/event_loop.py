"""A minimal, deterministic discrete-event loop.

The loop maintains a priority queue of ``(time, seq, callback)`` entries.
``seq`` is a monotonically increasing counter that breaks ties between
events scheduled for the same instant, which makes every run with the
same inputs bit-for-bit reproducible.

Time is a ``float`` in **seconds** of virtual time.  Nothing in the
simulator ever reads the wall clock.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class Event:
    """A scheduled callback; cancellable.

    Cancellation is implemented by flagging the entry rather than
    removing it from the heap (removal from the middle of a heap is
    O(n)); the loop skips cancelled entries when it pops them.

    Heap entries are ``(time, seq, event)`` tuples so ordering is
    decided by C-level float/int comparisons, never by calling into
    Python -- a measurable win at millions of events per run.
    """

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class EventLoop:
    """Deterministic event loop with a virtual clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._now = 0.0
        self._seq = 0
        self._stopped = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far (for tests/diagnostics)."""
        return self._processed

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback
        after all events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.schedule_at(self._now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at an absolute virtual time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time!r} < now {self._now!r}"
            )
        event = Event(time, self._seq, fn)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        return event

    def stop(self) -> None:
        """Make the currently running ``run*`` call return promptly."""
        self._stopped = True

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``stop()`` is called, or
        ``max_events`` callbacks have executed."""
        self._stopped = False
        executed = 0
        while self._heap and not self._stopped:
            if max_events is not None and executed >= max_events:
                return
            _time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fn()
            self._processed += 1
            executed += 1

    def run_until(self, deadline: float) -> None:
        """Run events with ``time <= deadline``; afterwards ``now`` is
        exactly ``deadline`` (even if the heap drained earlier)."""
        self._stopped = False
        while self._heap and not self._stopped:
            if self._heap[0][0] > deadline:
                break
            _time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fn()
            self._processed += 1
        if not self._stopped and self._now < deadline:
            self._now = deadline

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for _t, _s, e in self._heap if not e.cancelled)
