"""A minimal, deterministic discrete-event loop.

The loop maintains a priority queue of ``(time, seq, callback)`` entries.
``seq`` is a monotonically increasing counter that breaks ties between
events scheduled for the same instant, which makes every run with the
same inputs bit-for-bit reproducible.

Time is a ``float`` in **seconds** of virtual time.  Nothing in the
simulator ever reads the wall clock.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class Event:
    """A scheduled callback; cancellable.

    Cancellation is implemented by flagging the entry rather than
    removing it from the heap (removal from the middle of a heap is
    O(n)); the loop skips cancelled entries when it pops them, and
    compacts the heap lazily once cancelled entries outnumber live ones
    (protocols under churn cancel far more timers than they fire).

    Heap entries are ``(time, seq, event)`` tuples so ordering is
    decided by C-level float/int comparisons, never by calling into
    Python -- a measurable win at millions of events per run.
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "loop")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[[], None],
        loop: Optional["EventLoop"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.loop = loop

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.loop is not None:
            self.loop._on_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class RepeatingEvent:
    """A self-rescheduling timer; ``cancel()`` stops the chain.

    Each firing runs ``fn()`` and then schedules the next occurrence, so
    the underlying :class:`Event` changes between firings -- this handle
    stays valid for the life of the chain.  Note that an active repeating
    timer keeps the heap non-empty: run-to-quiescence (``run()``) will
    not terminate until it is cancelled; drive such loops with
    ``run_until``/``run`` with ``max_events``.
    """

    __slots__ = ("interval", "fn", "cancelled", "_event", "_loop")

    def __init__(self, loop: "EventLoop", interval: float, fn: Callable[[], None]):
        if interval <= 0:
            raise ValueError(f"repeat interval must be positive: {interval!r}")
        self.interval = interval
        self.fn = fn
        self.cancelled = False
        self._loop = loop
        self._event = loop.schedule(interval, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fn()
        if not self.cancelled:  # fn may have cancelled us
            self._event = self._loop.schedule(self.interval, self._fire)

    def cancel(self) -> None:
        """Stop future firings.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        self._event.cancel()


class EventLoop:
    """Deterministic event loop with a virtual clock."""

    # Below this heap size, compaction is not worth the rebuild.
    COMPACT_FLOOR = 64

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._now = 0.0
        self._seq = 0
        self._stopped = False
        self._processed = 0
        # Cancelled entries still sitting in the heap.  ``pending()`` is
        # ``len(heap) - cancelled`` in O(1), and when the dead weight
        # exceeds half the heap it is compacted away in one pass.
        self._cancelled_in_heap = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far (for tests/diagnostics)."""
        return self._processed

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback
        after all events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.schedule_at(self._now + delay, fn)

    def schedule_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at an absolute virtual time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time!r} < now {self._now!r}"
            )
        event = Event(time, self._seq, fn, self)
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        return event

    def schedule_repeating(
        self, interval: float, fn: Callable[[], None]
    ) -> RepeatingEvent:
        """Run ``fn`` every ``interval`` seconds until cancelled (the
        telemetry sampler cadence).  First firing is one interval from
        now."""
        return RepeatingEvent(self, interval, fn)

    def _on_cancel(self) -> None:
        """Bookkeeping for one newly cancelled, still-queued event."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap * 2 > len(self._heap)
            and len(self._heap) >= self.COMPACT_FLOOR
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Pop order is unchanged: the surviving ``(time, seq)`` keys are
        unique, so any valid heap over them drains identically.
        """
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def stop(self) -> None:
        """Make the currently running ``run*`` call return promptly."""
        self._stopped = True

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``stop()`` is called, or
        ``max_events`` callbacks have executed."""
        self._stopped = False
        executed = 0
        while self._heap and not self._stopped:
            if max_events is not None and executed >= max_events:
                return
            _time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            # Detach before running: a late cancel() on a fired event
            # must not count a tombstone that is no longer in the heap.
            event.loop = None
            self._now = event.time
            event.fn()
            self._processed += 1
            executed += 1

    def run_until(self, deadline: float) -> None:
        """Run events with ``time <= deadline``; afterwards ``now`` is
        exactly ``deadline`` (even if the heap drained earlier)."""
        self._stopped = False
        while self._heap and not self._stopped:
            if self._heap[0][0] > deadline:
                break
            _time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            event.loop = None
            self._now = event.time
            event.fn()
            self._processed += 1
        if not self._stopped and self._now < deadline:
            self._now = deadline

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1): the
        loop tracks how many heap entries are cancelled tombstones."""
        return len(self._heap) - self._cancelled_in_heap
