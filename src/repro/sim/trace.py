"""Structured event tracing for simulated clusters.

A :class:`Tracer` attaches to a cluster's network and delivery streams
and records every event with its virtual timestamp.  Tests use it to
*prove* message-complexity claims (e.g. a warm fast-path command costs
3N messages and two one-way delays to decide) instead of asserting on
aggregate counters alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.consensus.commands import Command
from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is ``"send"``, ``"deliver"``, or ``"flush"``; for sends,
    ``src``/``dst`` are node ids and ``message`` the protocol message;
    for delivery events ``src`` is the delivering node and ``message``
    the command; for flushes ``message`` is the tuple of messages one
    event batched toward ``dst``.
    """

    time: float
    kind: str
    src: int
    dst: Optional[int]
    message: object

    @property
    def message_type(self) -> str:
        return type(self.message).__name__


class Tracer:
    """Records sends, flush batches, and deliveries of a cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.events: list[TraceEvent] = []
        self._original_send = cluster.network.send
        cluster.network.send = self._traced_send  # type: ignore[method-assign]
        for node in cluster.nodes:
            node.deliver_listeners.append(self._on_deliver)
            node.env.add_flush_hook(self._on_flush)

    def _on_flush(self, src, queued, batches) -> None:
        now = self.cluster.loop.now
        for dst, messages in batches.items():
            self.events.append(
                TraceEvent(
                    time=now,
                    kind="flush",
                    src=src,
                    dst=dst,
                    message=tuple(messages),
                )
            )

    def _traced_send(self, src: int, dst: int, message: object, size: int) -> None:
        self.events.append(
            TraceEvent(
                time=self.cluster.loop.now,
                kind="send",
                src=src,
                dst=dst,
                message=message,
            )
        )
        self._original_send(src, dst, message, size)

    def _on_deliver(self, node_id: int, command: Command, now: float) -> None:
        self.events.append(
            TraceEvent(time=now, kind="deliver", src=node_id, dst=None, message=command)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def sends(
        self,
        message_type: Optional[str] = None,
        since: float = 0.0,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> list[TraceEvent]:
        out = []
        for event in self.events:
            if event.kind != "send" or event.time < since:
                continue
            if message_type is not None and event.message_type != message_type:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def deliveries(self, cid=None, since: float = 0.0) -> list[TraceEvent]:
        return [
            event
            for event in self.events
            if event.kind == "deliver"
            and event.time >= since
            and (cid is None or event.message.cid == cid)
        ]

    def flushes(
        self, src: Optional[int] = None, since: float = 0.0
    ) -> list[TraceEvent]:
        """Flush batches: one event per (protocol event, destination)."""
        return [
            event
            for event in self.events
            if event.kind == "flush"
            and event.time >= since
            and (src is None or event.src == src)
        ]

    def message_counts(self, since: float = 0.0) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            if event.kind == "send" and event.time >= since:
                counts[event.message_type] = counts.get(event.message_type, 0) + 1
        return counts

    def mark(self) -> float:
        """Current virtual time, for use as a ``since`` watermark."""
        return self.cluster.loop.now

    def clear(self) -> None:
        self.events.clear()

    def detach(self) -> None:
        """Undo the attachment: restore ``network.send`` and remove the
        deliver listeners and flush hooks.  Safe to call twice; recorded
        events stay queryable."""
        if self.cluster.network.send == self._traced_send:
            self.cluster.network.send = self._original_send  # type: ignore[method-assign]
        for node in self.cluster.nodes:
            try:
                node.deliver_listeners.remove(self._on_deliver)
            except ValueError:
                pass
            node.env.remove_flush_hook(self._on_flush)


def delays_between(events: Iterable[TraceEvent]) -> float:
    """Wall span (virtual seconds) covered by ``events``."""
    times = [event.time for event in events]
    if not times:
        return 0.0
    return max(times) - min(times)
