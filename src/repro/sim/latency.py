"""Network latency models.

A :class:`LatencyModel` maps ``(src, dst, rng)`` to a one-way propagation
delay in seconds.  Transmission (size / bandwidth) is added separately by
:class:`repro.sim.network.Network`, so these models only describe
propagation + switching delay.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """One-way propagation delay between two nodes."""

    @abstractmethod
    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        """Delay in seconds for a message from ``src`` to ``dst``."""

    def loopback(self) -> float:
        """Delay for a node's message to itself (in-process hand-off)."""
        return 0.0


class FixedLatency(LatencyModel):
    """Constant delay between any pair of distinct nodes."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError("latency must be >= 0")
        self.delay = delay

    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        if src == dst:
            return self.loopback()
        return self.delay


class UniformLatency(LatencyModel):
    """Uniformly distributed delay in ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        if src == dst:
            return self.loopback()
        return rng.uniform(self.low, self.high)


class GaussianLatency(LatencyModel):
    """Normally distributed delay, truncated at ``floor``.

    Models a LAN: a tight mean with occasional stragglers.
    """

    def __init__(self, mean: float, stddev: float, floor: float = 1e-6) -> None:
        if mean <= 0 or stddev < 0:
            raise ValueError("mean must be > 0 and stddev >= 0")
        self.mean = mean
        self.stddev = stddev
        self.floor = floor

    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        if src == dst:
            return self.loopback()
        return max(self.floor, rng.gauss(self.mean, self.stddev))


class TopologyLatency(LatencyModel):
    """Explicit per-pair base delays (e.g. a WAN matrix) plus jitter.

    ``matrix[i][j]`` is the base one-way delay from node ``i`` to node
    ``j``.  ``jitter`` is the half-width of a uniform perturbation:
    samples are ``base + uniform(-jitter, +jitter)``, floored at 0 so a
    jitter wider than the base delay cannot go negative.  ``jitter=0``
    draws nothing from the RNG, keeping the default matrix path
    byte-identical to jitter-free runs.
    """

    def __init__(self, matrix: list[list[float]], jitter: float = 0.0) -> None:
        n = len(matrix)
        for row in matrix:
            if len(row) != n:
                raise ValueError("latency matrix must be square")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self.matrix = matrix
        self.jitter = jitter

    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        if src == dst:
            return self.loopback()
        base = self.matrix[src][dst]
        if self.jitter:
            base = max(0.0, base + rng.uniform(-self.jitter, self.jitter))
        return base

    @classmethod
    def from_zones(
        cls,
        zones: "tuple[int, ...] | list[int]",
        intra: float,
        inter: float,
        jitter: float = 0.0,
    ) -> "TopologyLatency":
        """Compile a zone assignment into a full WAN matrix.

        ``zones[i]`` is the zone of node ``i``; same-zone pairs get the
        ``intra`` one-way delay, cross-zone pairs ``inter``.  This is
        the :class:`repro.spec.ClusterSpec` zone-latency shorthand's
        target representation -- anything finer (per-zone-pair delays)
        should construct the matrix directly.
        """
        if intra < 0 or inter < 0:
            raise ValueError("zone latencies must be >= 0")
        matrix = [
            [
                0.0 if i == j else (intra if zi == zj else inter)
                for j, zj in enumerate(zones)
            ]
            for i, zi in enumerate(zones)
        ]
        return cls(matrix, jitter=jitter)
