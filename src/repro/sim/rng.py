"""Seeded random-stream management.

Each simulation component draws from its own ``random.Random`` stream
derived from a master seed, so adding randomness to one component never
perturbs the draws seen by another.  This is what makes experiment
sweeps comparable across protocols: the workload stream is identical no
matter which consensus protocol is under test.
"""

from __future__ import annotations

import random
import zlib


class RngRegistry:
    """Hands out independent named random streams from one master seed."""

    def __init__(self, master_seed: int) -> None:
        self._master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The per-stream seed mixes the master seed with a CRC of the name
        so streams are decorrelated but reproducible.
        """
        if name not in self._streams:
            mixed = (self._master_seed * 0x9E3779B1 + zlib.crc32(name.encode())) % (
                2**63
            )
            self._streams[name] = random.Random(mixed)
        return self._streams[name]

    def fork(self, salt: int) -> "RngRegistry":
        """A registry whose streams are independent of this one's."""
        return RngRegistry((self._master_seed * 31 + salt) % (2**63))
