"""One configuration object for a whole cluster deployment.

:class:`ClusterSpec` names everything that defines a run -- protocol,
cluster size, seed, wire codec, network/CPU models, protocol tunables,
and durable storage -- and both substrates consume it:

- ``Cluster.from_spec(spec)`` builds a simulated cluster;
- ``LocalCluster.from_spec(spec)`` builds the asyncio/TCP cluster.

The CLI paths (``run``/``compare``/``chaos``/``perf``) all funnel their
flags through a spec, and :meth:`ClusterSpec.from_dict` is the one
validated entry point for dict/JSON-shaped configuration: every unknown
key, wrong type, or bad value raises a single :class:`ConfigError`
naming the offending key path, instead of a ``TypeError`` from some
nested dataclass constructor three frames down.

The older per-layer configs (:class:`~repro.sim.cluster.ClusterConfig`,
:class:`~repro.sim.network.NetworkConfig`, ...) remain as the internal
carriers the spec compiles down to.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Optional

from repro.consensus.base import Protocol
from repro.core.m2.config import M2PaxosConfig
from repro.sim.cpu import CpuConfig
from repro.sim.network import NetworkConfig
from repro.storage.base import StorageConfig

PROTOCOLS = ("m2paxos", "multipaxos", "genpaxos", "epaxos")
CODECS = ("binary", "json")


class ConfigError(ValueError):
    """A configuration dict did not validate.

    The message always names the bad key path (``"network.bandwith"``,
    ``"storage.kind"``), so a typo in a config file surfaces as one
    actionable line rather than a dataclass traceback.
    """


@dataclass(frozen=True)
class ZoneLatency:
    """Zone-latency shorthand: two one-way delays instead of a matrix.

    Compiles to :class:`repro.sim.latency.TopologyLatency` via
    ``from_zones`` -- ``intra`` between same-zone nodes, ``inter``
    across zones, plus an optional symmetric ``jitter`` half-width.
    All values are **seconds** of one-way delay (the CLI's ``--zone-*``
    flags take milliseconds and convert).
    """

    intra: float = 0.0005
    inter: float = 0.04
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.intra < 0 or self.inter < 0:
            raise ValueError("zone latencies must be >= 0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")


@dataclass(frozen=True)
class ClusterSpec:
    """Everything defining one cluster deployment, for either substrate.

    ``m2`` carries the M2Paxos tunables (ignored by other protocols);
    ``None`` means the protocol's defaults.  ``network`` and ``cpu``
    only affect the simulator (the runtime runs on real wires and
    cores); ``codec`` and ``uvloop`` only affect the runtime (the
    simulator never serialises unless ``network.frame_sizes ==
    "codec"``, and has no event loop to swap).  ``uvloop=True`` asks
    for uvloop's C event loop and silently falls back to stock asyncio
    when the package is not installed -- an accelerator knob, never a
    dependency.  ``storage`` applies to both substrates.
    """

    protocol: str = "m2paxos"
    n_nodes: int = 3
    seed: int = 0
    codec: str = "binary"
    uvloop: bool = False
    network: NetworkConfig = field(default_factory=NetworkConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    m2: Optional[M2PaxosConfig] = None
    storage: Optional[StorageConfig] = None
    # Geo deployments: ``zones[i]`` is the zone (region) of node ``i``.
    # Drives the zone-latency shorthand below, cross-zone wire counters,
    # and per-zone telemetry labels.  None means single-zone (the seed).
    zones: Optional[tuple[int, ...]] = None
    # Intra/inter-zone latency shorthand; compiled into a
    # ``TopologyLatency`` matrix that *replaces* ``network.latency`` in
    # the simulator.  Requires ``zones``.
    zone_latency: Optional[ZoneLatency] = None

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigError(
                f"protocol: must be one of {PROTOCOLS}, got {self.protocol!r}"
            )
        if self.codec not in CODECS:
            raise ConfigError(
                f"codec: must be one of {CODECS}, got {self.codec!r}"
            )
        if self.n_nodes < 1:
            raise ConfigError(f"n_nodes: must be >= 1, got {self.n_nodes}")
        if self.zones is not None and len(self.zones) != self.n_nodes:
            raise ConfigError(
                f"zones: must assign all {self.n_nodes} nodes, "
                f"got {len(self.zones)} entries"
            )
        if self.zone_latency is not None and self.zones is None:
            raise ConfigError("zone_latency: requires zones to be set")

    # ------------------------------------------------------------------
    # Compilation to the per-layer configs
    # ------------------------------------------------------------------

    def sim_cluster_config(self):
        """The :class:`~repro.sim.cluster.ClusterConfig` this spec
        compiles to (simulator substrate)."""
        from repro.sim.cluster import ClusterConfig

        network = self.network
        if self.zone_latency is not None:
            from repro.sim.latency import TopologyLatency

            zl = self.zone_latency
            network = replace(
                network,
                latency=TopologyLatency.from_zones(
                    self.zones, zl.intra, zl.inter, jitter=zl.jitter
                ),
            )
        return ClusterConfig(
            n_nodes=self.n_nodes,
            seed=self.seed,
            network=network,
            cpu=self.cpu,
            storage=self.storage,
            zones=self.zones,
        )

    def protocol_factory(self) -> Callable[[int, int], Protocol]:
        """The ``(node_id, n_nodes) -> Protocol`` factory for this spec.

        With explicit ``m2`` tunables (m2paxos only) each node gets
        ``M2Paxos(config=spec.m2)``; otherwise the benchmark-tuned
        factory from :mod:`repro.bench.harness` supplies the protocol's
        defaults.
        """
        if self.protocol == "m2paxos" and self.m2 is not None:
            from repro.core.protocol import M2Paxos

            m2 = self.m2
            return lambda node_id, n_nodes: M2Paxos(config=m2)
        from repro.bench.harness import protocol_factory

        return protocol_factory(self.protocol)

    # ------------------------------------------------------------------
    # Validated construction from dict-shaped config
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        """Build a spec from a (possibly JSON-loaded) dict, validating
        every key and value; any problem raises :class:`ConfigError`
        naming the bad key path.

        Sections ``network``, ``cpu``, ``m2``, and ``storage`` are
        nested dicts of scalar fields.  Non-scalar knobs (the network's
        ``latency`` model object, M2Paxos's ``home_hint``/``policy``
        callables) cannot be expressed in a dict and are rejected --
        construct the spec directly to set those.
        """
        if not isinstance(data, dict):
            raise ConfigError(f"config must be a dict, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        for key in data:
            if key not in known:
                raise ConfigError(f"unknown key {key!r}")
        kwargs: dict[str, Any] = {}
        for name in ("protocol", "codec"):
            if name in data:
                kwargs[name] = _scalar(name, data[name], str)
        for name in ("n_nodes", "seed"):
            if name in data:
                kwargs[name] = _scalar(name, data[name], int)
        if "uvloop" in data:
            kwargs["uvloop"] = _scalar("uvloop", data["uvloop"], bool)
        if "network" in data:
            kwargs["network"] = _section(
                "network", data["network"], NetworkConfig, excluded=("latency",)
            )
        if "cpu" in data:
            kwargs["cpu"] = _section("cpu", data["cpu"], CpuConfig)
        if "m2" in data:
            kwargs["m2"] = _section(
                "m2",
                data["m2"],
                M2PaxosConfig,
                excluded=("home_hint", "policy", "quorum"),
            )
        if "storage" in data:
            kwargs["storage"] = _section(
                "storage", data["storage"], StorageConfig
            )
        if "zones" in data:
            kwargs["zones"] = _check_value(
                "zones", data["zones"], "Optional[tuple[int, ...]]"
            )
        if "zone_latency" in data:
            kwargs["zone_latency"] = _section(
                "zone_latency", data["zone_latency"], ZoneLatency
            )
        return cls(**kwargs)

    def with_storage(self, storage: Optional[StorageConfig]) -> "ClusterSpec":
        return replace(self, storage=storage)


# ----------------------------------------------------------------------
# Validation helpers
# ----------------------------------------------------------------------

def _scalar(path: str, value: Any, expected: type) -> Any:
    """Type-check one scalar config value, naming its key path."""
    if expected is float and isinstance(value, int) and not isinstance(value, bool):
        return float(value)  # JSON has no int/float distinction
    if expected is int and isinstance(value, bool):
        raise ConfigError(f"{path}: expected int, got bool")
    if not isinstance(value, expected):
        raise ConfigError(
            f"{path}: expected {expected.__name__}, "
            f"got {type(value).__name__} ({value!r})"
        )
    return value


def _check_value(path: str, value: Any, annotation: str) -> Any:
    """Map a dataclass field's annotation to a scalar check."""
    base = annotation.replace("Optional[", "").rstrip("]").strip()
    if base in ("int", "float", "str", "bool"):
        if value is None and "Optional" in annotation:
            return None
        return _scalar(path, value, {"int": int, "float": float,
                                     "str": str, "bool": bool}[base])
    if base.startswith("tuple[int"):
        if value is None and "Optional" in annotation:
            return None
        if not isinstance(value, (list, tuple)) or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in value
        ):
            raise ConfigError(
                f"{path}: expected a list of ints, got {value!r}"
            )
        return tuple(value)
    raise ConfigError(f"{path}: cannot be set from a dict")


def _section(name: str, data: Any, cls: type, excluded: tuple = ()) -> Any:
    """Build one nested config dataclass from a dict, validating keys,
    types, and (via the dataclass's own ``__post_init__``) values."""
    if not isinstance(data, dict):
        raise ConfigError(f"{name}: expected a dict, got {type(data).__name__}")
    spec_fields = {f.name: f for f in fields(cls) if f.name not in excluded}
    kwargs: dict[str, Any] = {}
    for key, value in data.items():
        if key not in spec_fields:
            if key in excluded:
                raise ConfigError(f"{name}.{key}: cannot be set from a dict")
            raise ConfigError(f"unknown key {name + '.' + key!r}")
        kwargs[key] = _check_value(
            f"{name}.{key}", value, str(spec_fields[key].type)
        )
    try:
        return cls(**kwargs)
    except ConfigError:
        raise
    except ValueError as exc:
        raise ConfigError(f"{name}: {exc}") from exc
