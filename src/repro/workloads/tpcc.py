"""TPC-C command generator (Section VI-B).

As in the paper, only the *ordering* workload is reproduced: commands
carry the identifiers of the objects a TPC-C transaction would access
(warehouse, district, customer, stock rows); transaction execution
itself is out of scope ("the actual transaction processing has been
omitted").

Deployment shape follows the paper: ``10 * N`` warehouses, assigned to
nodes round-robin, each with 10 districts and 3000 customers per
district and a 100k-item stock.  A warehouse is *local* to the node it
is assigned to.  ``remote_warehouse_prob`` is the Figure 8 knob: the
probability that a client targets a uniformly random warehouse instead
of a local one (0% in 8a, 15% in 8b).  Independent of it, 15% of
Payment transactions access a customer of another warehouse and ~1% of
New-Order stock lines come from a remote warehouse, per the TPC-C
specification.

Transaction mix (standard TPC-C): New-Order 45%, Payment 43%,
Order-Status 4%, Delivery 4%, Stock-Level 4%.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.consensus.commands import Command

NEW_ORDER = "new_order"
PAYMENT = "payment"
ORDER_STATUS = "order_status"
DELIVERY = "delivery"
STOCK_LEVEL = "stock_level"

MIX = (
    (NEW_ORDER, 0.45),
    (PAYMENT, 0.43),
    (ORDER_STATUS, 0.04),
    (DELIVERY, 0.04),
    (STOCK_LEVEL, 0.04),
)

DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 3000
ITEMS = 100_000


@dataclass(frozen=True)
class TpccConfig:
    warehouses_per_node: int = 10
    remote_warehouse_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.warehouses_per_node < 1:
            raise ValueError("warehouses_per_node must be >= 1")
        if not 0.0 <= self.remote_warehouse_prob <= 1.0:
            raise ValueError("remote_warehouse_prob must be in [0, 1]")


class TpccWorkload:
    """Generates TPC-C-shaped commands for an N-node cluster."""

    def __init__(self, config: TpccConfig, n_nodes: int, rng: random.Random) -> None:
        self.config = config
        self.n_nodes = n_nodes
        self.n_warehouses = config.warehouses_per_node * n_nodes
        self._rng = rng
        self._seq = [0] * n_nodes

    # ------------------------------------------------------------------
    # Object naming
    # ------------------------------------------------------------------

    @staticmethod
    def warehouse(w: int) -> str:
        return f"w{w}"

    @staticmethod
    def district(w: int, d: int) -> str:
        return f"w{w}.d{d}"

    @staticmethod
    def customer(w: int, d: int, c: int) -> str:
        return f"w{w}.d{d}.c{c}"

    @staticmethod
    def stock(w: int, item: int) -> str:
        return f"w{w}.s{item}"

    def home_node(self, w: int) -> int:
        """Warehouses are assigned to nodes round-robin."""
        return w % self.n_nodes

    # ------------------------------------------------------------------
    # Transaction profiles
    # ------------------------------------------------------------------

    def _pick_profile(self) -> str:
        roll = self._rng.random()
        acc = 0.0
        for name, weight in MIX:
            acc += weight
            if roll < acc:
                return name
        return MIX[-1][0]

    def _pick_warehouse(self, node: int) -> int:
        if self._rng.random() < self.config.remote_warehouse_prob:
            return self._rng.randrange(self.n_warehouses)
        # A warehouse local to this node.
        local = [
            w for w in range(node, self.n_warehouses, self.n_nodes)
        ]
        return self._rng.choice(local)

    def _other_warehouse(self, w: int) -> int:
        if self.n_warehouses == 1:
            return w
        other = self._rng.randrange(self.n_warehouses - 1)
        return other if other < w else other + 1

    def _new_order(self, w: int) -> set[str]:
        d = self._rng.randrange(DISTRICTS_PER_WAREHOUSE)
        objects = {self.warehouse(w), self.district(w, d)}
        n_lines = self._rng.randint(5, 15)
        for _line in range(n_lines):
            item = self._rng.randrange(ITEMS)
            supply_w = w
            if self._rng.random() < 0.01:  # 1% remote stock, per spec
                supply_w = self._other_warehouse(w)
            objects.add(self.stock(supply_w, item))
        return objects

    def _payment(self, w: int) -> set[str]:
        d = self._rng.randrange(DISTRICTS_PER_WAREHOUSE)
        customer_w, customer_d = w, d
        if self._rng.random() < 0.15:  # 15% remote customer, per spec
            customer_w = self._other_warehouse(w)
            customer_d = self._rng.randrange(DISTRICTS_PER_WAREHOUSE)
        c = self._rng.randrange(CUSTOMERS_PER_DISTRICT)
        return {
            self.warehouse(w),
            self.district(w, d),
            self.customer(customer_w, customer_d, c),
        }

    def _order_status(self, w: int) -> set[str]:
        d = self._rng.randrange(DISTRICTS_PER_WAREHOUSE)
        c = self._rng.randrange(CUSTOMERS_PER_DISTRICT)
        return {self.customer(w, d, c)}

    def _delivery(self, w: int) -> set[str]:
        objects = {self.warehouse(w)}
        for d in range(DISTRICTS_PER_WAREHOUSE):
            objects.add(self.district(w, d))
        return objects

    def _stock_level(self, w: int) -> set[str]:
        d = self._rng.randrange(DISTRICTS_PER_WAREHOUSE)
        return {self.district(w, d)}

    _PAYLOAD = {
        # Rough parameter sizes of each stored-procedure call; TPC-C
        # commands are bigger than the 16-byte synthetic payload, which
        # the paper notes lowers absolute throughput.
        NEW_ORDER: 120,
        PAYMENT: 60,
        ORDER_STATUS: 24,
        DELIVERY: 32,
        STOCK_LEVEL: 24,
    }

    def next_command(self, node: int) -> Command:
        seq = self._seq[node]
        self._seq[node] += 1
        profile = self._pick_profile()
        w = self._pick_warehouse(node)
        if profile == NEW_ORDER:
            objects = self._new_order(w)
        elif profile == PAYMENT:
            objects = self._payment(w)
        elif profile == ORDER_STATUS:
            objects = self._order_status(w)
        elif profile == DELIVERY:
            objects = self._delivery(w)
        else:
            objects = self._stock_level(w)
        return Command.make(
            node, seq, objects, payload_bytes=self._PAYLOAD[profile]
        )
