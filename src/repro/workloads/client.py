"""Open-loop client model (Section VI).

"To properly load the system, we injected commands into an open-loop
using up to 64 client threads at each node.  After issuing each
command, a client thread goes to sleep for a configurable amount of
time, i.e., think time.  To prevent overloading the system, we limit
the number of commands still in-flight ... when it is reached, a node
will skip issuing new commands."

Each simulated client thread issues a command, sleeps ``think_time``,
and repeats; a per-node in-flight cap makes the loop skip (not queue)
when the consensus layer falls behind, exactly as described.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol as TypingProtocol

from repro.consensus.commands import Command
from repro.metrics.collector import MetricsCollector
from repro.sim.cluster import Cluster


class Workload(TypingProtocol):
    """Anything with a ``next_command(node) -> Command`` method."""

    def next_command(self, node: int) -> Command: ...


@dataclass(frozen=True)
class ClientConfig:
    clients_per_node: int = 8
    think_time: float = 0.001
    max_inflight_per_node: int = 64
    # Aggregate session mode: > 0 models that many client *sessions* per
    # node with a single repeating timer ticking every ``think_time /
    # sessions_per_node`` -- the same aggregate open-loop rate as one
    # timer per session, but with O(1) scheduler state per node, so the
    # generator scales toward 10^5 sessions.  The workload decides what
    # each issued command's session stamp is (see
    # ``SyntheticConfig.sessions_per_node``).  0 keeps the seed's
    # one-timer-per-client model.
    sessions_per_node: int = 0

    def __post_init__(self) -> None:
        if self.clients_per_node < 1:
            raise ValueError("clients_per_node must be >= 1")
        if self.think_time < 0:
            raise ValueError("think_time must be >= 0")
        if self.max_inflight_per_node < 1:
            raise ValueError("max_inflight_per_node must be >= 1")
        if self.sessions_per_node < 0:
            raise ValueError("sessions_per_node must be >= 0")


class OpenLoopClients:
    """Drives a cluster with per-node open-loop client threads."""

    def __init__(
        self,
        cluster: Cluster,
        workload: Workload,
        config: ClientConfig,
        collector: Optional[MetricsCollector] = None,
        nodes: Optional[list[int]] = None,
    ) -> None:
        self.cluster = cluster
        self.workload = workload
        self.config = config
        self.collector = collector
        self.nodes = nodes if nodes is not None else list(range(cluster.config.n_nodes))
        self._inflight: dict[int, int] = {node: 0 for node in self.nodes}
        self._running = False
        self._rng = cluster.rng.stream("clients")
        for node in cluster.nodes:
            node.deliver_listeners.append(self._on_deliver)
            listeners = getattr(node, "read_listeners", None)
            if listeners is not None:
                # Leased reads complete at the proposer without ever
                # reaching the delivery stream; without this hook their
                # in-flight slots would leak and the open loop would
                # stall at max_inflight.
                listeners.append(self._on_read)
        self._outstanding: dict[tuple[int, int], int] = {}
        # Issue interval per timer: aggregate session mode folds a whole
        # node's sessions into one repeating timer.
        if config.sessions_per_node:
            self._interval = max(
                config.think_time / config.sessions_per_node, 1e-6
            )
            self._timers_per_node = 1
        else:
            self._interval = max(config.think_time, 1e-6)
            self._timers_per_node = config.clients_per_node

    def start(self) -> None:
        """Kick off every client timer with a small random phase."""
        self._running = True
        for node in self.nodes:
            for _client in range(self._timers_per_node):
                delay = self._rng.random() * self._interval
                self._schedule(node, delay)

    def stop(self) -> None:
        self._running = False

    def _schedule(self, node: int, delay: float) -> None:
        self.cluster.loop.schedule(delay, lambda: self._tick(node))

    def _tick(self, node: int) -> None:
        if not self._running:
            return
        if self._inflight[node] < self.config.max_inflight_per_node:
            command = self.workload.next_command(node)
            self._inflight[node] += 1
            self._outstanding[command.cid] = node
            if self.collector is not None:
                self.collector.on_propose(command)
            self.cluster.propose(node, command)
        # Open loop: sleep and go again whether or not we issued.
        self._schedule(node, self._interval)

    def _on_deliver(self, node_id: int, command: Command, now: float) -> None:
        origin = self._outstanding.get(command.cid)
        if origin is not None and origin == node_id:
            del self._outstanding[command.cid]
            self._inflight[origin] -= 1

    def _on_read(
        self, node_id: int, command: Command, result: object, now: float
    ) -> None:
        origin = self._outstanding.pop(command.cid, None)
        if origin is not None:
            self._inflight[origin] -= 1


def drive(
    cluster: Cluster,
    workload: Workload,
    client_config: ClientConfig,
    duration: float,
    warmup: float = 0.0,
    collector: Optional[MetricsCollector] = None,
    drain: float = 0.0,
) -> MetricsCollector:
    """Convenience: run clients for ``warmup + duration`` and collect.

    Returns the collector (created if not given) with a closed window.
    """
    if collector is None:
        collector = MetricsCollector(cluster, warmup=warmup)
    clients = OpenLoopClients(cluster, workload, client_config, collector)
    cluster.start()
    clients.start()
    if warmup > 0:
        cluster.run_for(warmup)
    collector.begin_window()
    cluster.run_for(duration)
    collector.end_window()
    clients.stop()
    if drain > 0:
        cluster.run_for(drain)
    return collector
