"""The synthetic benchmark of Section VI-A.

Each node has a *local-set* of objects it "owns" at the application
level.  Knobs map one-to-one to the paper's experiments:

- ``locality``: probability a command targets the node's local-set
  (Figures 1-4 use 1.0; Figure 5 compares 1.0 vs 0.0; Figure 6 sweeps).
  A non-local command picks an object uniformly across *all* objects.
- ``complex_fraction``: probability of a *complex* command that
  accesses one local object plus one uniformly random object
  (Figure 7); the rest access a single object.
- ``local_set_size``: objects per node (Figure 7 varies 10/100/1000).
- ``payload_bytes``: 16 in the paper's synthetic runs.

Two serving-tier extensions (both off by default, in which case the
generator draws exactly the seed's RNG sequence and emits byte-identical
commands):

- ``read_fraction``: probability a command is a read (``is_read``).
  Reads target a single object chosen by the same locality rule as
  simple writes; the owner may serve them locally under a lease.
- ``sessions_per_node``: number of exactly-once client sessions per
  node.  Commands round-robin across the node's sessions and carry
  ``session=(client_id, seq)`` with a per-session sequence number --
  O(1) generator state per session (one int), so session counts can
  scale toward 10^5 without the workload itself becoming the bottleneck.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.consensus.commands import Command


@dataclass(frozen=True)
class SyntheticConfig:
    local_set_size: int = 100
    locality: float = 1.0
    complex_fraction: float = 0.0
    payload_bytes: int = 16
    read_fraction: float = 0.0
    sessions_per_node: int = 0

    def __post_init__(self) -> None:
        if self.local_set_size < 1:
            raise ValueError("local_set_size must be >= 1")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")
        if not 0.0 <= self.complex_fraction <= 1.0:
            raise ValueError("complex_fraction must be in [0, 1]")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.sessions_per_node < 0:
            raise ValueError("sessions_per_node must be >= 0")


class SyntheticWorkload:
    """Generates commands for one cluster; deterministic per seed."""

    def __init__(self, config: SyntheticConfig, n_nodes: int, rng: random.Random) -> None:
        self.config = config
        self.n_nodes = n_nodes
        self._rng = rng
        self._seq = [0] * n_nodes
        # Per-session sequence numbers (one int per session) plus a
        # round-robin cursor per node; empty when sessions are off.
        spn = config.sessions_per_node
        self._session_seq = [[0] * spn for _ in range(n_nodes)] if spn else []
        self._session_next = [0] * n_nodes

    def object_name(self, node: int, index: int) -> str:
        return f"o{node}.{index}"

    def _local_object(self, node: int) -> str:
        return self.object_name(node, self._rng.randrange(self.config.local_set_size))

    def _uniform_object(self) -> str:
        node = self._rng.randrange(self.n_nodes)
        return self.object_name(node, self._rng.randrange(self.config.local_set_size))

    def next_command(self, node: int) -> Command:
        """The next command issued by a client thread on ``node``."""
        seq = self._seq[node]
        self._seq[node] += 1
        cfg = self.config

        # Short-circuit draws: with read_fraction == 0.0 no extra RNG
        # value is consumed, so the command stream (and hence every
        # downstream decision log) is byte-identical to the seed's.
        is_read = bool(
            cfg.read_fraction and self._rng.random() < cfg.read_fraction
        )
        if is_read:
            # Reads target a single object by the simple-command
            # locality rule; lease-served reads are per-object.
            if self._rng.random() < cfg.locality:
                objects = {self._local_object(node)}
            else:
                objects = {self._uniform_object()}
        elif cfg.complex_fraction and self._rng.random() < cfg.complex_fraction:
            # Complex command: one likely-local object + one uniform.
            first = self._local_object(node)
            second = self._uniform_object()
            objects = {first, second}
        elif self._rng.random() < cfg.locality:
            objects = {self._local_object(node)}
        else:
            objects = {self._uniform_object()}

        session = None
        if cfg.sessions_per_node:
            idx = self._session_next[node]
            self._session_next[node] = (idx + 1) % cfg.sessions_per_node
            sseq = self._session_seq[node][idx]
            self._session_seq[node][idx] = sseq + 1
            session = (node * cfg.sessions_per_node + idx, sseq)
        return Command.make(
            node,
            seq,
            objects,
            payload_bytes=cfg.payload_bytes,
            is_read=is_read,
            session=session,
        )
