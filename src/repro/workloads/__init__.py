"""Workload generators and the open-loop client model of the paper's
evaluation (Section VI)."""

from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from repro.workloads.tpcc import TpccConfig, TpccWorkload
from repro.workloads.client import ClientConfig, OpenLoopClients

__all__ = [
    "SyntheticConfig",
    "SyntheticWorkload",
    "TpccConfig",
    "TpccWorkload",
    "ClientConfig",
    "OpenLoopClients",
]
