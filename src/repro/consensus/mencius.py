"""Mencius (Mao et al., OSDI 2008) -- simplified.

The other multi-leader protocol in the paper's related work: the slot
log is pre-partitioned round-robin (slot s belongs to node ``s mod N``),
so every node is the *coordinator* of its own slots and can run phase 2
directly at ballot 0 -- two communication delays for its own commands,
with perfect load balance and no ownership machinery.

The price, and the reason the paper's approach differs: delivery is in
global slot order, so an idle node's empty slots block everyone until
it announces SKIPs, and a command's latency is gated by the *slowest*
node's duty cycle -- Mencius couples all nodes on every command, where
M2Paxos couples only the owners of the objects actually touched.

Simplifications versus the full protocol (documented scope):

- SKIP messages are coordinator fiat (no revocation phase), which is
  Mencius's own fast path; crash *revocation* of a dead node's slots is
  not implemented -- the fault-tolerance tests exercise M2Paxos and
  Multi-Paxos, and the benchmarks are crash-free, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.consensus.base import (
    Message,
    handles,
    Protocol,
    ProtocolCosts,
    classic_quorum_size,
)
from repro.consensus.commands import Command


@dataclass(frozen=True)
class MnAccept(Message):
    """Phase 2a by the slot's pre-assigned coordinator (ballot 0)."""

    slot: int
    command: Command


@dataclass(frozen=True)
class MnAck(Message):
    slot: int
    cid: tuple[int, int]


@dataclass(frozen=True)
class MnDecide(Message):
    slot: int
    command: Command


@dataclass(frozen=True)
class MnSkip(Message):
    """Coordinator announces its own slots in ``[start, stop)`` carry
    no-ops (only slots owned by the sender are affected)."""

    start: int
    stop: int


@dataclass(frozen=True)
class MenciusConfig:
    skip_check_period: float = 0.02
    paranoid: bool = True


class Mencius(Protocol):
    """One Mencius node."""

    costs = ProtocolCosts(base_cost=160e-6, serial_fraction=0.05)

    SKIP = "__skip__"

    def __init__(self, config: Optional[MenciusConfig] = None) -> None:
        super().__init__()
        self.config = config or MenciusConfig()
        self.decided: dict[int, Optional[Command]] = {}  # None = skipped
        self.delivered_upto = -1
        self._next_own_slot: Optional[int] = None
        self._max_seen_slot = -1
        self._acks: dict[int, set[int]] = {}
        self._proposals: dict[int, Command] = {}
        self._skipped_upto: Optional[int] = None  # our own announced skips
        self.stats = {"decided": 0, "skips": 0}

    @property
    def quorum(self) -> int:
        return classic_quorum_size(self.env.n_nodes)

    def on_start(self) -> None:
        me = self.env.node_id
        self._next_own_slot = me
        self._skipped_upto = me
        self._schedule_skip_check()

    def _own(self, slot: int) -> bool:
        return slot % self.env.n_nodes == self.env.node_id

    # ------------------------------------------------------------------
    # Proposing (our own slots, ballot 0, phase 2 directly)
    # ------------------------------------------------------------------

    def propose(self, command: Command) -> None:
        assert self._next_own_slot is not None
        # Our own pre-assigned slot at ballot 0: two delays, always.
        self.note_path(command, "fast")
        slot = self._next_own_slot
        self._next_own_slot += self.env.n_nodes
        self._proposals[slot] = command
        self._max_seen_slot = max(self._max_seen_slot, slot)
        self.env.broadcast(MnAccept(slot=slot, command=command))

    @handles(MnAccept)
    def _on_accept(self, sender: int, msg: MnAccept) -> None:
        if self.config.paranoid and msg.slot % self.env.n_nodes != sender:
            raise AssertionError(
                f"node {sender} proposed in foreign slot {msg.slot}"
            )
        self._observe_slot(msg.slot)
        self.env.send(sender, MnAck(slot=msg.slot, cid=msg.command.cid))

    @handles(MnAck)
    def _on_ack(self, sender: int, msg: MnAck) -> None:
        command = self._proposals.get(msg.slot)
        if command is None or command.cid != msg.cid:
            return
        voters = self._acks.setdefault(msg.slot, set())
        voters.add(sender)
        # The coordinator's own ack arrives via loopback (the accept is
        # broadcast to self too), so voters already includes us.
        if len(voters) >= self.quorum and msg.slot not in self.decided:
            self._decide(msg.slot, command)
            self.env.broadcast(
                MnDecide(slot=msg.slot, command=command), include_self=False
            )

    # ------------------------------------------------------------------
    # Skipping (the Mencius idle-node mechanism)
    # ------------------------------------------------------------------

    def _observe_slot(self, slot: int) -> None:
        """Seeing traffic in slot s means our own unused slots below s
        are holding everyone up; announce skips for them."""
        self._max_seen_slot = max(self._max_seen_slot, slot)
        self._announce_skips()

    def _announce_skips(self) -> None:
        assert self._next_own_slot is not None
        assert self._skipped_upto is not None
        start = max(self._skipped_upto, 0)
        # Skip every own slot below the frontier of observed traffic
        # that we have not proposed in.
        stop = self._max_seen_slot + 1
        if stop <= start:
            return
        me = self.env.node_id
        n = self.env.n_nodes
        skipped_any = False
        slot = start
        # Align to our first own slot >= start.
        if slot % n != me:
            slot += (me - slot % n) % n
        while slot < stop:
            if slot not in self._proposals and slot not in self.decided:
                self._decide(slot, None)
                skipped_any = True
            slot += n
        if skipped_any:
            self.stats["skips"] += 1
            self.env.broadcast(
                MnSkip(start=start, stop=stop), include_self=False
            )
        self._skipped_upto = stop
        if self._next_own_slot < stop:
            slot = stop
            if slot % n != me:
                slot += (me - slot % n) % n
            self._next_own_slot = slot

    @handles(MnSkip)
    def _on_skip(self, sender: int, msg: MnSkip) -> None:
        n = self.env.n_nodes
        slot = msg.start
        if slot % n != sender:
            slot += (sender - slot % n) % n
        while slot < msg.stop:
            if slot not in self.decided:
                self._decide(slot, None)
            slot += n

    def _schedule_skip_check(self) -> None:
        def tick() -> None:
            self._announce_skips()
            self._schedule_skip_check()

        self.env.set_timer(self.config.skip_check_period, tick)

    # ------------------------------------------------------------------
    # Learning + delivery (global slot order)
    # ------------------------------------------------------------------

    @handles(MnDecide)
    def _on_decide(self, sender: int, msg: MnDecide) -> None:
        self._observe_slot(msg.slot)
        self._decide(msg.slot, msg.command)

    def _decide(self, slot: int, value: Optional[Command]) -> None:
        existing = self.decided.get(slot, "unset")
        if existing != "unset":
            if (
                self.config.paranoid
                and existing is not None
                and value is not None
                and existing.cid != value.cid
            ):
                raise AssertionError(f"slot {slot}: {existing} vs {value}")
            return
        self.decided[slot] = value
        self.stats["decided"] += 1
        if value is not None and not value.noop:
            self.note("decide", cid=value.cid)
        while self.delivered_upto + 1 in self.decided:
            self.delivered_upto += 1
            decided = self.decided[self.delivered_upto]
            if decided is not None and not decided.noop:
                self.env.deliver(decided)

    # ------------------------------------------------------------------

