"""Multi-Paxos baseline: a single designated leader orders all commands.

This is the classic practical deployment the paper compares against
(Section I): commands are forwarded to the leader, which assigns them
consecutive slots in one global sequence and runs Paxos phase 2 per
slot.  A phase-1 (view change) covers the whole sequence, so steady
state costs three communication delays per command for a non-leader
proposer (forward, accept, ack) plus one more for remote learners.

The leader is the bottleneck by design: it receives every forward and
every acknowledgement.  Under the simulator's CPU model that caps
throughput at roughly ``1 / (messages_at_leader * base_cost)``, which
reproduces the degradation past ~11 nodes in the paper's Figure 1.

View change: any node that suspects the leader (commands it proposed
are not decided within ``leader_timeout``) prepares the smallest view
greater than the current one that maps to itself (``view % N == id``),
collects promises with the accepted-slot maps from a majority, then
re-proposes the highest-view value per slot (no-ops for gaps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.consensus.base import (
    Message,
    handles,
    Protocol,
    ProtocolCosts,
    classic_quorum_size,
)
from repro.consensus.commands import Command, make_noop


@dataclass(frozen=True)
class MpForward(Message):
    """Client command forwarded to the believed leader."""

    command: Command


@dataclass(frozen=True)
class MpAccept(Message):
    """Phase 2a for one slot in a view."""

    view: int
    slot: int
    command: Command


@dataclass(frozen=True)
class MpAckAccept(Message):
    """Phase 2b vote, returned to the leader."""

    view: int
    slot: int
    ok: bool
    cid: tuple[int, int]


@dataclass(frozen=True)
class MpDecide(Message):
    """Learner broadcast once the leader sees a majority."""

    slot: int
    command: Command


@dataclass(frozen=True)
class MpPrepare(Message):
    """Phase 1a for a whole view (covers every slot)."""

    view: int


@dataclass(frozen=True)
class MpPromise(Message):
    """Phase 1b: promise plus the accepted map ``slot -> (view, cmd)``."""

    view: int
    ok: bool
    accepted: dict[int, tuple[int, Command]] = field(default_factory=dict)
    max_view: int = 0


@dataclass(frozen=True)
class MultiPaxosConfig:
    leader_timeout: float = 0.3
    paranoid: bool = True


class MultiPaxos(Protocol):
    """One node of the Multi-Paxos baseline."""

    costs = ProtocolCosts(base_cost=160e-6, serial_fraction=0.05)

    # Per-command coordination work the designated leader does for every
    # forwarded command (slot management, client bookkeeping).  Charged
    # as CPU occupancy: this is what saturates the single leader as the
    # deployment grows (paper, Section VI-A).  Part of it (slot
    # assignment, socket management) is inherently serial, which is why
    # extra cores stop helping the leader past a point (Figure 4).
    LEADER_COORDINATION_COST = 1.2e-3
    LEADER_COORDINATION_SERIAL = 0.12

    def __init__(self, config: Optional[MultiPaxosConfig] = None) -> None:
        super().__init__()
        self.config = config or MultiPaxosConfig()
        self.view = 0
        self.promised_view = 0
        self.accepted: dict[int, tuple[int, Command]] = {}
        self.decided: dict[int, Command] = {}
        self._decided_cids: set[tuple[int, int]] = set()
        self._delivered_cids: set[tuple[int, int]] = set()
        self.next_slot = 1  # leader-only: next slot to assign
        self.delivered_upto = 0
        self._votes: dict[tuple[int, int], set[int]] = {}
        self._pending_view: Optional[int] = None
        self._promises: dict[int, MpPromise] = {}
        self._awaiting: dict[tuple[int, int], float] = {}
        self._chosen_view: dict[int, int] = {}
        self.stats = {"decided": 0, "view_changes": 0, "forwards": 0}

    # ------------------------------------------------------------------

    @property
    def leader(self) -> int:
        return self.view % self.env.n_nodes

    @property
    def is_leader(self) -> bool:
        return self.leader == self.env.node_id

    @property
    def quorum(self) -> int:
        return classic_quorum_size(self.env.n_nodes)

    def propose(self, command: Command) -> None:
        if self.is_leader:
            # Leader-local proposal: accept round only, two delays --
            # the protocol's own "fast" case.
            self.note_path(command, "fast")
            self._assign(command)
        else:
            self.stats["forwards"] += 1
            self.note_path(command, "forward", hops=1)
            self.env.send(self.leader, MpForward(command=command))
        self._awaiting[command.cid] = self.env.now()
        self._arm_leader_timeout(command)

    def _arm_leader_timeout(self, command: Command) -> None:
        def on_timeout() -> None:
            if command.cid in self._awaiting:
                self._start_view_change()
                # Re-submit once a new view settles; retry via timer.
                self.env.set_timer(
                    self.config.leader_timeout, lambda: self._resubmit(command)
                )

        jitter = 1.0 + 0.5 * self.env.rng.random()
        self.env.set_timer(self.config.leader_timeout * jitter, on_timeout)

    def _resubmit(self, command: Command) -> None:
        if command.cid in self._awaiting:
            self.propose(command)

    # ------------------------------------------------------------------
    # Leader: slot assignment + phase 2
    # ------------------------------------------------------------------

    def _assign(self, command: Command) -> None:
        if command.cid in self._decided_cids:
            return
        slot = self.next_slot
        self.next_slot += 1
        self._send_accepts(slot, command)

    def _send_accepts(self, slot: int, command: Command) -> None:
        self.env.broadcast(MpAccept(view=self.view, slot=slot, command=command))

    @handles(MpAccept)
    def _on_accept(self, sender: int, msg: MpAccept) -> None:
        if msg.view < self.promised_view:
            self.env.send(
                sender,
                MpAckAccept(view=msg.view, slot=msg.slot, ok=False, cid=msg.command.cid),
            )
            return
        self.promised_view = msg.view
        self.view = max(self.view, msg.view)
        self.accepted[msg.slot] = (msg.view, msg.command)
        self.env.send(
            sender,
            MpAckAccept(view=msg.view, slot=msg.slot, ok=True, cid=msg.command.cid),
        )

    @handles(MpAckAccept)
    def _on_ack_accept(self, sender: int, msg: MpAckAccept) -> None:
        if not msg.ok or msg.view != self.view:
            return
        key = (msg.slot, msg.view)
        voters = self._votes.setdefault(key, set())
        voters.add(sender)
        if len(voters) >= self.quorum and msg.slot not in self.decided:
            entry = self.accepted.get(msg.slot)
            if entry is None or entry[1].cid != msg.cid:
                return
            command = entry[1]
            self.note("quorum", cid=command.cid)
            self._decide(msg.slot, command)
            self.env.broadcast(MpDecide(slot=msg.slot, command=command), include_self=False)

    # ------------------------------------------------------------------
    # Learning + delivery (global slot order)
    # ------------------------------------------------------------------

    @handles(MpDecide)
    def _on_decide(self, sender: int, msg: MpDecide) -> None:
        self._decide(msg.slot, msg.command)

    def _decide(self, slot: int, command: Command) -> None:
        existing = self.decided.get(slot)
        if existing is not None:
            if self.config.paranoid and existing.cid != command.cid:
                raise AssertionError(
                    f"slot {slot}: {existing} decided, got {command}"
                )
            return
        self.decided[slot] = command
        self._decided_cids.add(command.cid)
        self.stats["decided"] += 1
        if not command.noop:
            self.note("decide", cid=command.cid)
        self.next_slot = max(self.next_slot, slot + 1)
        self._awaiting.pop(command.cid, None)
        while self.delivered_upto + 1 in self.decided:
            self.delivered_upto += 1
            decided = self.decided[self.delivered_upto]
            # A resubmitted command can be chosen at two slots (its
            # first round may have completed after the timeout fired);
            # deliver exactly once.
            if not decided.noop and decided.cid not in self._delivered_cids:
                self._delivered_cids.add(decided.cid)
                self.env.deliver(decided)

    # ------------------------------------------------------------------
    # View change (phase 1 over all slots)
    # ------------------------------------------------------------------

    def _start_view_change(self) -> None:
        new_view = self.view + 1
        while new_view % self.env.n_nodes != self.env.node_id:
            new_view += 1
        if self._pending_view is not None and self._pending_view >= new_view:
            return
        self.stats["view_changes"] += 1
        self._pending_view = new_view
        self._promises = {}
        self.env.broadcast(MpPrepare(view=new_view))

    @handles(MpPrepare)
    def _on_prepare(self, sender: int, msg: MpPrepare) -> None:
        if msg.view <= self.promised_view:
            self.env.send(
                sender, MpPromise(view=msg.view, ok=False, max_view=self.promised_view)
            )
            return
        self.promised_view = msg.view
        undecided = {
            slot: entry
            for slot, entry in self.accepted.items()
            if slot not in self.decided
        }
        self.env.send(
            sender, MpPromise(view=msg.view, ok=True, accepted=undecided)
        )

    @handles(MpPromise)
    def _on_promise(self, sender: int, msg: MpPromise) -> None:
        if self._pending_view is None or msg.view != self._pending_view:
            return
        if not msg.ok:
            self._pending_view = None
            self.view = max(self.view, msg.max_view)
            return
        self._promises[sender] = msg
        if len(self._promises) < self.quorum:
            return

        # Become leader: adopt the highest-view accepted value per slot,
        # fill holes below the frontier with no-ops, then re-propose.
        self.view = msg.view
        self._pending_view = None
        self._chosen_view = {}
        chosen: dict[int, Command] = {}
        for promise in self._promises.values():
            for slot, (vote_view, command) in promise.accepted.items():
                current = chosen.get(slot)
                if current is None or vote_view > self._chosen_view.get(slot, -1):
                    chosen[slot] = command
                    self._chosen_view[slot] = vote_view
        top = max(
            [self.delivered_upto]
            + list(chosen.keys())
            + list(self.decided.keys())
        )
        noop_seq = 0
        for slot in range(self.delivered_upto + 1, top + 1):
            if slot in self.decided:
                continue
            command = chosen.get(slot)
            if command is None:
                noop_seq += 1
                command = make_noop("__mp__", self.env.node_id, self.view * 10_000 + noop_seq)
            self._send_accepts(slot, command)
        self.next_slot = top + 1
        # Our own still-pending commands are re-proposed by their
        # per-command resubmit timers once this view settles.

    # ------------------------------------------------------------------

    def occupancy_cost(self, message: Message) -> tuple[float, float]:
        if isinstance(message, MpForward) and self.is_leader:
            return self.LEADER_COORDINATION_COST, self.LEADER_COORDINATION_SERIAL
        return 0.0, 0.0

    @handles(MpForward)
    def _on_forward(self, sender: int, msg: MpForward) -> None:
        if self.is_leader:
            self._assign(msg.command)
        else:
            # Stale forward: pass it along to the current leader.
            self.env.send(self.leader, msg)
