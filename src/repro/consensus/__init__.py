"""Consensus protocols: shared sans-I/O interface and the paper's baselines.

- :mod:`repro.consensus.base` -- the :class:`Protocol` / :class:`Env`
  contract every implementation follows, quorum helpers, CPU-cost hooks.
- :mod:`repro.consensus.commands` -- commands with object access sets
  (``c.LS`` in the paper) and the conflict relation.
- :mod:`repro.consensus.multipaxos` -- single-leader Multi-Paxos.
- :mod:`repro.consensus.genpaxos` -- Generalized Paxos (fast rounds with
  fast quorums, leader recovery on collision).
- :mod:`repro.consensus.epaxos` -- EPaxos (dependency tracking, fast and
  slow paths, SCC-based execution order).
"""

from repro.consensus.base import (
    Env,
    Protocol,
    ProtocolCosts,
    classic_quorum_size,
    fast_quorum_size,
    epaxos_fast_quorum_size,
)
from repro.consensus.commands import Command, conflict
from repro.consensus.paxos import ClassicPaxos
from repro.consensus.mencius import Mencius

__all__ = [
    "Env",
    "Protocol",
    "ProtocolCosts",
    "classic_quorum_size",
    "fast_quorum_size",
    "epaxos_fast_quorum_size",
    "Command",
    "conflict",
    "ClassicPaxos",
    "Mencius",
]
