"""EPaxos baseline (Moraru et al., SOSP 2013).

The strongest competitor in the paper's evaluation.  Every replica
leads its own instance space ``(replica, slot)``.  Ordering information
is carried as *dependencies*: the set of instances holding conflicting
commands, plus a sequence number used to break cycles at execution.

- **Fast path** (two delays): the command leader broadcasts
  ``PreAccept``; if a fast quorum (``F + floor((F+1)/2)``) returns the
  leader's attributes unchanged, the command commits immediately.
- **Slow path** (four delays): attribute conflicts send the union of
  dependencies through a classic Paxos-Accept round first.
- **Execution**: committed instances form a dependency graph; strongly
  connected components are executed in reverse topological order,
  members ordered by sequence number.  Execution order is the delivery
  order.

Costs the paper attributes to EPaxos and modelled here: fast quorums
larger than a majority for N > 5; dependency computation on the
critical path (``per_conflict_cost``); synchronisation on shared
conflict metadata (high ``serial_fraction``); dependency sets inside
messages (bigger wire sizes under contention).

Recovery (explicit prepare) is implemented in the simplified
common-case form: a replica that suspects an instance's leader collects
the instance state from a majority and finishes with the strongest
state found (committed > accepted > preaccepted).  The paper's
evaluation never crashes replicas, and neither do the benchmarks; the
fault-tolerance tests exercise this path only in the shapes the
simplified rules handle correctly (no partially-formed fast quorum at
the crash point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.consensus.base import (
    Message,
    handles,
    Protocol,
    ProtocolCosts,
    classic_quorum_size,
    epaxos_fast_quorum_size,
)
from repro.consensus.commands import Command

EpInstanceId = tuple[int, int]
"""``(replica, slot)``."""

PREACCEPTED = "preaccepted"
ACCEPTED = "accepted"
COMMITTED = "committed"
EXECUTED = "executed"


@dataclass(frozen=True)
class EpPreAccept(Message):
    instance: EpInstanceId
    ballot: int
    command: Command
    seq: int
    deps: frozenset[EpInstanceId]


@dataclass(frozen=True)
class EpPreAcceptReply(Message):
    instance: EpInstanceId
    ballot: int
    ok: bool
    seq: int
    deps: frozenset[EpInstanceId]
    changed: bool


@dataclass(frozen=True)
class EpAccept(Message):
    instance: EpInstanceId
    ballot: int
    command: Command
    seq: int
    deps: frozenset[EpInstanceId]


@dataclass(frozen=True)
class EpAcceptReply(Message):
    instance: EpInstanceId
    ballot: int
    ok: bool


@dataclass(frozen=True)
class EpCommit(Message):
    instance: EpInstanceId
    command: Command
    seq: int
    deps: frozenset[EpInstanceId]


@dataclass(frozen=True)
class EpPrepare(Message):
    instance: EpInstanceId
    ballot: int


@dataclass(frozen=True)
class EpPrepareReply(Message):
    instance: EpInstanceId
    ballot: int
    ok: bool
    status: Optional[str] = None
    command: Optional[Command] = None
    seq: int = 0
    deps: frozenset[EpInstanceId] = frozenset()


@dataclass
class _EpInstance:
    """Replica-local record of one instance."""

    command: Optional[Command] = None
    seq: int = 0
    deps: frozenset[EpInstanceId] = frozenset()
    status: str = PREACCEPTED
    ballot: int = 0
    # Leader-side bookkeeping.
    replies: list[EpPreAcceptReply] = field(default_factory=list)
    accept_votes: set[int] = field(default_factory=set)
    prepare_replies: dict[int, EpPrepareReply] = field(default_factory=dict)
    leading: bool = False


@dataclass(frozen=True)
class EPaxosConfig:
    # Must comfortably exceed worst-case commit latency (including
    # saturation queueing): the simplified recovery assumes the instance
    # leader is actually gone, as real EPaxos deployments tune it.
    commit_timeout: float = 3.0
    paranoid: bool = True
    enable_recovery: bool = True


class EPaxos(Protocol):
    """One EPaxos replica."""

    # High serial fraction: dependency metadata is shared between local
    # threads, the contention the paper's Figure 4 attributes EPaxos's
    # poor core scaling to.
    costs = ProtocolCosts(
        base_cost=160e-6,
        serial_fraction=0.45,
        per_conflict_cost=16e-6,
    )

    def __init__(self, config: Optional[EPaxosConfig] = None) -> None:
        super().__init__()
        self.config = config or EPaxosConfig()
        self.instances: dict[EpInstanceId, _EpInstance] = {}
        self.next_slot = 1
        # Conflict index: for each object, the highest slot of each
        # replica's instance space that touches it.  Tracking the latest
        # *per replica* (not one global latest) is what guarantees that
        # of any two conflicting committed instances, at least one has
        # the other in its dependencies.
        self._latest: dict[str, dict[int, int]] = {}
        self._max_seq: dict[str, int] = {}
        self._executed: set[EpInstanceId] = set()
        self._waiting: dict[EpInstanceId, set[EpInstanceId]] = {}
        self._timeout_armed: set[EpInstanceId] = set()
        self.stats = {"fast_path": 0, "slow_path": 0, "committed": 0, "recoveries": 0}

    @property
    def quorum(self) -> int:
        return classic_quorum_size(self.env.n_nodes)

    @property
    def fast_quorum(self) -> int:
        return epaxos_fast_quorum_size(self.env.n_nodes)

    # ------------------------------------------------------------------
    # Phase 1: PreAccept
    # ------------------------------------------------------------------

    def propose(self, command: Command) -> None:
        instance_id = (self.env.node_id, self.next_slot)
        self.next_slot += 1
        seq, deps = self._attributes(command, exclude=instance_id)
        record = _EpInstance(
            command=command, seq=seq, deps=deps, status=PREACCEPTED, leading=True
        )
        self.instances[instance_id] = record
        self._index(instance_id, command, seq)
        self.env.broadcast(
            EpPreAccept(
                instance=instance_id, ballot=0, command=command, seq=seq, deps=deps
            ),
            include_self=False,
        )
        self._arm_commit_timeout(instance_id)

    def _attributes(
        self, command: Command, exclude: EpInstanceId
    ) -> tuple[int, frozenset[EpInstanceId]]:
        """Compute ``(seq, deps)`` from the local conflict index."""
        deps = set()
        seq = 1
        for obj in command.ls:
            for replica, slot in self._latest.get(obj, {}).items():
                dep = (replica, slot)
                if dep != exclude:
                    deps.add(dep)
            seq = max(seq, self._max_seq.get(obj, 0) + 1)
        return seq, frozenset(deps)

    def _index(self, instance_id: EpInstanceId, command: Command, seq: int) -> None:
        replica, slot = instance_id
        for obj in command.ls:
            per_replica = self._latest.setdefault(obj, {})
            if slot > per_replica.get(replica, 0):
                per_replica[replica] = slot
            self._max_seq[obj] = max(self._max_seq.get(obj, 0), seq)

    @handles(EpPreAccept)
    def _on_preaccept(self, sender: int, msg: EpPreAccept) -> None:
        record = self.instances.setdefault(msg.instance, _EpInstance())
        if msg.ballot < record.ballot or record.status in (COMMITTED, EXECUTED):
            return
        merged_seq, merged_deps = self._merge_attributes(msg)
        record.command = msg.command
        record.seq = merged_seq
        record.deps = merged_deps
        record.status = PREACCEPTED
        record.ballot = msg.ballot
        self._index(msg.instance, msg.command, merged_seq)
        self._arm_commit_timeout(msg.instance)
        changed = merged_seq != msg.seq or merged_deps != msg.deps
        self.env.send(
            sender,
            EpPreAcceptReply(
                instance=msg.instance,
                ballot=msg.ballot,
                ok=True,
                seq=merged_seq,
                deps=merged_deps,
                changed=changed,
            ),
        )

    def _merge_attributes(
        self, msg: EpPreAccept
    ) -> tuple[int, frozenset[EpInstanceId]]:
        local_seq, local_deps = self._attributes(msg.command, exclude=msg.instance)
        return max(msg.seq, local_seq), msg.deps | local_deps

    @handles(EpPreAcceptReply)
    def _on_preaccept_reply(self, sender: int, msg: EpPreAcceptReply) -> None:
        record = self.instances.get(msg.instance)
        if (
            record is None
            or not record.leading
            or record.status != PREACCEPTED
            or msg.ballot != record.ballot
        ):
            return
        record.replies.append(msg)
        # The leader itself counts toward the fast quorum.
        if len(record.replies) + 1 < self.fast_quorum:
            return
        unchanged = all(not reply.changed for reply in record.replies)
        if unchanged:
            self.stats["fast_path"] += 1
            self.note_path(record.command, "fast")
            self._commit(msg.instance, record.command, record.seq, record.deps)
        else:
            self.stats["slow_path"] += 1
            self.note_path(record.command, "slow")
            seq = max([record.seq] + [reply.seq for reply in record.replies])
            deps = record.deps
            for reply in record.replies:
                deps = deps | reply.deps
            record.seq = seq
            record.deps = deps
            record.status = ACCEPTED
            record.accept_votes = set()
            self.env.broadcast(
                EpAccept(
                    instance=msg.instance,
                    ballot=record.ballot,
                    command=record.command,
                    seq=seq,
                    deps=deps,
                ),
                include_self=False,
            )

    # ------------------------------------------------------------------
    # Phase 2 (slow path): Paxos-Accept on the attributes
    # ------------------------------------------------------------------

    @handles(EpAccept)
    def _on_accept(self, sender: int, msg: EpAccept) -> None:
        record = self.instances.setdefault(msg.instance, _EpInstance())
        if msg.ballot < record.ballot or record.status in (COMMITTED, EXECUTED):
            return
        record.command = msg.command
        record.seq = msg.seq
        record.deps = msg.deps
        record.status = ACCEPTED
        record.ballot = msg.ballot
        self._index(msg.instance, msg.command, msg.seq)
        self._arm_commit_timeout(msg.instance)
        self.env.send(
            sender, EpAcceptReply(instance=msg.instance, ballot=msg.ballot, ok=True)
        )

    @handles(EpAcceptReply)
    def _on_accept_reply(self, sender: int, msg: EpAcceptReply) -> None:
        record = self.instances.get(msg.instance)
        if (
            record is None
            or not record.leading
            or record.status != ACCEPTED
            or msg.ballot != record.ballot
            or not msg.ok
        ):
            return
        record.accept_votes.add(sender)
        if len(record.accept_votes) + 1 >= self.quorum:
            self._commit(msg.instance, record.command, record.seq, record.deps)

    # ------------------------------------------------------------------
    # Commit + execution
    # ------------------------------------------------------------------

    def _commit(
        self,
        instance_id: EpInstanceId,
        command: Command,
        seq: int,
        deps: frozenset[EpInstanceId],
    ) -> None:
        record = self.instances.setdefault(instance_id, _EpInstance())
        if record.status in (COMMITTED, EXECUTED):
            return
        record.command = command
        record.seq = seq
        record.deps = deps
        record.status = COMMITTED
        self.stats["committed"] += 1
        if not command.noop:
            self.note("decide", cid=command.cid)
        self._index(instance_id, command, seq)
        if record.leading:
            self.env.broadcast(
                EpCommit(instance=instance_id, command=command, seq=seq, deps=deps),
                include_self=False,
            )
        self._on_committed(instance_id)

    @handles(EpCommit)
    def _on_commit(self, sender: int, msg: EpCommit) -> None:
        record = self.instances.setdefault(msg.instance, _EpInstance())
        if record.status in (COMMITTED, EXECUTED):
            return
        record.command = msg.command
        record.seq = msg.seq
        record.deps = msg.deps
        record.status = COMMITTED
        self._index(msg.instance, msg.command, msg.seq)
        self._on_committed(msg.instance)

    def _on_committed(self, instance_id: EpInstanceId) -> None:
        self._try_execute(instance_id)
        for waiter in list(self._waiting.pop(instance_id, ())):
            if waiter not in self._executed:
                self._try_execute(waiter)

    def _try_execute(self, root: EpInstanceId) -> None:
        """Tarjan SCC over committed dependencies reachable from ``root``.

        If any reachable dependency is not yet committed, execution of
        ``root`` is deferred until that dependency commits.
        """
        record = self.instances.get(root)
        if record is None or record.status != COMMITTED or root in self._executed:
            return

        index_of: dict[EpInstanceId, int] = {}
        low: dict[EpInstanceId, int] = {}
        on_stack: set[EpInstanceId] = set()
        stack: list[EpInstanceId] = []
        sccs: list[list[EpInstanceId]] = []
        counter = [0]
        blocked: list[EpInstanceId] = []

        def strongconnect(v: EpInstanceId) -> None:
            index_of[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            v_record = self.instances[v]
            for w in sorted(v_record.deps):
                if w in self._executed:
                    continue
                w_record = self.instances.get(w)
                if w_record is None or w_record.status != COMMITTED:
                    blocked.append(w)
                    continue
                if w not in index_of:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif w in on_stack:
                    low[v] = min(low[v], index_of[w])
            if low[v] == index_of[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                sccs.append(component)

        strongconnect(root)

        if blocked:
            for dep in blocked:
                self._waiting.setdefault(dep, set()).add(root)
            return

        # Tarjan emits SCCs in reverse topological order, which is the
        # execution order (dependencies first).
        for component in sccs:
            members = sorted(
                component, key=lambda iid: (self.instances[iid].seq, iid)
            )
            for instance_id in members:
                if instance_id in self._executed:
                    continue
                self._executed.add(instance_id)
                member = self.instances[instance_id]
                member.status = EXECUTED
                if member.command is not None and not member.command.noop:
                    self.env.deliver(member.command)

    # ------------------------------------------------------------------
    # Recovery (simplified explicit prepare)
    # ------------------------------------------------------------------

    def _arm_commit_timeout(self, instance_id: EpInstanceId) -> None:
        """Any replica that knows of an uncommitted instance arms a
        timeout, so a crashed command leader cannot orphan it."""
        if not self.config.enable_recovery:
            return
        if instance_id in self._timeout_armed:
            return
        self._timeout_armed.add(instance_id)

        def check() -> None:
            record = self.instances.get(instance_id)
            if record is not None and record.status in (COMMITTED, EXECUTED):
                return
            self._recover(instance_id)
            # Keep watching: a failed recovery (competing ballots, more
            # crashes) must be retried.
            jitter = 1.0 + 0.5 * self.env.rng.random()
            self.env.set_timer(self.config.commit_timeout * jitter, check)

        jitter = 1.0 + 0.5 * self.env.rng.random()
        self.env.set_timer(self.config.commit_timeout * jitter, check)

    def _recover(self, instance_id: EpInstanceId) -> None:
        record = self.instances.setdefault(instance_id, _EpInstance())
        self.stats["recoveries"] += 1
        record.ballot += 1 + self.env.node_id
        record.prepare_replies = {}
        record.leading = True
        self.env.broadcast(
            EpPrepare(instance=instance_id, ballot=record.ballot)
        )

    @handles(EpPrepare)
    def _on_prepare(self, sender: int, msg: EpPrepare) -> None:
        record = self.instances.setdefault(msg.instance, _EpInstance())
        if msg.ballot <= record.ballot and sender != self.env.node_id:
            self.env.send(
                sender,
                EpPrepareReply(instance=msg.instance, ballot=msg.ballot, ok=False),
            )
            return
        record.ballot = max(record.ballot, msg.ballot)
        self.env.send(
            sender,
            EpPrepareReply(
                instance=msg.instance,
                ballot=msg.ballot,
                ok=True,
                status=record.status if record.command is not None else None,
                command=record.command,
                seq=record.seq,
                deps=record.deps,
            ),
        )

    @handles(EpPrepareReply)
    def _on_prepare_reply(self, sender: int, msg: EpPrepareReply) -> None:
        record = self.instances.get(msg.instance)
        if record is None or msg.ballot != record.ballot:
            return
        if record.status in (COMMITTED, EXECUTED):
            return
        if not msg.ok:
            return
        record.prepare_replies[sender] = msg
        if len(record.prepare_replies) < self.quorum:
            return
        replies = list(record.prepare_replies.values())
        record.prepare_replies = {}

        committed = next((r for r in replies if r.status in (COMMITTED, EXECUTED)), None)
        if committed is not None:
            self._commit(msg.instance, committed.command, committed.seq, committed.deps)
            self.env.broadcast(
                EpCommit(
                    instance=msg.instance,
                    command=committed.command,
                    seq=committed.seq,
                    deps=committed.deps,
                ),
                include_self=False,
            )
            return
        accepted = next((r for r in replies if r.status == ACCEPTED), None)
        chosen = accepted or next(
            (r for r in replies if r.status == PREACCEPTED), None
        )
        if chosen is None or chosen.command is None:
            return  # nothing to recover; the instance was never started
        record.command = chosen.command
        record.seq = chosen.seq
        record.deps = chosen.deps
        record.status = ACCEPTED
        record.accept_votes = set()
        record.leading = True
        self.env.broadcast(
            EpAccept(
                instance=msg.instance,
                ballot=record.ballot,
                command=chosen.command,
                seq=chosen.seq,
                deps=chosen.deps,
            ),
            include_self=False,
        )

    # ------------------------------------------------------------------

    def processing_cost(self, message):
        cost = self.costs.base_cost
        if isinstance(message, (EpPreAccept, EpAccept, EpCommit)):
            cost += self.costs.per_conflict_cost * len(message.deps)
        elif isinstance(message, EpPreAcceptReply):
            cost += self.costs.per_conflict_cost * len(message.deps)
        return cost, self.costs.serial_fraction

