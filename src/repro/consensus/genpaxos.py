"""Generalized Paxos baseline (Lamport 2005), rendered for object
conflict semantics.

Commands commute iff their object access sets are disjoint, so a
C-struct is determined (up to equivalence) by its per-object
subsequences.  We therefore run the protocol over per-object instances
``(l, idx)``:

- **Fast rounds** (ballot 0): a proposer of a single-object command
  broadcasts it directly to all acceptors; each acceptor votes for the
  command at its next free index of the object and broadcasts its vote
  to every learner (the N x N vote traffic is Generalized Paxos's
  documented cost).  A learner learns the command at ``(l, idx)`` once a
  *fast quorum* (floor(2N/3) + 1) voted identically.
- **Collisions**: when votes at an index split between conflicting
  commands, no fast quorum can form; the designated leader notices the
  stuck frontier and resolves the instance in a classic round (prepare /
  accept with majority quorums, two extra delays) -- the same recovery
  cost as Fast Paxos, as the paper notes.
- **Multi-object commands** are serialised through the leader, which
  assigns them one index per accessed object atomically in a classic
  round.  This mirrors the conservative handling that makes Generalized
  Paxos "not sensitive to locality" and keeps cross-object orders
  acyclic (two multi-object commands are ordered by the single leader;
  a single-object command shares at most one object with anything).

Delivery reuses the per-object frontier engine of the core package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.consensus.base import (
    Message,
    handles,
    Protocol,
    ProtocolCosts,
    classic_quorum_size,
    fast_quorum_size,
)
from repro.consensus.commands import Command, make_noop
from repro.core.delivery import DeliveryEngine
from repro.core.messages import Instance
from repro.core.state import M2PaxosState


@dataclass(frozen=True)
class GpPropose(Message):
    """Fast-round proposal, broadcast straight to the acceptors."""

    command: Command


@dataclass(frozen=True)
class GpVote(Message):
    """An acceptor's fast-round vote: ``command`` at the listed instances."""

    ballot: int
    entries: tuple[Instance, ...]
    command: Command


@dataclass(frozen=True)
class GpSubmit(Message):
    """Multi-object command handed to the leader."""

    command: Command


@dataclass(frozen=True)
class GpPrepare(Message):
    """Classic phase 1a over one or more instances (atomically)."""

    req: int
    instances: tuple[Instance, ...]
    ballot: int


@dataclass(frozen=True)
class GpPromise(Message):
    """Classic phase 1b: every vote this acceptor cast per instance."""

    req: int
    ballot: int
    ok: bool
    votes: dict[Instance, tuple[tuple[int, Command], ...]] = field(
        default_factory=dict
    )


@dataclass(frozen=True)
class GpAccept(Message):
    """Classic phase 2a, possibly covering several instances atomically."""

    req: int
    ballot: int
    to_decide: dict[Instance, Command]


@dataclass(frozen=True)
class GpAckAccept(Message):
    """Classic phase 2b."""

    req: int
    ok: bool
    to_decide: dict[Instance, Command]


@dataclass(frozen=True)
class GpDecide(Message):
    to_decide: dict[Instance, Command]


@dataclass(frozen=True)
class GenPaxosConfig:
    leader: int = 0
    collision_check_period: float = 0.05
    collision_timeout: float = 0.05
    retry_timeout: float = 0.3
    paranoid: bool = True


class GenPaxos(Protocol):
    """One node of the Generalized Paxos baseline.

    Generalized Paxos must track which commands interfere and carry
    C-struct fragments in its votes, so it pays a higher serial CPU
    fraction and a per-conflict cost, per the paper's analysis.
    """

    costs = ProtocolCosts(
        base_cost=160e-6, serial_fraction=0.25, per_conflict_cost=8e-6
    )

    def __init__(self, config: Optional[GenPaxosConfig] = None) -> None:
        super().__init__()
        self.config = config or GenPaxosConfig()
        self.state = M2PaxosState()
        self.delivery: Optional[DeliveryEngine] = None
        # Acceptor state: fast votes this node cast, per instance.
        self._my_votes: dict[Instance, Command] = {}
        self._voted_instances: dict[tuple[int, int], set[Instance]] = {}
        self._next_vote_idx: dict[str, int] = {}
        self._promised: dict[Instance, int] = {}
        self._accepted: dict[Instance, tuple[int, Command]] = {}
        # Learner state: votes observed from every acceptor.
        self._seen_votes: dict[Instance, dict[int, tuple[int, Command]]] = {}
        # Leader state.
        self._req_counter = 0
        self._recovering: set[Instance] = set()
        self._pending_prepares: dict[int, dict] = {}
        self._pending_accepts: dict[int, dict] = {}
        self._leader_next_idx: dict[str, int] = {}
        self._noop_counter = 0
        # Leader-only: instance sets assigned to multi-object commands.
        # Retries and recovery re-use the same set so a multi-object
        # command is always decided atomically (never at diverging
        # indices, which could knot the per-object delivery orders).
        self._assignments: dict[tuple[int, int], tuple[Instance, ...]] = {}
        self.stats = {
            "fast_learned": 0,
            "collisions": 0,
            "classic_rounds": 0,
            "retries": 0,
        }

    def bind(self, env) -> None:
        super().bind(env)
        self.delivery = DeliveryEngine(self.state, self._on_append)

    def on_start(self) -> None:
        if self.env.node_id == self.config.leader:
            self._schedule_collision_check()

    @property
    def quorum(self) -> int:
        return classic_quorum_size(self.env.n_nodes)

    @property
    def fast_quorum(self) -> int:
        return fast_quorum_size(self.env.n_nodes)

    @property
    def recovery_quorum(self) -> int:
        """Phase-1 quorum for classic rounds.

        Fast Paxos safety requires the prepare quorum ``q`` to satisfy
        ``q > 2 * (N - fq)`` so that a value with a possible fast quorum
        of votes strictly out-votes any rival inside the prepare quorum.
        With ``fq = floor(2N/3) + 1`` this exceeds a bare majority for
        N >= 7 -- one of the larger-quorum costs of Generalized Paxos
        the paper calls out.
        """
        n = self.env.n_nodes
        return max(self.quorum, 2 * (n - self.fast_quorum) + 1)

    def _next_req(self) -> int:
        self._req_counter += 1
        return self._req_counter

    # ------------------------------------------------------------------
    # Proposing
    # ------------------------------------------------------------------

    def propose(self, command: Command) -> None:
        if self._is_learned(command):
            return
        if len(command.ls) == 1:
            self.env.broadcast(GpPropose(command=command))
        else:
            # Serialised through the designated leader: one extra hop
            # before its classic round even starts.
            self.note_path(command, "forward", hops=1)
            self.env.send(self.config.leader, GpSubmit(command=command))
        self._arm_retry(command)

    def _is_learned(self, command: Command) -> bool:
        return all(self.state.is_decided_for(l, command) for l in command.ls)

    def _arm_retry(self, command: Command) -> None:
        def on_timeout() -> None:
            if not self._is_learned(command):
                self.stats["retries"] += 1
                self.propose(command)

        jitter = 1.0 + 0.5 * self.env.rng.random()
        self.env.set_timer(self.config.retry_timeout * jitter, on_timeout)

    # ------------------------------------------------------------------
    # Acceptor: fast-round voting
    # ------------------------------------------------------------------

    @handles(GpPropose)
    def _on_propose(self, sender: int, msg: GpPropose) -> None:
        command = msg.command
        previous = self._voted_instances.get(command.cid, set())
        for inst in previous:
            decided = self.state.decided_at(inst)
            if decided is None or decided.cid == command.cid:
                # Still in flight (or already won) somewhere: do not
                # create a duplicate vote at a second index.
                return
        entries: list[Instance] = []
        for l in sorted(command.ls):
            idx = self._next_free_index(l)
            inst = (l, idx)
            if self._promised.get(inst, 0) > 0:
                # A classic round took this instance over; skip ahead.
                idx = self._bump_index(l, idx)
                inst = (l, idx)
            self._my_votes[inst] = command
            self._next_vote_idx[l] = idx + 1
            entries.append(inst)
        self._voted_instances.setdefault(command.cid, set()).update(entries)
        self.env.broadcast(
            GpVote(ballot=0, entries=tuple(entries), command=command)
        )

    def _next_free_index(self, l: str) -> int:
        obj = self.state.obj(l)
        return max(
            self._next_vote_idx.get(l, 1),
            obj.max_decided() + 1,
            obj.appended + 1,
        )

    def _bump_index(self, l: str, idx: int) -> int:
        while self._promised.get((l, idx), 0) > 0 or (l, idx) in self._my_votes:
            idx += 1
        return idx

    # ------------------------------------------------------------------
    # Learner: counting fast votes
    # ------------------------------------------------------------------

    @handles(GpVote)
    def _on_vote(self, sender: int, msg: GpVote) -> None:
        for inst in msg.entries:
            per_acceptor = self._seen_votes.setdefault(inst, {})
            existing = per_acceptor.get(sender)
            if existing is None or existing[0] < msg.ballot:
                per_acceptor[sender] = (msg.ballot, msg.command)
            count = sum(
                1
                for ballot, cmd in per_acceptor.values()
                if ballot == msg.ballot and cmd.cid == msg.command.cid
            )
            if count >= self.fast_quorum and self.state.decided_at(inst) is None:
                self.stats["fast_learned"] += 1
                self._learn(inst, msg.command)

    def _learn(self, inst: Instance, command: Command) -> None:
        l, idx = inst
        existing = self.state.decided_at(inst)
        if existing is not None:
            if self.config.paranoid and existing.cid != command.cid:
                raise AssertionError(
                    f"instance {inst}: {existing} learned, got {command}"
                )
            return
        if not command.noop:
            self.note("decide", cid=command.cid)
        assert self.delivery is not None
        self.delivery.record_decision(l, idx, command, self.env.now())
        self.delivery.pump(dirty=command.ls)

    def _on_append(self, command: Command) -> None:
        if not command.noop:
            self.env.deliver(command)

    # ------------------------------------------------------------------
    # Leader: collision detection + classic rounds
    # ------------------------------------------------------------------

    def _schedule_collision_check(self) -> None:
        def check() -> None:
            self._check_collisions()
            self._schedule_collision_check()

        self.env.set_timer(self.config.collision_check_period, check)

    def _check_collisions(self) -> None:
        """Find frontier instances that cannot complete on the fast path.

        Covers both true collisions (split fast votes) and holes left by
        abandoned classic rounds; either way a classic round settles the
        instance (with a no-op if nothing was voted there).
        """
        now = self.env.now()
        for l, obj in list(self.state.objects.items()):
            frontier = obj.appended + 1
            inst = (l, frontier)
            if self.state.decided_at(inst) is not None:
                continue
            if inst in self._recovering:
                continue
            stuck = inst in self._seen_votes or obj.max_decided() > frontier
            if not stuck:
                continue
            if now - obj.last_progress < self.config.collision_timeout:
                continue
            self.stats["collisions"] += 1
            self._start_classic_round((inst,), command=None)

    def _start_classic_round(
        self, instances: tuple[Instance, ...], command: Optional[Command]
    ) -> None:
        """Prepare + accept over ``instances``; decide ``command`` there
        unless phase 1 forces previously voted values."""
        self.stats["classic_rounds"] += 1
        if command is not None:
            self.note_path(command, "slow")
        self._recovering.update(instances)
        ballot = (
            max(self._promised.get(inst, 0) for inst in instances)
            + 1
            + self.env.node_id
        )
        req = self._next_req()
        self._pending_prepares[req] = {
            "instances": instances,
            "ballot": ballot,
            "command": command,
            "promises": {},
            "done": False,
        }
        self.env.broadcast(GpPrepare(req=req, instances=instances, ballot=ballot))

    @handles(GpPrepare)
    def _on_prepare(self, sender: int, msg: GpPrepare) -> None:
        refused = any(
            self._promised.get(inst, 0) >= msg.ballot for inst in msg.instances
        )
        if refused:
            self.env.send(sender, GpPromise(req=msg.req, ballot=msg.ballot, ok=False))
            return
        votes: dict[Instance, tuple[tuple[int, Command], ...]] = {}
        for inst in msg.instances:
            self._promised[inst] = msg.ballot
            reported: list[tuple[int, Command]] = []
            accepted = self._accepted.get(inst)
            if accepted is not None:
                reported.append(accepted)
            fast_vote = self._my_votes.get(inst)
            if fast_vote is not None:
                reported.append((0, fast_vote))
            decided = self.state.decided_at(inst)
            if decided is not None:
                reported.append((1 << 30, decided))
            votes[inst] = tuple(reported)
        self.env.send(
            sender, GpPromise(req=msg.req, ballot=msg.ballot, ok=True, votes=votes)
        )

    @handles(GpPromise)
    def _on_promise(self, sender: int, msg: GpPromise) -> None:
        pending = self._pending_prepares.get(msg.req)
        if pending is None or pending["done"]:
            return
        if not msg.ok:
            pending["done"] = True
            self._pending_prepares.pop(msg.req, None)
            for inst in pending["instances"]:
                self._recovering.discard(inst)
            return
        pending["promises"][sender] = msg.votes
        if len(pending["promises"]) < self.recovery_quorum:
            return
        pending["done"] = True
        self._pending_prepares.pop(msg.req, None)

        command = pending["command"]
        forced_map: dict[Instance, Optional[Command]] = {}
        for inst in pending["instances"]:
            forced_map[inst] = self._pick_value(
                votes.get(inst, ()) for votes in pending["promises"].values()
            )

        own = all(
            forced is None or (command is not None and forced.cid == command.cid)
            for forced in forced_map.values()
        )
        if command is not None and own:
            to_decide = {inst: command for inst in pending["instances"]}
            self._classic_accept(pending["ballot"], to_decide)
            return

        # Something else was voted at (some of) these instances.  Honour
        # it: forced multi-object commands with a recorded assignment are
        # re-run atomically over their full instance set; everything else
        # is forced in place; untouched instances become no-ops so the
        # frontier can never be left with a hole.  A displaced command is
        # re-submitted by its proposer's retry timer.
        if command is not None:
            self._assignments.pop(command.cid, None)
            for inst in pending["instances"]:
                self._recovering.discard(inst)
        to_decide: dict[Instance, Command] = {}
        reruns: dict[tuple[int, int], tuple[Instance, ...]] = {}
        for inst, forced in forced_map.items():
            if forced is None:
                self._noop_counter += 1
                to_decide[inst] = make_noop(
                    inst[0], self.env.node_id, self._noop_counter
                )
                continue
            record = (
                self._assignments.get(forced.cid) if len(forced.ls) > 1 else None
            )
            if record is not None and set(record) != {inst}:
                reruns[forced.cid] = record
            else:
                to_decide[inst] = forced
        if to_decide:
            self._classic_accept(pending["ballot"], to_decide)
        for cid, record in reruns.items():
            recorded_cmd = next(
                (c for votes in pending["promises"].values()
                 for vs in votes.values()
                 for _b, c in vs if c.cid == cid),
                None,
            )
            if recorded_cmd is not None:
                self._start_classic_round(record, recorded_cmd)

    @staticmethod
    def _pick_value(promise_votes) -> Optional[Command]:
        """Fast Paxos value selection: highest ballot wins; among ballot-0
        (fast) votes, the most-voted command (with the safe recovery
        quorum, only a fast-chosen value can hold a strict plurality)."""
        best_ballot = -1
        by_command: dict[tuple[int, int], tuple[int, Command]] = {}
        for votes in promise_votes:
            for ballot, command in votes:
                if ballot > best_ballot:
                    best_ballot = ballot
                    by_command = {}
                if ballot == best_ballot:
                    count, _ = by_command.get(command.cid, (0, command))
                    by_command[command.cid] = (count + 1, command)
        if not by_command:
            return None
        _, command = max(
            by_command.values(), key=lambda pair: (pair[0], pair[1].cid)
        )
        return command

    def _classic_accept(self, ballot: int, to_decide: dict[Instance, Command]) -> None:
        req = self._next_req()
        self._pending_accepts[req] = {
            "ballot": ballot,
            "to_decide": to_decide,
            "voters": set(),
            "done": False,
        }
        self.env.broadcast(GpAccept(req=req, ballot=ballot, to_decide=to_decide))

    @handles(GpAccept)
    def _on_accept(self, sender: int, msg: GpAccept) -> None:
        ok = True
        for inst in msg.to_decide:
            if self._promised.get(inst, 0) > msg.ballot:
                ok = False
        if ok:
            for inst, command in msg.to_decide.items():
                self._promised[inst] = msg.ballot
                self._accepted[inst] = (msg.ballot, command)
                l, idx = inst
                self._next_vote_idx[l] = max(
                    self._next_vote_idx.get(l, 1), idx + 1
                )
        self.env.send(
            sender, GpAckAccept(req=msg.req, ok=ok, to_decide=msg.to_decide)
        )

    @handles(GpAckAccept)
    def _on_ack_accept(self, sender: int, msg: GpAckAccept) -> None:
        pending = self._pending_accepts.get(msg.req)
        if pending is None or pending["done"]:
            return
        if not msg.ok:
            pending["done"] = True
            for inst in pending["to_decide"]:
                self._recovering.discard(inst)
            return
        pending["voters"].add(sender)
        if len(pending["voters"]) < self.quorum:
            return
        pending["done"] = True
        for inst, command in pending["to_decide"].items():
            self._learn(inst, command)
            self._recovering.discard(inst)
        self.env.broadcast(
            GpDecide(to_decide=pending["to_decide"]), include_self=False
        )

    @handles(GpDecide)
    def _on_decide(self, sender: int, msg: GpDecide) -> None:
        for inst, command in msg.to_decide.items():
            l, idx = inst
            self._next_vote_idx[l] = max(self._next_vote_idx.get(l, 1), idx + 1)
            self._learn(inst, command)

    # ------------------------------------------------------------------
    # Leader: multi-object commands, serialised in classic rounds
    # ------------------------------------------------------------------

    @handles(GpSubmit)
    def _on_submit(self, sender: int, msg: GpSubmit) -> None:
        command = msg.command
        if self._is_learned(command):
            self._assignments.pop(command.cid, None)
            return
        recorded = self._assignments.get(command.cid)
        if recorded is not None:
            # Retry of a command we already placed: re-run the *same*
            # instances, never fresh ones, so its per-object positions
            # cannot diverge.
            if any(inst in self._recovering for inst in recorded):
                return  # a round for it is already in flight
            self._start_classic_round(recorded, command)
            return
        instances: list[Instance] = []
        for l in sorted(command.ls):
            idx = max(
                self._leader_next_idx.get(l, 1),
                self.state.obj(l).max_decided() + 1,
                self._next_vote_idx.get(l, 1),
            )
            self._leader_next_idx[l] = idx + 1
            instances.append((l, idx))
        if not instances:
            return
        self._assignments[command.cid] = tuple(instances)
        # A classic round *with* a prepare phase: phase 1 may reveal fast
        # votes already cast at these indices, which are then forced
        # (and this command re-submitted by its proposer's retry timer).
        self._start_classic_round(tuple(instances), command)

    # ------------------------------------------------------------------

    def processing_cost(self, message):
        cost, serial = self.costs.base_cost, self.costs.serial_fraction
        if isinstance(message, GpVote):
            # Vote processing scans conflict metadata proportional to the
            # command's footprint.
            cost += self.costs.per_conflict_cost * len(message.command.ls)
        return cost, serial

