"""Classic (leaderless) Paxos over a slot log.

The paper's Section IV-C points at classic Paxos as the fallback that
"is more effective" when the workload is not partitionable at all
[Junqueira et al., Caveat emptor]: no designated leader means no
forwarding hop and no leader bottleneck, at the price of a full
prepare+accept (four communication delays) per command and duelling
proposers under contention.

Every proposer runs both phases itself for the slot it targets, with
globally unique striped ballots and randomised retry backoff.  Delivery
follows the slot log, exactly like Multi-Paxos.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.consensus.base import (
    Message,
    handles,
    Protocol,
    ProtocolCosts,
    classic_quorum_size,
)
from repro.consensus.commands import Command


@dataclass(frozen=True)
class PxPrepare(Message):
    req: int
    slot: int
    ballot: int


@dataclass(frozen=True)
class PxPromise(Message):
    req: int
    slot: int
    ballot: int
    ok: bool
    accepted_ballot: int = -1
    accepted_value: Optional[Command] = None
    max_ballot: int = 0


@dataclass(frozen=True)
class PxAccept(Message):
    req: int
    slot: int
    ballot: int
    value: Command


@dataclass(frozen=True)
class PxAccepted(Message):
    req: int
    slot: int
    ballot: int
    ok: bool
    max_ballot: int = 0


@dataclass(frozen=True)
class PxDecide(Message):
    slot: int
    value: Command


@dataclass
class _SlotState:
    promised: int = -1
    accepted_ballot: int = -1
    accepted_value: Optional[Command] = None


@dataclass
class _Round:
    slot: int
    ballot: int
    command: Command
    phase: str = "prepare"  # "prepare" | "accept"
    value: Optional[Command] = None
    promises: dict[int, PxPromise] = field(default_factory=dict)
    accepts: set[int] = field(default_factory=set)
    done: bool = False


@dataclass(frozen=True)
class PaxosConfig:
    retry_backoff: float = 0.004
    supervise_timeout: float = 1.5
    paranoid: bool = True


class ClassicPaxos(Protocol):
    """One node of leaderless classic Paxos."""

    costs = ProtocolCosts(base_cost=160e-6, serial_fraction=0.05)

    def __init__(self, config: Optional[PaxosConfig] = None) -> None:
        super().__init__()
        self.config = config or PaxosConfig()
        self.slots: dict[int, _SlotState] = {}
        self.decided: dict[int, Command] = {}
        self._decided_cids: set[tuple[int, int]] = set()
        self._delivered_cids: set[tuple[int, int]] = set()
        self.delivered_upto = 0
        self._rounds: dict[int, _Round] = {}
        self._req_counter = 0
        self._attempts: dict[tuple[int, int], int] = {}
        self.stats = {"decided": 0, "prepare_nacks": 0, "accept_nacks": 0}

    @property
    def quorum(self) -> int:
        return classic_quorum_size(self.env.n_nodes)

    def _slot(self, slot: int) -> _SlotState:
        state = self.slots.get(slot)
        if state is None:
            state = _SlotState()
            self.slots[slot] = state
        return state

    def _next_ballot(self, floor: int) -> int:
        n = self.env.n_nodes
        return (max(floor, 0) // n + 1) * n + self.env.node_id

    def _next_free_slot(self) -> int:
        slot = self.delivered_upto + 1
        while slot in self.decided:
            slot += 1
        return slot

    # ------------------------------------------------------------------

    def propose(self, command: Command) -> None:
        if command.cid in self._decided_cids:
            return
        self._start_round(command)
        self._supervise(command)

    def _supervise(self, command: Command) -> None:
        if self.config.supervise_timeout <= 0:
            return
        delay = self.config.supervise_timeout * (1 + 0.5 * self.env.rng.random())

        def check() -> None:
            if command.cid not in self._decided_cids:
                self._start_round(command)
                self._supervise(command)

        self.env.set_timer(delay, check)

    def _start_round(self, command: Command) -> None:
        # Every round is a full prepare+accept: four one-way delays,
        # the same shape as an M2Paxos acquisition.
        self.note_path(command, "acquisition")
        slot = self._next_free_slot()
        ballot = self._next_ballot(self._slot(slot).promised)
        self._req_counter += 1
        req = self._req_counter
        self._rounds[req] = _Round(slot=slot, ballot=ballot, command=command)
        self.env.broadcast(PxPrepare(req=req, slot=slot, ballot=ballot))

    def _retry(self, command: Command) -> None:
        if command.cid in self._decided_cids:
            return
        attempt = self._attempts.get(command.cid, 0) + 1
        self._attempts[command.cid] = attempt
        delay = self.config.retry_backoff * attempt * (0.5 + self.env.rng.random())
        self.env.set_timer(delay, lambda: self._maybe_restart(command))

    def _maybe_restart(self, command: Command) -> None:
        if command.cid not in self._decided_cids:
            self._start_round(command)

    # ------------------------------------------------------------------
    # Acceptor
    # ------------------------------------------------------------------

    @handles(PxPrepare)
    def _on_prepare(self, sender: int, msg: PxPrepare) -> None:
        state = self._slot(msg.slot)
        if msg.ballot <= state.promised:
            self.env.send(
                sender,
                PxPromise(
                    req=msg.req,
                    slot=msg.slot,
                    ballot=msg.ballot,
                    ok=False,
                    max_ballot=state.promised,
                ),
            )
            return
        state.promised = msg.ballot
        self.env.send(
            sender,
            PxPromise(
                req=msg.req,
                slot=msg.slot,
                ballot=msg.ballot,
                ok=True,
                accepted_ballot=state.accepted_ballot,
                accepted_value=state.accepted_value,
            ),
        )

    @handles(PxAccept)
    def _on_accept(self, sender: int, msg: PxAccept) -> None:
        state = self._slot(msg.slot)
        if msg.ballot < state.promised:
            self.env.send(
                sender,
                PxAccepted(
                    req=msg.req,
                    slot=msg.slot,
                    ballot=msg.ballot,
                    ok=False,
                    max_ballot=state.promised,
                ),
            )
            return
        state.promised = msg.ballot
        state.accepted_ballot = msg.ballot
        state.accepted_value = msg.value
        self.env.send(
            sender,
            PxAccepted(req=msg.req, slot=msg.slot, ballot=msg.ballot, ok=True),
        )

    # ------------------------------------------------------------------
    # Proposer
    # ------------------------------------------------------------------

    @handles(PxPromise)
    def _on_promise(self, sender: int, msg: PxPromise) -> None:
        round_ = self._rounds.get(msg.req)
        if round_ is None or round_.done or round_.phase != "prepare":
            return
        if not msg.ok:
            round_.done = True
            self.stats["prepare_nacks"] += 1
            self._slot(round_.slot).promised = max(
                self._slot(round_.slot).promised, msg.max_ballot
            )
            self._retry(round_.command)
            return
        round_.promises[sender] = msg
        if len(round_.promises) < self.quorum:
            return
        round_.phase = "accept"
        best = max(
            round_.promises.values(), key=lambda p: p.accepted_ballot
        )
        round_.value = (
            best.accepted_value
            if best.accepted_value is not None
            else round_.command
        )
        self.env.broadcast(
            PxAccept(
                req=msg.req,
                slot=round_.slot,
                ballot=round_.ballot,
                value=round_.value,
            )
        )

    @handles(PxAccepted)
    def _on_accepted(self, sender: int, msg: PxAccepted) -> None:
        round_ = self._rounds.get(msg.req)
        if round_ is None or round_.done or round_.phase != "accept":
            return
        if not msg.ok:
            round_.done = True
            self.stats["accept_nacks"] += 1
            self._retry(round_.command)
            return
        round_.accepts.add(sender)
        if len(round_.accepts) < self.quorum:
            return
        round_.done = True
        assert round_.value is not None
        self._decide(round_.slot, round_.value)
        self.env.broadcast(
            PxDecide(slot=round_.slot, value=round_.value), include_self=False
        )
        if round_.value.cid != round_.command.cid:
            # We shepherded someone else's value; ours needs a new slot.
            self._retry(round_.command)

    # ------------------------------------------------------------------
    # Learner
    # ------------------------------------------------------------------

    @handles(PxDecide)
    def _on_decide(self, sender: int, msg: PxDecide) -> None:
        self._decide(msg.slot, msg.value)

    def _decide(self, slot: int, value: Command) -> None:
        existing = self.decided.get(slot)
        if existing is not None:
            if self.config.paranoid and existing.cid != value.cid:
                raise AssertionError(
                    f"slot {slot}: {existing} decided, got {value}"
                )
            return
        self.decided[slot] = value
        self._decided_cids.add(value.cid)
        self.stats["decided"] += 1
        if not value.noop:
            self.note("decide", cid=value.cid)
        while self.delivered_upto + 1 in self.decided:
            self.delivered_upto += 1
            decided = self.decided[self.delivered_upto]
            # A command can be chosen at two slots (a round the proposer
            # believed failed may still have completed); deliver once.
            if not decided.noop and decided.cid not in self._delivered_cids:
                self._delivered_cids.add(decided.cid)
                self.env.deliver(decided)

    # ------------------------------------------------------------------

