"""Commands and the conflict (interference) relation.

Following Section III of the paper, a command ``c`` is defined by the
set of object identifiers it accesses, ``c.LS``.  Two commands conflict
(do not commute) iff their access sets intersect.  Generalized Consensus
may deliver non-conflicting commands in different orders on different
nodes; conflicting commands must be delivered in the same order
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional


@dataclass(frozen=True)
class Command:
    """An opaque state-machine command.

    ``cid``: globally unique identifier (proposer id, local counter).
    ``ls``: identifiers of the objects the command accesses (``c.LS``).
    ``payload_bytes``: size of the application payload (the evaluation
    uses 16-byte payloads for synthetic commands; TPC-C commands carry
    their transaction parameters).
    ``proposer``: node that first proposed the command, used by the
    metrics layer to attribute latency.
    ``is_read``: a read-only command.  Reads never mutate state, so an
    owner holding a valid lease may answer them locally without a
    consensus round; without a lease they run as ordinary commands.
    ``session``: optional ``(client_id, seq)`` exactly-once identity.
    Client seqs are issued in order per client; the serving tier's dedup
    table uses them to answer retries from cache instead of re-running
    the command.
    """

    cid: tuple[int, int]
    ls: FrozenSet[str]
    payload_bytes: int = 16
    proposer: int = 0
    noop: bool = False
    is_read: bool = False
    session: Optional[tuple[int, int]] = None

    def __post_init__(self) -> None:
        if not self.ls:
            raise ValueError("a command must access at least one object")
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")

    @staticmethod
    def make(
        proposer: int,
        seq: int,
        objects: Iterable[str],
        payload_bytes: int = 16,
        is_read: bool = False,
        session: Optional[tuple[int, int]] = None,
    ) -> "Command":
        """Convenience constructor used by workload generators."""
        return Command(
            cid=(proposer, seq),
            ls=frozenset(objects),
            payload_bytes=payload_bytes,
            proposer=proposer,
            is_read=is_read,
            session=session,
        )

    def conflicts(self, other: "Command") -> bool:
        """True iff the two commands access a common object."""
        return bool(self.ls & other.ls)

    def size_bytes(self) -> int:
        """Approximate wire size: id + object ids + payload."""
        return 12 + 8 * len(self.ls) + self.payload_bytes

    def __repr__(self) -> str:
        objs = ",".join(sorted(self.ls))
        return f"Cmd({self.cid[0]}.{self.cid[1]}:{objs})"


def conflict(a: Command, b: Command) -> bool:
    """Module-level alias of :meth:`Command.conflicts`."""
    return a.conflicts(b)


def make_noop(obj: str, node_id: int, seq: int) -> Command:
    """A no-op filler for a single instance.

    No-ops are used by gap recovery: they occupy a position so delivery
    can advance past it, but are never handed to the application.
    Negative sequence numbers keep their ids disjoint from real
    commands, whose workload generators count up from zero.
    """
    return Command(
        cid=(node_id, -(seq + 1)),
        ls=frozenset({obj}),
        payload_bytes=0,
        proposer=node_id,
        noop=True,
    )


@dataclass
class CStruct:
    """A command structure: the sequence a node has delivered so far.

    The Generalized Consensus C-struct of the paper is a sequence where
    commuting commands may be appended in either order.  We represent it
    as a plain list plus a set for O(1) membership tests.
    """

    commands: list[Command] = field(default_factory=list)
    _members: set[tuple[int, int]] = field(default_factory=set)

    def append(self, command: Command) -> None:
        if command.cid in self._members:
            raise ValueError(f"duplicate append: {command}")
        self.commands.append(command)
        self._members.add(command.cid)

    def __contains__(self, command: Command) -> bool:
        return command.cid in self._members

    def __len__(self) -> int:
        return len(self.commands)

    def restricted_to(self, obj: str) -> list[Command]:
        """Sub-sequence of commands accessing ``obj`` (order preserved)."""
        return [c for c in self.commands if obj in c.ls]

    def is_prefix_compatible(self, other: "CStruct") -> bool:
        """Check the *Consistency* property against another node's C-struct.

        Two C-structs are compatible iff for every object, the
        restrictions of both to that object are prefixes of one another
        (equivalently: conflicting commands appear in the same relative
        order in both).
        """
        objects = {o for c in self.commands for o in c.ls} | {
            o for c in other.commands for o in c.ls
        }
        for obj in objects:
            mine = [c.cid for c in self.restricted_to(obj)]
            theirs = [c.cid for c in other.restricted_to(obj)]
            shorter = min(len(mine), len(theirs))
            if mine[:shorter] != theirs[:shorter]:
                return False
        return True
