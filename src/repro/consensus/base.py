"""The sans-I/O contract between protocols and their runtime.

A consensus protocol is a plain state machine: it receives events
(``propose``, ``on_message``, timer callbacks) and produces effects
through its :class:`Env` (send / broadcast / set a timer / deliver a
command to the application).  Nothing in a protocol touches sockets,
clocks, or threads, so the *same object* runs under the deterministic
simulator (:mod:`repro.sim`) and the asyncio runtime
(:mod:`repro.runtime`).
"""

from __future__ import annotations

import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, fields
from typing import Callable, Optional

from repro.consensus.commands import Command


def classic_quorum_size(n: int) -> int:
    """Classic (majority) quorum: ``floor(N/2) + 1``."""
    if n < 1:
        raise ValueError("need at least one node")
    return n // 2 + 1


def fast_quorum_size(n: int) -> int:
    """Fast Paxos / Generalized Paxos fast quorum: ``floor(2N/3) + 1``."""
    if n < 1:
        raise ValueError("need at least one node")
    return (2 * n) // 3 + 1


def epaxos_fast_quorum_size(n: int) -> int:
    """EPaxos fast quorum: ``F + floor((F+1)/2)`` where ``N = 2F + 1``.

    For N <= 5 this equals the classic majority (the 'optimized EPaxos'
    quorum), which is why EPaxos tracks M2Paxos up to 5-7 nodes in the
    paper's Figure 3 and then falls behind.
    """
    if n < 1:
        raise ValueError("need at least one node")
    f = (n - 1) // 2
    return f + (f + 1) // 2


class Message:
    """Base class for protocol messages.

    Subclasses are dataclasses; :meth:`size_bytes` derives an
    approximate wire size from the fields so the network model can
    charge transmission time (this is how dependency metadata makes
    EPaxos/GenPaxos messages bigger, one of the effects the paper
    measures).
    """

    TAG_BYTES = 4

    def size_bytes(self) -> int:
        # Cached: messages are immutable and broadcast to N receivers,
        # so the recursive estimate runs once per message, not per send.
        cached = self.__dict__.get("_cached_size")
        if cached is None:
            cached = self.TAG_BYTES + _estimate_size(self)
            object.__setattr__(self, "_cached_size", cached)
        return cached


_FIELD_NAME_CACHE: dict[type, tuple[str, ...]] = {}


def _estimate_size(value: object) -> int:
    """Recursive size estimate for message payloads."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, Command):
        return value.size_bytes()
    if isinstance(value, (list, tuple, set, frozenset)):
        return 4 + sum(_estimate_size(v) for v in value)
    if isinstance(value, dict):
        return 4 + sum(
            _estimate_size(k) + _estimate_size(v) for k, v in value.items()
        )
    if hasattr(value, "__dataclass_fields__"):
        cls = type(value)
        names = _FIELD_NAME_CACHE.get(cls)
        if names is None:
            names = tuple(f.name for f in fields(value))  # type: ignore[arg-type]
            _FIELD_NAME_CACHE[cls] = names
        return sum(_estimate_size(getattr(value, name)) for name in names)
    return 8


@dataclass(frozen=True)
class ProtocolCosts:
    """CPU cost parameters charged by the simulator per message.

    ``base_cost``: CPU seconds to parse + handle one message (on the
    latency-critical path).
    ``serial_fraction``: share of CPU work executed under the node's
    global lock (see :mod:`repro.sim.cpu`).  The paper attributes
    EPaxos's poor core scaling to synchronisation on shared dependency
    metadata -- expressed here as a high serial fraction.
    ``per_conflict_cost``: extra CPU per tracked dependency (EPaxos and
    Generalized Paxos pay this; M2Paxos and Multi-Paxos do not).
    ``propose_cost``: per-command client-handling / coordination work
    charged at the proposer as CPU *occupancy* (it loads the cores and
    so caps throughput, but is pipelined off the latency path).  This
    is the term that makes multi-leader protocols scale with N: it is
    the only per-command cost that divides across nodes.
    ``send_cost``: CPU occupancy per message sent unbatched
    (serialisation + one syscall each).
    ``batched_send_cost``: CPU occupancy per *coalesced write* when
    batching is on -- the outbox flushes one write per destination per
    event, and most of its overhead (event-loop wakeup, context) is
    already inside ``base_cost``, so only a small residual is charged.

    The absolute values are calibrated for the simulator, not for any
    particular hardware: only ratios between protocols and the shape of
    the resulting curves are meaningful (see DESIGN.md, Substitutions).
    """

    base_cost: float = 160e-6
    serial_fraction: float = 0.05
    per_conflict_cost: float = 0.0
    propose_cost: float = 8e-3
    propose_serial_fraction: float = 0.02
    send_cost: float = 4e-6
    batched_send_cost: float = 0.25e-6
    # Extra CPU per additional command carried by one multi-command
    # message (batched Accept/Decide rounds): handling a batch is
    # cheaper than handling its commands separately, but not free.
    # Zero (the default) keeps single-command timing bit-identical.
    per_command_cost: float = 0.0


class TimerHandle(ABC):
    """Cancellable timer returned by :meth:`Env.set_timer`."""

    @abstractmethod
    def cancel(self) -> None: ...


# ----------------------------------------------------------------------
# Storage interface
# ----------------------------------------------------------------------


class StorageFull(RuntimeError):
    """The node's durable store cannot accept more data.

    Raised by :meth:`Storage.append` (modelled capacity) or by a commit
    flush (real ``ENOSPC`` / write failure).  The hosting node treats it
    as fail-stop: the event's outbox is discarded -- a node that cannot
    persist must not acknowledge -- and the node crashes."""


@dataclass
class Recovered:
    """What a storage scan found: the newest valid snapshot payload (or
    ``None``) plus the log records appended after it, in log order."""

    snapshot: Optional[bytes]
    records: "list[tuple[int, bytes]]"

    @property
    def empty(self) -> bool:
        return self.snapshot is None and not self.records


class Storage(ABC):
    """Durable-log contract between an :class:`Env` and a node's disk.

    The env calls :meth:`append` while a protocol handler runs (records
    buffer in memory) and :meth:`commit` when the event ends, passing a
    ``release`` closure holding the event's buffered sends and deferred
    deliveries.  The storage decides *when* the closure runs: after a
    synchronous flush+fsync (``fsync_wait == 0``), or later from a
    group-commit timer that fsyncs many events' records with one
    syscall.  Because every effect of the event is inside ``release``,
    persist-before-ack falls out of the env's outbox discipline -- no
    protocol code schedules I/O.

    Implementations: :class:`NullStorage` (no durability, today's
    default), :class:`repro.storage.MemStorage` (deterministic, for
    sim/chaos byte-identical checks), :class:`repro.storage.DiskStorage`
    (real files + fsync)."""

    durable: bool = True
    """Whether a restart can rebuild protocol state via :meth:`recover`."""

    @property
    def defers(self) -> bool:
        """True when commits may run their release later (group-commit)."""
        return False

    @property
    def dirty(self) -> bool:
        """True when records are buffered but not yet persisted."""
        return False

    @abstractmethod
    def append(self, rtype: int, payload: bytes) -> None:
        """Buffer one log record for the current event.  May raise
        :class:`StorageFull`."""

    @abstractmethod
    def commit(self, release: Callable[[], None]) -> None:
        """Persist buffered records, then run ``release`` (immediately,
        or from a group-commit timer).  ``release`` must run exactly
        once unless the node crashes first."""

    @abstractmethod
    def recover(self) -> Recovered:
        """Scan the store: newest valid snapshot + log tail after it."""

    @abstractmethod
    def snapshot(self, payload: bytes) -> None:
        """Persist ``payload`` as a snapshot covering every record
        flushed so far, then truncate the covered log."""

    def attach(self, env: "Env", snapshot_source: Callable[[], Optional[bytes]]) -> None:
        """Wire the hosting env (timer scheduling, observability) and a
        callable yielding the bound protocol's snapshot payload."""

    def discard_pending(self) -> None:
        """Drop buffered records and queued releases (crash semantics:
        whatever was not fsynced is gone)."""

    def wipe(self) -> None:
        """Erase the store entirely (amnesia restart)."""

    def close(self) -> None:
        """Release OS resources (file handles)."""


class NullStorage(Storage):
    """No durability: appends vanish, commits release immediately.

    This is the seed behaviour -- with it bound (the default), event
    ordering and decision logs are byte-identical to a build without a
    storage layer."""

    durable = False

    def append(self, rtype: int, payload: bytes) -> None:
        pass

    def commit(self, release: Callable[[], None]) -> None:
        release()

    def recover(self) -> Recovered:
        return Recovered(None, [])

    def snapshot(self, payload: bytes) -> None:
        pass


NULL_STORAGE = NullStorage()
"""Shared default: stateless, so one instance serves every env."""


FlushHook = Callable[[int, "list[tuple[int, Message]]", "dict[int, list[Message]]"], None]


class EnvObserver:
    """Observability hook contract (all methods optional no-ops).

    An observer attached with :meth:`Env.add_observer` sees the full
    event stream of one node, substrate-independently: proposals,
    handler entry/exit (with measured Python CPU), outbox flushes,
    application deliveries, and the protocols' structured *notes*
    (``path`` / ``quorum`` / ``decide`` / ``epoch_bump`` /
    ``owner_handoff`` / ``outbox_depth``).  The span layer in
    :mod:`repro.obs` is built entirely on this interface.

    Two class attributes let an observer *decline* traffic it would
    ignore, because at saturation the cost of observability is
    dominated by the sheer number of observer calls per command, not
    by what the hooks do:

    - ``note_kinds``: the set of note kinds this observer consumes, or
      ``None`` for all of them.  :meth:`Env.observe` dispatches each
      kind only to observers subscribed to it, so a high-frequency
      note an observer would discard costs it nothing.
    - ``wants_handler_timing``: when no attached observer wants it,
      :meth:`Dispatcher.on_message` skips the enter/exit bracket and
      its two clock reads entirely.
    - ``deliver_scope``: ``"all"`` sees every application delivery;
      ``"proposer"`` only deliveries of commands this node proposed
      (the client-visible completions).  An observer that derives
      per-node delivery totals by other means (e.g. pulling the
      substrate's own delivery log at sampling time) declares
      ``"proposer"`` and skips two thirds of the fan-out.
    """

    note_kinds: Optional[frozenset] = None
    wants_handler_timing: bool = True
    deliver_scope: str = "all"

    def on_propose(self, node_id: int, command: Command) -> None: ...

    def on_handler_enter(
        self, node_id: int, sender: int, message: "Message"
    ) -> None: ...

    def on_handler_exit(
        self, node_id: int, sender: int, message: "Message", cpu_seconds: float
    ) -> None: ...

    def on_flush(
        self,
        node_id: int,
        queued: "list[tuple[int, Message]]",
        batches: "dict[int, list[Message]]",
    ) -> None: ...

    def on_deliver(self, node_id: int, command: Command) -> None: ...

    def on_note(self, node_id: int, kind: str, fields: dict) -> None: ...


class Env(ABC):
    """Effects interface a protocol uses to interact with the world.

    Sends are collected in an **outbox** while a protocol event (one
    message handler, proposal, or timer callback) is running, and
    flushed as per-destination batches when the outermost event ends.
    Substrates implement :meth:`_transmit` (one message, immediately)
    and may override :meth:`_flush` to exploit the batch structure
    (amortised CPU charging in the simulator, coalesced writes in the
    asyncio runtime).  Outside any event -- tests poking a protocol
    directly -- ``send`` degenerates to an immediate ``_transmit``, so
    the protocol's observable behaviour is unchanged.
    """

    node_id: int
    n_nodes: int

    storage: Storage = NULL_STORAGE
    """The node's durable store; hosting nodes replace this at boot."""

    # Lazily materialised per instance: Env implementations do not all
    # call ``super().__init__()``, so plain class attributes provide the
    # defaults until the first event begins.
    _event_depth: int = 0
    _outbox: Optional[list[tuple[int, Message]]] = None
    _flush_hooks: Optional[list[FlushHook]] = None
    _observers: Optional[list[EnvObserver]] = None
    _pending_deliveries: Optional[list[Command]] = None
    # Derived observer routing, rebuilt whenever the observer list
    # changes: note kind -> subscribed observers (lazily per kind), and
    # the subset of observers that want handler CPU timing.
    _note_subs: Optional[dict] = None
    _timing_observers: Optional[list[EnvObserver]] = None
    _deliver_all: Optional[list[EnvObserver]] = None
    _deliver_proposer: Optional[list[EnvObserver]] = None

    @property
    def nodes(self) -> range:
        """All node identifiers, ``0 .. n_nodes - 1``."""
        return range(self.n_nodes)

    def send(self, dst: int, message: Message) -> None:
        """Send ``message`` to node ``dst`` (may be ``self.node_id``).

        Buffered in the outbox while an event is running; transmitted
        immediately otherwise."""
        if self._event_depth > 0:
            self._outbox.append((dst, message))
        else:
            self._transmit(dst, message)

    def broadcast(self, message: Message, include_self: bool = True) -> None:
        """Send ``message`` to every node ("to all p_k in Pi")."""
        for dst in self.nodes:
            if include_self or dst != self.node_id:
                self.send(dst, message)

    # ------------------------------------------------------------------
    # Outbox pipeline
    # ------------------------------------------------------------------

    def begin_event(self) -> None:
        """Enter a protocol event: buffer sends until :meth:`end_event`.

        Events nest (a handler may deliver a command whose listener
        proposes synchronously); only the outermost exit flushes."""
        if self._outbox is None:
            self._outbox = []
        self._event_depth += 1

    def end_event(self, discard: bool = False) -> None:
        """Leave a protocol event; commit + flush the outbox at depth
        zero.

        The event's effects (buffered sends, deliveries deferred by a
        group-committing storage) are wrapped in a ``release`` closure
        handed to :meth:`Storage.commit`, which runs it once the event's
        log records are durable -- immediately for :class:`NullStorage`
        and synchronous stores, later from a group-commit timer
        otherwise.  This is persist-before-ack for every protocol, with
        no storage code in any handler.

        ``discard=True`` (the event failed with :class:`StorageFull`)
        drops the outbox and pending records instead: a node that could
        not persist must not acknowledge."""
        self._event_depth -= 1
        if self._event_depth > 0:
            return
        # Detach unconditionally: the release closure must own its
        # delivery list, never alias the live buffer a later event
        # appends to.
        deliveries = self._pending_deliveries
        self._pending_deliveries = None
        storage = self.storage
        if discard:
            if self._outbox:
                self._outbox.clear()
            storage.discard_pending()
            return
        queued = self._outbox
        if not queued and not deliveries and not storage.dirty:
            return
        if queued:
            self._outbox = []
        else:
            queued = []
        batches: dict[int, list[Message]] = {}
        for dst, message in queued:
            batch = batches.get(dst)
            if batch is None:
                batches[dst] = [message]
            else:
                batch.append(message)

        def release() -> None:
            if deliveries:
                for command in deliveries:
                    self._do_deliver(command)
            if not queued:
                return
            if self._flush_hooks:
                for hook in self._flush_hooks:
                    hook(self.node_id, queued, batches)
            if self._observers:
                for observer in self._observers:
                    observer.on_flush(self.node_id, queued, batches)
            self._flush(queued, batches)

        storage.commit(release)

    def add_flush_hook(self, hook: FlushHook) -> None:
        """Observe every flush: ``hook(node_id, queued, batches)`` with
        ``queued`` the sends in issue order and ``batches`` grouped per
        destination.  This is the single choke point metrics and tracing
        attach to."""
        if self._flush_hooks is None:
            self._flush_hooks = []
        self._flush_hooks.append(hook)

    def remove_flush_hook(self, hook: FlushHook) -> None:
        """Detach a hook added with :meth:`add_flush_hook` (no-op if
        absent, so teardown paths can be unconditional)."""
        if self._flush_hooks and hook in self._flush_hooks:
            self._flush_hooks.remove(hook)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def add_observer(self, observer: EnvObserver) -> None:
        """Attach an :class:`EnvObserver` to this node's event stream."""
        if self._observers is None:
            self._observers = []
        self._observers.append(observer)
        self._observers_changed()

    def remove_observer(self, observer: EnvObserver) -> None:
        if self._observers and observer in self._observers:
            self._observers.remove(observer)
            self._observers_changed()

    def _observers_changed(self) -> None:
        """Rebuild the derived routing after an attach/detach.

        ``getattr`` defaults keep duck-typed observers (tests often
        attach bare objects) on the everything-subscribed behaviour."""
        self._note_subs = None
        timing = [
            o
            for o in self._observers
            if getattr(o, "wants_handler_timing", True)
        ]
        self._timing_observers = timing or None
        self._deliver_all = [
            o
            for o in self._observers
            if getattr(o, "deliver_scope", "all") == "all"
        ]
        proposer = [
            o
            for o in self._observers
            if getattr(o, "deliver_scope", "all") == "proposer"
        ]
        self._deliver_proposer = proposer or None

    def observe(self, kind: str, **fields) -> None:
        """Emit one structured note to the observers subscribed to it.

        This is the channel protocols use to report what generic hooks
        cannot see: decision-path classifications, quorum/decide
        milestones, epoch bumps, ownership handoffs.  Free when no
        observer is attached.  Observers declaring ``note_kinds`` are
        skipped for kinds outside their set -- under saturation most
        note traffic is high-frequency kinds (``decide``, ``quorum``)
        that only the trace layer wants, so the per-kind subscriber
        list keeps live metrics from paying for tracing's appetite."""
        observers = self._observers
        if not observers:
            return
        subs_map = self._note_subs
        if subs_map is None:
            subs_map = self._note_subs = {}
        subs = subs_map.get(kind)
        if subs is None:
            subs = subs_map[kind] = [
                o
                for o in observers
                if (kinds := getattr(o, "note_kinds", None)) is None
                or kind in kinds
            ]
        for observer in subs:
            observer.on_note(self.node_id, kind, fields)

    def observe_propose(self, command: Command) -> None:
        """Called by the hosting node at C-PROPOSE submission time."""
        if self._observers:
            for observer in self._observers:
                observer.on_propose(self.node_id, command)

    @abstractmethod
    def _transmit(self, dst: int, message: Message) -> None:
        """Actually move one message toward ``dst`` (substrate-specific)."""

    def _flush(
        self,
        queued: list[tuple[int, Message]],
        batches: dict[int, list[Message]],
    ) -> None:
        """Emit one event's buffered sends.  The default preserves issue
        order; substrates override to batch per destination."""
        for dst, message in queued:
            self._transmit(dst, message)

    @abstractmethod
    def set_timer(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` seconds unless cancelled."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual under the simulator)."""

    def deliver(self, command: Command) -> None:
        """Hand a decided command to the application (C-DECIDE append).

        Under a group-committing storage the delivery is deferred with
        the event's sends and runs from the commit's release -- the
        application must not observe a decision that a crash could still
        erase.  Otherwise (and outside events) it is immediate."""
        if self._event_depth > 0 and self.storage.defers:
            if self._pending_deliveries is None:
                self._pending_deliveries = []
            self._pending_deliveries.append(command)
            return
        self._do_deliver(command)

    def _do_deliver(self, command: Command) -> None:
        """Observer fan-out + substrate hand-off (shared by both the
        immediate and the deferred-release delivery paths).  Observers
        scoped to proposer deliveries are skipped for the replicated
        copies (see :attr:`EnvObserver.deliver_scope`)."""
        if self._observers:
            for observer in self._deliver_all:
                observer.on_deliver(self.node_id, command)
            proposer_subs = self._deliver_proposer
            if proposer_subs is not None and command.proposer == self.node_id:
                for observer in proposer_subs:
                    observer.on_deliver(self.node_id, command)
        self._deliver(command)

    @abstractmethod
    def _deliver(self, command: Command) -> None:
        """Substrate-specific delivery (append + listener fan-out)."""

    def deliver_read(self, command: Command, result: object) -> None:
        """Hand a locally-served (leased) read result to the application.

        Served reads never enter the decision log: they are answered
        from the owner's already-appended state, and only at the owner,
        so routing them through :meth:`deliver` would make this node's
        delivered sequence diverge from every other node's.  Substrates
        keep a separate read log and listener list; envs without one
        (unit-test stubs) drop the result."""
        self._deliver_read(command, result)

    def _deliver_read(self, command: Command, result: object) -> None:
        """Substrate-specific read delivery (default: drop)."""

    @property
    @abstractmethod
    def rng(self) -> random.Random:
        """Per-node seeded random stream (timeout jitter etc.)."""


def handles(*message_types: type) -> Callable:
    """Mark a method as the handler for the given :class:`Message` types.

    :class:`Dispatcher` collects marked methods into a per-class handler
    table; ``on_message`` then routes by exact message type instead of
    an isinstance chain.
    """

    def mark(fn: Callable) -> Callable:
        fn.__dispatch_messages__ = message_types
        return fn

    return mark


class Dispatcher:
    """Mixin: table-driven message dispatch.

    ``__init_subclass__`` walks the MRO collecting methods marked with
    :func:`handles` into ``dispatch_table`` (subclasses override their
    bases), giving every protocol O(1) routing and one shared error
    path for unknown message types.
    """

    dispatch_table: dict[type, Callable] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        table: dict[type, Callable] = {}
        for base in reversed(cls.__mro__):
            for attr in vars(base).values():
                for message_type in getattr(attr, "__dispatch_messages__", ()):
                    table[message_type] = attr
        cls.dispatch_table = table

    def on_message(self, sender: int, message: Message) -> None:
        """Route ``message`` to its registered handler.

        When an attached observer wants handler timing
        (:attr:`EnvObserver.wants_handler_timing`), the handler is
        bracketed with entry/exit notifications carrying the measured
        Python CPU time -- the per-handler attribution the obs layer
        aggregates.  Otherwise this is a plain table lookup: observers
        that fold events into counters have no use for the bracket, so
        they should not pay for its two clock reads per message."""
        handler = self.dispatch_table.get(type(message))
        if handler is None:
            raise TypeError(f"unexpected message: {message!r}")
        env = getattr(self, "env", None)
        observers = env._timing_observers if env is not None else None
        if not observers:
            handler(self, sender, message)
            return
        node_id = env.node_id
        for observer in observers:
            observer.on_handler_enter(node_id, sender, message)
        started = time.perf_counter()
        try:
            handler(self, sender, message)
        finally:
            cpu = time.perf_counter() - started
            for observer in observers:
                observer.on_handler_exit(node_id, sender, message, cpu)


class Protocol(Dispatcher, ABC):
    """A consensus protocol state machine.

    Lifecycle: construct, :meth:`bind` to an :class:`Env`, then feed
    events.  A protocol must be usable with any Env implementation.
    Message handlers are registered with :func:`handles`; inbound
    messages arrive through the inherited table-driven ``on_message``.
    """

    costs = ProtocolCosts()

    def __init__(self) -> None:
        self.env: Optional[Env] = None

    def bind(self, env: Env) -> None:
        if self.env is not None:
            raise RuntimeError("protocol already bound")
        self.env = env

    def on_start(self) -> None:
        """Called once after bind; override to start leader election etc."""

    @abstractmethod
    def propose(self, command: Command) -> None:
        """C-PROPOSE: submit ``command`` for ordering."""

    # ------------------------------------------------------------------
    # Observability notes
    # ------------------------------------------------------------------

    def note(self, kind: str, **fields) -> None:
        """Report a structured observation to the env's observers."""
        if self.env is not None:
            self.env.observe(kind, **fields)

    def note_path(self, command: Command, path: str, hops: int = 0) -> None:
        """Classify the decision path taken for ``command``.

        ``path`` is ``"fast"`` / ``"forward"`` / ``"slow"`` /
        ``"acquisition"`` (see :data:`repro.obs.span.PATH_SEVERITY`);
        repeated classifications escalate, never downgrade.  Protocols
        call this next to their stats counters so the span layer and the
        ad-hoc counters can be cross-checked against each other.

        ``"fast"`` is never emitted: it is the default every consumer
        assumes for a command with no path note (the span layer's
        ``resolved_path``, the telemetry collector's pending entries),
        and under a healthy workload it is the classification of nearly
        every command -- the one decision-path note worth a per-command
        emission is the exception, not the rule."""
        if path != "fast" and self.env is not None:
            self.env.observe("path", cid=command.cid, path=path, hops=hops)

    def processing_cost(self, message: Optional[Message]) -> tuple[float, float]:
        """``(cpu_seconds, serial_fraction)`` to charge for one event.

        ``message`` is None for propose/timer events.  Protocols with
        data-dependent costs (EPaxos dependency computation) override
        this.
        """
        return self.costs.base_cost, self.costs.serial_fraction

    def occupancy_cost(self, message: Message) -> tuple[float, float]:
        """``(cpu_seconds, serial_fraction)`` of extra CPU occupancy for
        handling ``message``: work that loads the cores (capping
        throughput) without delaying the handler itself.  Used e.g. for
        the Multi-Paxos leader's per-command coordination work.
        Default: none."""
        return 0.0, 0.0

    def crash(self) -> None:
        """Called by failure injection; default protocols are memoryless
        about it (the runtime stops feeding them events)."""

    def on_restart(self) -> None:
        """Called on a *durable-log* restart, before :meth:`on_start`.

        The node rebooted with whatever state the protocol considers
        durable (acceptor promises, accepted values, the decided log)
        intact, but every volatile record -- in-flight rounds, retry
        counters, timers (already cancelled by the substrate) -- is
        gone.  Protocols clear their volatile coordination state here;
        an amnesia restart instead replaces the protocol object
        entirely, so this hook is never called for it."""

    # ------------------------------------------------------------------
    # Durable-state hooks (storage-backed recovery)
    # ------------------------------------------------------------------

    def snapshot_payload(self) -> Optional[bytes]:
        """Serialise the protocol's durable state for a snapshot.

        Called by the storage layer at a commit boundary (never mid-
        handler, so the state is consistent).  ``None`` (the default)
        means the protocol does not support snapshots; the storage then
        keeps its full log."""
        return None

    def restore_snapshot(self, payload: bytes) -> None:
        """Rebuild durable state from a :meth:`snapshot_payload` blob.

        Called on a fresh, bound, not-yet-started instance during
        storage recovery, before the log tail is replayed."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support storage recovery"
        )

    def apply_log_record(self, rtype: int, payload: bytes) -> None:
        """Re-apply one durable log record during recovery replay.

        Records arrive in log order; applying them after
        :meth:`restore_snapshot` must reproduce the pre-crash durable
        state -- including re-delivering decided commands through the
        env, so the application log is rebuilt byte-identically."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support storage recovery"
        )
