"""Reproduction of "Making Fast Consensus Generally Faster" (M2Paxos, DSN 2016).

The package is organised as follows:

- :mod:`repro.sim` -- deterministic discrete-event simulation substrate
  (virtual clock, network with latency/bandwidth models, CPU model, crash
  injection).
- :mod:`repro.consensus` -- the sans-I/O protocol interface shared by all
  consensus implementations, plus the three baselines evaluated in the
  paper: Multi-Paxos, Generalized Paxos, and EPaxos.
- :mod:`repro.core` -- M2Paxos itself, the paper's primary contribution.
- :mod:`repro.workloads` -- synthetic and TPC-C command generators and the
  open-loop client model used by the evaluation.
- :mod:`repro.metrics` -- throughput/latency collection.
- :mod:`repro.bench` -- the experiment harness that regenerates every
  figure of the paper's evaluation section.
- :mod:`repro.runtime` -- an asyncio TCP runtime for running the same
  protocol objects over a real network.
"""

from repro.consensus.commands import Command
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.sim.cluster import Cluster, ClusterConfig

__all__ = [
    "Command",
    "M2Paxos",
    "M2PaxosConfig",
    "Cluster",
    "ClusterConfig",
]

__version__ = "1.0.0"
