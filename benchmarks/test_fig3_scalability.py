"""Figure 3: scalability at fixed per-node load (64 clients, 5 ms think).

Paper's shape: with the offered load growing proportionally to the node
count, only M2Paxos tracks it near-linearly; EPaxos keeps pace up to
~5-7 nodes (where its fast quorum is still a bare majority) and then
falls away; the single-leader protocols flatten early.
"""

from benchmarks.conftest import run_figure, throughput_of
from repro.bench.figures import fig3


def test_fig3(benchmark):
    rows = run_figure(benchmark, fig3, "Fig. 3 -- fixed per-node load")
    nodes = sorted({row["nodes"] for row in rows})

    # M2Paxos grows monotonically with the deployment.
    m2 = [throughput_of(rows, "m2paxos", nodes=n) for n in nodes]
    assert m2 == sorted(m2)

    # Near-linear: at the largest size, per-node throughput has not
    # collapsed (>= 45% of the smallest-size per-node value).
    per_node_small = m2[0] / nodes[0]
    per_node_large = m2[-1] / nodes[-1]
    assert per_node_large >= 0.45 * per_node_small

    # Single-leader protocols stop scaling.
    for single_leader in ("multipaxos", "genpaxos"):
        series = [throughput_of(rows, single_leader, nodes=n) for n in nodes]
        assert series[-1] < 1.5 * series[0], single_leader

    # EPaxos is competitive at the smallest size but clearly behind at
    # the largest.
    assert throughput_of(rows, "epaxos", nodes=nodes[0]) > 0.6 * m2[0]
    assert throughput_of(rows, "epaxos", nodes=nodes[-1]) < 0.75 * m2[-1]
