"""Figure 4: throughput as per-node CPU cores grow 4 -> 32.

Paper's shape: M2Paxos exploits the added parallelism (scaling well to
16 cores, still increasing beyond); EPaxos cannot, because dependency
bookkeeping serialises its local threads; the single-leader protocols
stop benefiting once the leader's serial work dominates.
"""

from benchmarks.conftest import run_figure
from repro.bench.figures import fig4


def tp(rows, protocol, cores):
    for row in rows:
        if row["protocol"] == protocol and row["cores"] == cores:
            return row["throughput"]
    raise KeyError((protocol, cores))


def test_fig4(benchmark):
    rows = run_figure(benchmark, fig4, "Fig. 4 -- CPU core scaling")

    # M2Paxos: 4 -> 16 cores must give a solid speed-up (paper: "great
    # scalability up to 16 cores").
    assert tp(rows, "m2paxos", 16) > 2.2 * tp(rows, "m2paxos", 4)
    # Still increasing at 32, monotone overall.
    series = [tp(rows, "m2paxos", c) for c in (4, 8, 16, 32)]
    assert series == sorted(series)

    # EPaxos barely benefits from quadrupling the cores.
    assert tp(rows, "epaxos", 16) < 1.8 * tp(rows, "epaxos", 4)

    # M2Paxos gains far more from 4 -> 32 cores than either EPaxos or
    # Multi-Paxos does.
    m2_gain = tp(rows, "m2paxos", 32) / tp(rows, "m2paxos", 4)
    ep_gain = tp(rows, "epaxos", 32) / tp(rows, "epaxos", 4)
    mp_gain = tp(rows, "multipaxos", 32) / tp(rows, "multipaxos", 4)
    assert m2_gain > 1.5 * ep_gain
    assert m2_gain > mp_gain
