"""Figure 1: maximum attainable throughput vs node count, 100% locality.

Paper's shape: M2Paxos is on top at every size and keeps growing with
the node count (scaling until ~11 nodes, then at a slower rate);
Multi-Paxos is the runner-up at small sizes but degrades as its single
leader saturates; EPaxos holds roughly flat; Generalized Paxos trails.
Peak paper gap: up to 7x over EPaxos at 49 nodes (we accept >= 2.5x at
the largest size swept).
"""

from benchmarks.conftest import run_figure, throughput_of
from repro.bench.figures import fig1


def test_fig1(benchmark):
    rows = run_figure(benchmark, fig1, "Fig. 1 -- max throughput vs nodes")
    nodes = sorted({row["nodes"] for row in rows})
    largest = nodes[-1]

    # M2Paxos wins at every deployment size.
    for n in nodes:
        m2 = throughput_of(rows, "m2paxos", nodes=n)
        for rival in ("multipaxos", "genpaxos", "epaxos"):
            assert m2 > throughput_of(rows, rival, nodes=n), (n, rival)

    # M2Paxos throughput grows with the node count.
    m2_series = [throughput_of(rows, "m2paxos", nodes=n) for n in nodes]
    assert m2_series == sorted(m2_series)
    assert m2_series[-1] > 1.5 * m2_series[0]

    # The gap over the best competitor widens to a large factor.
    best_rival = max(
        throughput_of(rows, rival, nodes=largest)
        for rival in ("multipaxos", "genpaxos", "epaxos")
    )
    assert throughput_of(rows, "m2paxos", nodes=largest) > 2.0 * best_rival

    # Multi-Paxos does not scale: its largest-size throughput is not
    # meaningfully above its smallest-size one.
    mp_small = throughput_of(rows, "multipaxos", nodes=nodes[0])
    mp_large = throughput_of(rows, "multipaxos", nodes=largest)
    assert mp_large < 1.5 * mp_small
