"""Figure 2: median command latency without batching, light load.

Paper's shape: M2Paxos delivers fastest everywhere -- ~23% below
Multi-Paxos at small sizes, up to ~41% below EPaxos at large sizes.
We assert M2Paxos has the lowest median at every size, with Multi-Paxos
paying its extra forwarding hop.
"""

from benchmarks.conftest import run_figure
from repro.bench.figures import fig2


def latency_of(rows, protocol, n):
    for row in rows:
        if row["protocol"] == protocol and row["nodes"] == n:
            return row["p50_ms"]
    raise KeyError((protocol, n))


def test_fig2(benchmark):
    rows = run_figure(benchmark, fig2, "Fig. 2 -- median latency (no batching)")
    nodes = sorted({row["nodes"] for row in rows})
    for n in nodes:
        m2 = latency_of(rows, "m2paxos", n)
        for rival in ("multipaxos", "genpaxos", "epaxos"):
            assert m2 <= latency_of(rows, rival, n), (n, rival)
        # Multi-Paxos pays the forward hop: clearly slower than M2Paxos.
        assert latency_of(rows, "multipaxos", n) > 1.1 * m2
