"""Figure 6: throughput as the probability of non-local commands grows.

Paper's shape: M2Paxos degrades only mildly (forwarding adds one hop;
the paper reports ~4% average degradation per step); the other three
protocols are insensitive to locality -- their curves stay flat -- but
start from far lower peaks, so M2Paxos stays on top across the sweep.
"""

from benchmarks.conftest import run_figure
from repro.bench.figures import fig6


def series(rows, protocol, n):
    points = [
        (row["remote"], row["throughput"])
        for row in rows
        if row["protocol"] == protocol and row["nodes"] == n
    ]
    return [tp for _remote, tp in sorted(points)]


def test_fig6(benchmark):
    rows = run_figure(benchmark, fig6, "Fig. 6 -- non-local command sweep")
    nodes = sorted({row["nodes"] for row in rows})
    for n in nodes:
        m2 = series(rows, "m2paxos", n)
        # Forwarding keeps degradation bounded across the sweep.
        assert min(m2) > 0.5 * max(m2), n

        # Baselines are locality-insensitive (flat within 35%).
        for rival in ("multipaxos", "genpaxos", "epaxos"):
            rv = series(rows, rival, n)
            assert min(rv) > 0.65 * max(rv), (rival, n)

        # M2Paxos stays above the single-leader baselines at every
        # locality level.
        mp = series(rows, "multipaxos", n)
        assert all(a > b for a, b in zip(m2, mp)), n
