"""Ablations of M2Paxos design choices (DESIGN.md per-experiment index).

Three knobs the paper's design discussion motivates:

- **ack-to-all vs decide-broadcast**: Algorithm 2 broadcasts ACKACCEPT
  to every node (all nodes learn in two delays, N^2 messages); the
  practical default replies to the coordinator only and broadcasts a
  DECIDE (3N messages, remote learners one delay later).
- **message batching**: the paper batches everywhere except Figure 2.
- **home-ownership hint**: static epoch-0 ownership vs purely on-demand
  acquisition, on the TPC-C workload whose object space is too large to
  warm up on demand.
"""

from dataclasses import replace

from repro.bench.harness import PointSpec, run_point, saturated_spec
from repro.bench.report import print_table
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.metrics.collector import MetricsCollector
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.cpu import CpuConfig
from repro.sim.latency import GaussianLatency
from repro.sim.network import NetworkConfig
from repro.sim.rng import RngRegistry
from repro.workloads.client import ClientConfig, OpenLoopClients
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload


def run_m2(n_nodes, m2_config, batching=True, clients=64, think=0.002,
           cap=96, warmup=0.5, duration=0.3, seed=1):
    cluster = Cluster(
        ClusterConfig(
            n_nodes=n_nodes,
            seed=seed,
            network=NetworkConfig(
                latency=GaussianLatency(100e-6, 10e-6), batching=batching
            ),
            cpu=CpuConfig(cores=16),
        ),
        lambda i, n: M2Paxos(m2_config),
    )
    workload = SyntheticWorkload(
        SyntheticConfig(), n_nodes, RngRegistry(seed * 7919 + 13).stream("wl")
    )
    collector = MetricsCollector(cluster)
    drivers = OpenLoopClients(
        cluster,
        workload,
        ClientConfig(
            clients_per_node=clients, think_time=think, max_inflight_per_node=cap
        ),
        collector=collector,
    )
    cluster.start()
    drivers.start()
    cluster.run_for(warmup)
    collector.begin_window()
    cluster.run_for(duration)
    collector.end_window()
    cluster.check_consistency()
    return collector.result()


BENCH_CONFIG = M2PaxosConfig(
    forward_timeout=1.0,
    gap_timeout=0.5,
    gap_check_period=0.25,
    supervise_timeout=30.0,
    round_timeout=10.0,
)


def test_ablation_ack_to_all(benchmark):
    """N^2 learning (paper's Algorithm 2 literal) vs decide broadcast."""

    def once():
        rows = []
        for ack_to_all in (False, True):
            config = replace(BENCH_CONFIG, ack_to_all=ack_to_all)
            result = run_m2(5, config)
            rows.append(
                {
                    "ack_to_all": ack_to_all,
                    "throughput": result.throughput,
                    "messages": result.messages_sent,
                    "p50_ms": result.latency.p50 * 1e3,
                }
            )
        return rows

    rows = benchmark.pedantic(once, rounds=1, iterations=1)
    print_table(
        "Ablation: ACKACCEPT to all vs decide broadcast",
        rows,
        ["ack_to_all", "throughput", "messages", "p50_ms"],
    )
    plain, all_acks = rows
    # The N^2 variant sends far more messages for (at best) equal
    # throughput at this scale.
    assert all_acks["messages"] > 1.5 * plain["messages"]
    assert plain["throughput"] >= 0.8 * all_acks["throughput"]


def test_ablation_batching(benchmark):
    """Network batching amortises per-send CPU and framing."""

    def once():
        rows = []
        for batching in (True, False):
            result = run_m2(5, BENCH_CONFIG, batching=batching)
            rows.append(
                {
                    "batching": batching,
                    "throughput": result.throughput,
                    "p50_ms": result.latency.p50 * 1e3,
                }
            )
        return rows

    rows = benchmark.pedantic(once, rounds=1, iterations=1)
    print_table(
        "Ablation: message batching", rows, ["batching", "throughput", "p50_ms"]
    )
    batched, unbatched = rows
    assert batched["throughput"] >= unbatched["throughput"]


def test_ablation_home_hint_tpcc(benchmark):
    """Static TPC-C ownership vs on-demand acquisition of a huge,
    constantly-first-touched object space."""
    from repro.workloads.tpcc import TpccConfig

    def once():
        rows = []
        for use_hint in (True, False):
            spec = saturated_spec(
                PointSpec(
                    protocol="m2paxos",
                    n_nodes=3,
                    workload="tpcc",
                    tpcc=TpccConfig(remote_warehouse_prob=0.0),
                )
            )
            if not use_hint:
                # Bypass the harness's automatic hint by running the
                # synthetic path of the factory manually.
                import repro.bench.harness as harness

                original = harness.protocol_factory

                def no_hint_factory(name, home_hint=None):
                    return original(name, home_hint=None)

                harness.protocol_factory = no_hint_factory
                try:
                    result = run_point(spec)
                finally:
                    harness.protocol_factory = original
            else:
                result = run_point(spec)
            rows.append({"home_hint": use_hint, "throughput": result.throughput})
        return rows

    rows = benchmark.pedantic(once, rounds=1, iterations=1)
    print_table(
        "Ablation: TPC-C home-ownership hint", rows, ["home_hint", "throughput"]
    )
    hinted, unhinted = rows
    # Without the hint every New-Order first-touches ~10 stock rows and
    # pays an acquisition for them; the hint keeps those commands on the
    # fast path.  The margin at 3 nodes is modest (~1.1-1.3x depending
    # on recovery tuning) and grows with the acquisition cost at larger
    # N, so assert the direction with a small guard band.
    assert hinted["throughput"] > 1.05 * unhinted["throughput"]
