"""Shared helpers for the per-figure benchmarks.

Each benchmark regenerates one figure of the paper's evaluation and
asserts its headline *shape* (who wins, roughly by how much, where the
crossovers fall).  Default runs use the reduced "fast" node sets so the
whole suite finishes in minutes; set ``REPRO_BENCH_FULL=1`` to sweep
the paper's deployment sizes (up to 49 nodes).
"""

from __future__ import annotations

import os

from repro.bench.report import print_table, series_by

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))


def run_figure(benchmark, fig_fn, title):
    """Run one figure sweep under pytest-benchmark and print its table."""
    holder = {}

    def once():
        holder["rows"], holder["columns"] = fig_fn(full=FULL)
        return holder["rows"]

    benchmark.pedantic(once, rounds=1, iterations=1)
    print_table(title, holder["rows"], holder["columns"])
    return holder["rows"]


def throughput_of(rows, protocol, **filters):
    """The throughput of the row matching protocol + filters."""
    for row in rows:
        if row["protocol"] != protocol:
            continue
        if all(row.get(key) == value for key, value in filters.items()):
            return row["throughput"]
    raise KeyError((protocol, filters))


__all__ = ["FULL", "run_figure", "series_by", "throughput_of"]
