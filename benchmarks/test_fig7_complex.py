"""Figure 7: throughput vs fraction of complex (multi-object) commands.

Paper's shape: M2Paxos's throughput drops as the complex fraction
grows (each complex command touches one uniformly random object,
forcing ownership reshuffles), and the drop is softer with a larger
local-set (1000 objects/node dilutes contention enough to sustain
throughput to ~50% complex commands).  Multi-Paxos and Generalized
Paxos are unaffected by complexity; EPaxos loses a little.
"""

from benchmarks.conftest import run_figure
from repro.bench.figures import fig7


def m2_series(rows, local_set):
    points = [
        (row["complex"], row["throughput"])
        for row in rows
        if row["protocol"] == "m2paxos" and row["local_set"] == local_set
    ]
    return sorted(points)


def test_fig7(benchmark):
    rows = run_figure(benchmark, fig7, "Fig. 7 -- complex command sweep")

    for local_set in (10, 100, 1000):
        series = m2_series(rows, local_set)
        base = series[0][1]
        worst = series[-1][1]
        # Throughput drops with the complex fraction.
        assert worst < base, local_set

    # A bigger local-set softens the drop: at the highest swept complex
    # fraction, 1000 objects/node retains a larger share of its
    # no-complex throughput than 10 objects/node does.
    def retention(local_set):
        series = m2_series(rows, local_set)
        return series[-1][1] / series[0][1]

    assert retention(1000) > retention(10)

    # Multi-Paxos and Generalized Paxos are insensitive to complexity.
    for rival in ("multipaxos", "genpaxos"):
        values = [
            row["throughput"] for row in rows if row["protocol"] == rival
        ]
        assert min(values) > 0.6 * max(values), rival
