"""Figure 8: TPC-C workload, 0% and 15% remote-warehouse commands.

Paper's shape: M2Paxos leads under the local-warehouse workload
(Multi-Paxos the closest competitor, EPaxos far behind because TPC-C's
conflicts push it off the fast path), and letting 15% of the commands
target a remote warehouse costs M2Paxos a sizeable share of its
throughput while the baselines barely move.

Known deviation (see EXPERIMENTS.md): with 15% remote warehouses our
M2Paxos degrades *more* than the paper's ~40% -- cross-warehouse
commands steal warehouse ownership, and healing the holes the dethroned
owner's pipeline leaves behind throttles the simulator's saturated
pipeline harder than the authors' Go implementation.  The direction of
every paper claim is preserved; the 15% magnitude is not, so the
assertions below check M2Paxos's lead only on the local workload and
the *direction* of the remote-warehouse sensitivity.
"""

from benchmarks.conftest import run_figure, throughput_of
from repro.bench.figures import fig8


def test_fig8(benchmark):
    rows = run_figure(benchmark, fig8, "Fig. 8 -- TPC-C")
    nodes = sorted({row["nodes"] for row in rows})
    largest = nodes[-1]

    # Local-warehouse workload: M2Paxos leads everywhere.
    for n in nodes:
        m2 = throughput_of(rows, "m2paxos", nodes=n, remote_wh=0.0)
        for rival in ("multipaxos", "genpaxos", "epaxos"):
            assert m2 > throughput_of(
                rows, rival, nodes=n, remote_wh=0.0
            ), (n, rival)

    # Meaningful lead over the closest competitor at at least one swept
    # size (fast-mode leads run 1.05-1.3x and widen with N; run
    # REPRO_BENCH_FULL=1 for the larger deployments).
    def lead(n):
        m2 = throughput_of(rows, "m2paxos", nodes=n, remote_wh=0.0)
        best_rival = max(
            throughput_of(rows, rival, nodes=n, remote_wh=0.0)
            for rival in ("multipaxos", "genpaxos", "epaxos")
        )
        return m2 / best_rival

    assert max(lead(n) for n in nodes) > 1.15

    # Remote warehouses cost M2Paxos throughput; Multi-Paxos is
    # insensitive to them.
    m2_remote = throughput_of(rows, "m2paxos", nodes=largest, remote_wh=0.15)
    assert m2_remote < 0.95 * m2
    mp = throughput_of(rows, "multipaxos", nodes=largest, remote_wh=0.0)
    mp_remote = throughput_of(rows, "multipaxos", nodes=largest, remote_wh=0.15)
    assert mp_remote > 0.7 * mp
