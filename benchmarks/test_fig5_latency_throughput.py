"""Figure 5: latency vs throughput curves, 0% vs 100% locality.

Paper's shape: for each deployment, M2Paxos's curve stays flat (low
latency) until a much higher throughput than EPaxos's; losing locality
costs M2Paxos little (commands are forwarded to the owner), while
EPaxos breaks down earlier (up to ~10%) in the no-locality workload.
"""

from benchmarks.conftest import run_figure
from repro.bench.figures import fig5


def curve(rows, protocol, n, locality):
    points = [
        (row["throughput"], row["p50_ms"])
        for row in rows
        if row["protocol"] == protocol
        and row["nodes"] == n
        and row["locality"] == locality
    ]
    return sorted(points)


def knee(points, latency_cap_ms):
    """Highest throughput reached while latency stays under the cap."""
    ok = [tp for tp, lat in points if lat <= latency_cap_ms]
    return max(ok) if ok else 0.0


def test_fig5(benchmark):
    rows = run_figure(benchmark, fig5, "Fig. 5 -- latency vs throughput")
    nodes = sorted({row["nodes"] for row in rows})
    for n in nodes:
        m2_local = curve(rows, "m2paxos", n, 1.0)
        ep_local = curve(rows, "epaxos", n, 1.0)
        # Sustained throughput under a latency budget: M2Paxos reaches
        # at least as far as EPaxos with full locality.
        cap = 50.0  # ms
        assert knee(m2_local, cap) >= 0.9 * knee(ep_local, cap), n

        # Locality costs M2Paxos comparatively little throughput.
        m2_remote = curve(rows, "m2paxos", n, 0.0)
        assert knee(m2_remote, cap) >= 0.45 * knee(m2_local, cap), n

    # At the largest deployment the local-workload gap is decisive.
    largest = nodes[-1]
    assert knee(curve(rows, "m2paxos", largest, 1.0), 50.0) > 1.3 * knee(
        curve(rows, "epaxos", largest, 1.0), 50.0
    )
