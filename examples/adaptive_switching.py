"""Adaptive protocol switching (the paper's Section IV-C extension).

Run:  python examples/adaptive_switching.py

The hybrid starts in M2Paxos mode.  While the workload is partitioned
it stays there; when the workload turns adversarial (every command
spans two nodes' objects, so no ownership assignment is ever stable),
nodes observe their acquisition rate, the coordinator announces a mode
change through consensus itself, and every replica switches to
Multi-Paxos at the same point in the delivery order.
"""

from repro import Cluster, ClusterConfig, Command
from repro.core.switcher import AdaptiveSwitcher, SwitcherConfig

N_NODES = 3


def main() -> None:
    config = SwitcherConfig(window=10, to_fallback=0.3, check_period=0.1)
    cluster = Cluster(
        ClusterConfig(n_nodes=N_NODES, seed=11),
        lambda node_id, n: AdaptiveSwitcher(config),
    )
    cluster.start()

    print("phase 1: partitioned workload (each node on its own object)")
    for seq in range(15):
        for node in range(N_NODES):
            cluster.propose(node, Command.make(node, seq, [f"own-{node}"]))
        cluster.run_for(0.01)
    cluster.run_for(1.0)
    print("  modes:", [cluster.nodes[i].protocol.mode for i in range(N_NODES)])

    print("phase 2: adversarial workload (ring-overlapping object pairs)")
    for seq in range(100, 130):
        for node in range(N_NODES):
            objs = [f"hot-{node}", f"hot-{(node + 1) % N_NODES}"]
            cluster.propose(node, Command.make(node, seq, objs))
        cluster.run_for(0.004)
    cluster.run_for(20.0)
    cluster.check_consistency()

    for i in range(N_NODES):
        protocol = cluster.nodes[i].protocol
        print(
            f"  node {i}: mode={protocol.mode} switches={protocol.stats['switches']} "
            f"delivered={len(cluster.delivered(i))}"
        )
    assert all(
        cluster.nodes[i].protocol.mode == "multipaxos" for i in range(N_NODES)
    ), "expected a coordinated switch to Multi-Paxos"
    print("all replicas switched to Multi-Paxos at the same delivery point")


if __name__ == "__main__":
    main()
