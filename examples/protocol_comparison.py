"""Head-to-head: the paper's four protocols on one partitioned workload.

Run:  python examples/protocol_comparison.py

A miniature of the paper's Figure 1 measurement: each protocol is
driven to saturation on an identical 5-node, 100%-locality workload
and its sustained throughput and median latency are reported.
"""

from repro.bench.harness import PointSpec, run_point, saturated_spec
from repro.bench.report import print_table

N_NODES = 5


def main() -> None:
    rows = []
    for protocol in ("m2paxos", "epaxos", "genpaxos", "multipaxos"):
        spec = saturated_spec(
            PointSpec(protocol=protocol, n_nodes=N_NODES, duration=0.2, warmup=0.3)
        )
        result = run_point(spec)
        rows.append(
            {
                "protocol": protocol,
                "throughput": result.throughput,
                "p50_ms": result.latency.p50 * 1e3 if result.latency else 0.0,
                "messages": result.messages_sent,
            }
        )
    rows.sort(key=lambda row: -row["throughput"])
    print_table(
        f"{N_NODES} nodes, 100% locality, saturated",
        rows,
        ["protocol", "throughput", "p50_ms", "messages"],
    )
    print("\nM2Paxos leads: fast decisions in two delays with majority "
          "quorums and no dependency tracking.")


if __name__ == "__main__":
    main()
