"""Run M2Paxos over real TCP sockets on localhost.

Run:  python examples/live_tcp_cluster.py

The same protocol objects the simulator drives are bound here to the
asyncio runtime: three nodes on 127.0.0.1, length-prefixed JSON frames,
real timers.  Three clients (one per node) propose interleaved
commands on a shared object; the delivered order agrees everywhere.
"""

import asyncio

from repro import Command, M2Paxos
from repro.runtime import LocalCluster


async def main() -> None:
    cluster = LocalCluster(3, lambda node_id, n: M2Paxos())
    await cluster.start()
    print("3 nodes listening:",
          ", ".join(f"node{i}@{host}:{port}"
                    for i, (host, port) in cluster.peers.items()))
    try:
        for seq in range(4):
            for node in range(3):
                command = Command.make(node, seq, ["shared-counter"])
                cluster.propose(node, command)
                await asyncio.sleep(0.01)
        await cluster.wait_delivered(12, timeout=15.0)

        orders = [
            [c.cid for c in cluster.delivered(node)] for node in range(3)
        ]
        print("delivered on node 0:", orders[0])
        print("all replicas agree :", orders[0] == orders[1] == orders[2])
    finally:
        await cluster.stop()


if __name__ == "__main__":
    asyncio.run(main())
