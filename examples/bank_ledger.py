"""A replicated bank ledger on top of M2Paxos.

Run:  python examples/bank_ledger.py

Transfers are commands accessing two account objects; deposits access
one.  Generalized Consensus lets transfers on disjoint account pairs
commute (they may be delivered in different orders on different
replicas), while transfers touching a common account are delivered in
the same order everywhere -- which is exactly what a deterministic
state machine needs.  The example replays each replica's delivery log
into a balance table and shows that all replicas converge.
"""

import random

from repro import Cluster, ClusterConfig, Command, M2Paxos

N_NODES = 5
ACCOUNTS = [f"acct-{i}" for i in range(8)]
INITIAL_BALANCE = 1_000
TRANSFERS = 60


def apply_log(delivered, operations):
    """Deterministically replay a delivery log into balances."""
    balances = {account: INITIAL_BALANCE for account in ACCOUNTS}
    for command in delivered:
        kind, payload = operations[command.cid]
        if kind == "transfer":
            src, dst, amount = payload
            if balances[src] >= amount:  # same rule on every replica
                balances[src] -= amount
                balances[dst] += amount
        else:
            account, amount = payload
            balances[account] += amount
    return balances


def main() -> None:
    rng = random.Random(7)
    cluster = Cluster(
        ClusterConfig(n_nodes=N_NODES, seed=7),
        lambda node_id, n: M2Paxos(),
    )
    cluster.start()

    operations = {}
    for seq in range(TRANSFERS):
        node = rng.randrange(N_NODES)
        if rng.random() < 0.8:
            src, dst = rng.sample(ACCOUNTS, 2)
            amount = rng.randint(1, 50)
            command = Command.make(node, seq, [src, dst], payload_bytes=24)
            operations[command.cid] = ("transfer", (src, dst, amount))
        else:
            account = rng.choice(ACCOUNTS)
            amount = rng.randint(1, 100)
            command = Command.make(node, seq, [account], payload_bytes=16)
            operations[command.cid] = ("deposit", (account, amount))
        cluster.propose(node, command)
        cluster.run_for(rng.random() * 0.005)

    cluster.run_for(5.0)
    cluster.check_consistency()

    ledgers = [apply_log(cluster.delivered(i), operations) for i in range(N_NODES)]
    reference = ledgers[0]
    agree = all(ledger == reference for ledger in ledgers)

    print(f"{TRANSFERS} operations across {N_NODES} replicas")
    print(f"replica delivery logs may differ in commuting order; "
          f"balances agree: {agree}")
    total = sum(reference.values())
    print(f"total money conserved: {total} "
          f"(expected >= {len(ACCOUNTS) * INITIAL_BALANCE})")
    for account in ACCOUNTS[:4]:
        print(f"  {account}: {reference[account]}")
    assert agree, "replicas diverged!"


if __name__ == "__main__":
    main()
