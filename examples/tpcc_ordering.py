"""TPC-C command ordering through M2Paxos (a slice of Figure 8).

Run:  python examples/tpcc_ordering.py

Generates the TPC-C transaction mix (New-Order, Payment, Order-Status,
Delivery, Stock-Level) as multi-object commands over warehouses,
districts, customers, and stock rows, and orders them through M2Paxos
and Multi-Paxos.  Warehouse locality maps naturally onto object
ownership, which is why the paper calls TPC-C a favourable workload.
"""

from repro.bench.harness import PointSpec, run_point, saturated_spec
from repro.bench.report import print_table
from repro.workloads.tpcc import TpccConfig

N_NODES = 5


def main() -> None:
    rows = []
    for protocol in ("m2paxos", "multipaxos"):
        for remote in (0.0, 0.15):
            spec = saturated_spec(
                PointSpec(
                    protocol=protocol,
                    n_nodes=N_NODES,
                    workload="tpcc",
                    tpcc=TpccConfig(remote_warehouse_prob=remote),
                )
            )
            result = run_point(spec)
            rows.append(
                {
                    "protocol": protocol,
                    "remote_warehouses": f"{remote:.0%}",
                    "throughput": result.throughput,
                    "p50_ms": result.latency.p50 * 1e3
                    if result.latency
                    else 0.0,
                }
            )
    print_table(
        f"TPC-C over {N_NODES} nodes ({10 * N_NODES} warehouses)",
        rows,
        ["protocol", "remote_warehouses", "throughput", "p50_ms"],
    )
    print("\nRemote warehouses force forwarding/ownership moves, costing "
          "M2Paxos throughput; Multi-Paxos is insensitive but slower.")


if __name__ == "__main__":
    main()
