"""Geo-replication: M2Paxos vs Multi-Paxos over a WAN latency matrix.

Run:  python examples/geo_replication.py

Five regions with realistic one-way delays.  Under Multi-Paxos every
command pays a round trip to the single leader's region; under M2Paxos
each region owns its local objects and commits with the nearest
majority -- the multi-leader advantage the paper's motivation opens
with (and the setting of the authors' companion system Alvin).
"""

from repro import Cluster, ClusterConfig, Command, M2Paxos
from repro.consensus.multipaxos import MultiPaxos
from repro.metrics.stats import summarize
from repro.sim.latency import TopologyLatency
from repro.sim.network import NetworkConfig

REGIONS = ["virginia", "oregon", "ireland", "frankfurt", "tokyo"]

# One-way delays in seconds (approximate public-cloud figures).
MATRIX = [
    # VA      OR      IE      FR      TK
    [0.0000, 0.0340, 0.0380, 0.0450, 0.0750],  # virginia
    [0.0340, 0.0000, 0.0650, 0.0800, 0.0500],  # oregon
    [0.0380, 0.0650, 0.0000, 0.0120, 0.1100],  # ireland
    [0.0450, 0.0800, 0.0120, 0.0000, 0.1200],  # frankfurt
    [0.0750, 0.0500, 0.1100, 0.1200, 0.0000],  # tokyo
]


def run(protocol_factory, label):
    cluster = Cluster(
        ClusterConfig(
            n_nodes=5,
            seed=21,
            network=NetworkConfig(
                latency=TopologyLatency(MATRIX, jitter=0.002)
            ),
        ),
        protocol_factory,
    )
    times = {}
    for node in cluster.nodes:
        node.deliver_listeners.append(
            lambda nid, c, t: times.setdefault((nid, c.cid), t)
        )
    cluster.start()

    latencies = []
    seq = 0
    for wave in range(10):
        starts = {}
        for region in range(5):
            command = Command.make(region, seq, [f"{REGIONS[region]}-data"])
            starts[command.cid] = (region, cluster.loop.now)
            cluster.propose(region, command)
            seq += 1
        cluster.run_for(2.0)
        for cid, (region, t0) in starts.items():
            done = times.get((region, cid))
            if done is not None:
                latencies.append(done - t0)
    cluster.check_consistency()

    summary = summarize(latencies).scaled(1e3)
    print(
        f"{label:12s} p50={summary.p50:7.1f} ms  p95={summary.p95:7.1f} ms  "
        f"(n={summary.count})"
    )
    return summary


def main() -> None:
    print("each region proposes on region-local data:")
    m2 = run(lambda node_id, n: M2Paxos(), "m2paxos")
    mp = run(lambda node_id, n: MultiPaxos(), "multipaxos")
    advantage = mp.p50 / m2.p50
    print(f"\nM2Paxos commits with the nearest majority: "
          f"{advantage:.1f}x lower median latency than the single-leader "
          f"round trip (leader in {REGIONS[0]}).")


if __name__ == "__main__":
    main()
