"""Fault-tolerance demo: owner crash, takeover, and recovery.

Run:  python examples/fault_tolerance.py

Node 0 owns an object and orders commands on the fast path.  It then
crashes with a command still in flight.  Node 1 takes over: its
ownership acquisition discovers the crashed owner's accepted-but-
undecided command via the prepare phase and *forces* it to completion
before its own command -- the recovery the paper describes as
"embedded into the process of changing the ownership".
"""

from repro import Cluster, ClusterConfig, Command, M2Paxos

N_NODES = 5


def main() -> None:
    cluster = Cluster(
        ClusterConfig(n_nodes=N_NODES, seed=3),
        lambda node_id, n: M2Paxos(),
    )
    cluster.start()

    print("phase 1: node 0 owns 'ledger' and orders 5 commands fast")
    for seq in range(5):
        cluster.propose(0, Command.make(0, seq, ["ledger"]))
        cluster.run_for(0.05)
    print("  delivered everywhere:",
          [len(cluster.delivered(i)) for i in range(N_NODES)])

    print("phase 2: node 0 proposes one more, then crashes mid-round")
    cluster.propose(0, Command.make(0, 99, ["ledger"]))
    cluster.run_for(0.0005)  # the ACCEPT is on the wire, no decision yet
    cluster.crash(0)
    print("  node 0 crashed")

    print("phase 3: node 1 proposes on the same object and takes over")
    cluster.propose(1, Command.make(1, 0, ["ledger"]))
    cluster.run_for(5.0)
    cluster.check_consistency()

    for node in range(1, N_NODES):
        cids = [c.cid for c in cluster.delivered(node)]
        print(f"  node {node} delivered: {cids}")
    survivor = [c.cid for c in cluster.delivered(1)]
    assert (0, 99) in survivor, "in-flight command was lost!"
    assert (1, 0) in survivor
    print("the crashed owner's in-flight command (0, 99) was recovered "
          "and ordered before node 1's command")


if __name__ == "__main__":
    main()
