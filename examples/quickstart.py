"""Quickstart: a 5-node M2Paxos cluster under the deterministic simulator.

Run:  python examples/quickstart.py

Each node proposes commands on its own objects (a *partitionable*
workload, M2Paxos's sweet spot): after a single ownership acquisition
per object, every command is decided on the fast path -- two
communication delays with a classic majority quorum.
"""

from repro import Cluster, ClusterConfig, Command, M2Paxos

N_NODES = 5
COMMANDS_PER_NODE = 20


def main() -> None:
    cluster = Cluster(
        ClusterConfig(n_nodes=N_NODES, seed=42),
        lambda node_id, n: M2Paxos(),
    )
    cluster.start()

    # Every node proposes on its own object -- no cross-node conflicts.
    for seq in range(COMMANDS_PER_NODE):
        for node in range(N_NODES):
            command = Command.make(node, seq, [f"account-{node}"])
            cluster.propose(node, command)
        cluster.run_for(0.01)  # 10 ms of virtual time between waves

    cluster.run_for(1.0)  # let everything settle
    cluster.check_consistency()

    print(f"cluster of {N_NODES} nodes, {COMMANDS_PER_NODE} commands each")
    for node in range(N_NODES):
        delivered = cluster.delivered(node)
        print(f"  node {node}: delivered {len(delivered)} commands")

    stats = cluster.nodes[0].protocol.stats
    print(
        f"node 0 decision paths: fast={stats['fast_path']} "
        f"forwarded={stats['forwarded']} acquisitions={stats['acquisitions']}"
    )
    print("(one acquisition to claim ownership, fast path ever after)")


if __name__ == "__main__":
    main()
