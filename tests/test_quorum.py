"""Tests for the pluggable quorum systems (Fast Flexible Paxos sizing).

The intersection sweeps here are the ISSUE's "prove the flexible
quorums safe" satellite: exhaustive prepare×accept family checks at
n = 3..5 for every shipped system, a deliberately broken system to show
the checkers have teeth, and a BFS model-check run under non-majority
quorums.
"""

import pytest

from repro.core.modelcheck import ModelChecker, ModelConfig, verify_intersections
from repro.core.quorum import (
    FlexibleQuorums,
    MajorityQuorums,
    ZoneQuorums,
    check_fast_collision_intersections,
    check_intersections,
)


class TestMajorityQuorums:
    def test_intersections_n3_to_5(self):
        results = verify_intersections(MajorityQuorums(), n_lo=3, n_hi=5)
        assert set(results) == {3, 4, 5}
        assert all(problems == [] for problems in results.values())

    def test_membership(self):
        q = MajorityQuorums().build(5)
        assert q.is_accept_quorum({0, 1, 2})
        assert not q.is_accept_quorum({0, 1})
        assert q.is_prepare_quorum({2, 3, 4})
        # Duplicate voters do not inflate the count.
        assert not q.is_accept_quorum([0, 0, 0, 1])

    def test_fast_collision_condition_is_strictly_stronger(self):
        # Plain majorities fail FastPaxos's triple condition (e.g. 2-of-3:
        # {0,1} ∩ {0,2} ∩ {1,2} = ∅) while passing the pairwise one --
        # the checker is informational for M2Paxos, whose striped epochs
        # rule out the uncoordinated same-round races the triple
        # condition guards against.
        for n in (3, 5):
            bound = MajorityQuorums().build(n)
            assert check_intersections(bound) == []
            assert check_fast_collision_intersections(bound)

    def test_fast_collision_condition_satisfiable(self):
        # A supermajority accept family (4-of-5) does satisfy the triple
        # condition: |f1 ∩ f2| >= 3, and any classic 3-of-5 set must meet
        # a 3-of-5 set (3 + 3 > 5).
        bound = FlexibleQuorums(prepare=3, accept=4).build(5)
        assert check_fast_collision_intersections(bound) == []


class TestFlexibleQuorums:
    def test_wan_config_intersections_n5(self):
        # The geo bench's config: accept=2 (intra-zone), prepare=4.
        results = verify_intersections(
            FlexibleQuorums(prepare=4, accept=2), n_lo=5, n_hi=5
        )
        assert results == {5: []}

    def test_safe_splits_all_n(self):
        # Every prepare + accept > n split binds and validates clean.
        for n in range(3, 6):
            for accept in range(1, n + 1):
                prepare = n - accept + 1
                bound = FlexibleQuorums(prepare=prepare, accept=accept).build(n)
                assert check_intersections(bound) == []

    def test_unsafe_split_rejected_at_build(self):
        # prepare + accept <= n admits disjoint quorums; build refuses.
        with pytest.raises(ValueError, match="intersection"):
            FlexibleQuorums(prepare=2, accept=2).build(5)

    def test_unsafe_flag_skips_validation_but_checker_sees_it(self):
        # unsafe=True exists so tests can hold a broken system and prove
        # the checkers have teeth.
        broken = FlexibleQuorums(prepare=2, accept=2, unsafe=True).build(5)
        problems = check_intersections(broken)
        assert problems
        assert "disjoint" in problems[0]
        results = verify_intersections(
            FlexibleQuorums(prepare=2, accept=2), n_lo=4, n_hi=5
        )
        assert all(problems for problems in results.values())

    def test_oversized_quorum_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            FlexibleQuorums(prepare=6, accept=2).build(5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FlexibleQuorums(prepare=0, accept=2)
        with pytest.raises(ValueError):
            FlexibleQuorums(prepare=2, accept=-1)

    def test_membership(self):
        q = FlexibleQuorums(prepare=4, accept=2).build(5)
        assert q.is_accept_quorum({0, 1})
        assert not q.is_accept_quorum({3})
        assert q.is_prepare_quorum({0, 1, 2, 3})
        assert not q.is_prepare_quorum({0, 1, 2})


class TestZoneQuorums:
    ZONES = (0, 0, 1, 1, 2)

    def test_intersections_at_its_size(self):
        # The zone map pins n=5; other sizes are skipped, not failed.
        results = verify_intersections(ZoneQuorums(self.ZONES), n_lo=3, n_hi=5)
        assert results == {5: []}

    def test_intersections_various_maps(self):
        for zones in [(0, 1, 2), (0, 0, 1, 1), (0, 0, 0, 1, 1), (0, 1, 2, 3, 4)]:
            bound = ZoneQuorums(zones).build(len(zones))
            assert check_intersections(bound) == []

    def test_membership_grid(self):
        # Z=3, f_Z=1: accept needs *per-zone majorities* in 2 zones,
        # prepare in 2.  Zone majorities here: {0,1} (both of zone 0),
        # {2,3} (both of zone 1), {4} (zone 2 alone).
        q = ZoneQuorums(self.ZONES).build(5)
        assert q.is_accept_quorum({0, 1, 4})    # zone 0 + zone 2
        assert q.is_accept_quorum({2, 3, 4})    # zone 1 + zone 2
        assert not q.is_accept_quorum({0, 1})   # one zone only
        assert not q.is_accept_quorum({0, 2, 4})  # no majority of 0 or 1
        assert q.is_prepare_quorum({0, 1, 4})
        assert not q.is_prepare_quorum({4})     # zone 2 alone is 1 zone

    def test_tolerates_whole_zone_outage(self):
        # With f_Z=1 the system still has an accept quorum after any
        # single zone goes dark.
        q = ZoneQuorums(self.ZONES).build(5)
        for dead_zone in (0, 1, 2):
            alive = {
                node for node, z in enumerate(self.ZONES) if z != dead_zone
            }
            assert q.is_accept_quorum(alive)
            assert q.is_prepare_quorum(alive)

    def test_zone_map_must_match_cluster_size(self):
        with pytest.raises(ValueError, match="covers"):
            ZoneQuorums(self.ZONES).build(4)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ZoneQuorums(())
        with pytest.raises(ValueError):
            ZoneQuorums((0, 1), zone_faults=2)
        with pytest.raises(ValueError):
            ZoneQuorums((0, 1), zone_faults=-1)


class TestModelCheckWithQuorumSystems:
    """BFS state-space search under non-majority quorum families."""

    def test_flexible_quorums_exhaustive_n3(self):
        config = ModelConfig(
            n_ballots=1,
            quorum_system=FlexibleQuorums(prepare=3, accept=1),
        )
        states = ModelChecker(config).run()  # raises Violation on failure
        assert states > 100

    def test_zone_quorums_exhaustive_n3(self):
        config = ModelConfig(
            n_ballots=1,
            quorum_system=ZoneQuorums((0, 1, 2)),
        )
        states = ModelChecker(config).run()
        assert states > 100

    def test_bound_system_size_mismatch_rejected(self):
        config = ModelConfig(
            quorum_system=ZoneQuorums((0, 0, 1, 1, 2)).build(5)
        )
        with pytest.raises(ValueError, match="bound to n=5"):
            ModelChecker(config)
