"""Unit tests for quorum arithmetic, message sizing, and the Env contract."""

import pytest

from repro.consensus.base import (
    Message,
    ProtocolCosts,
    classic_quorum_size,
    epaxos_fast_quorum_size,
    fast_quorum_size,
)
from repro.consensus.commands import Command
from dataclasses import dataclass


class TestQuorums:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (7, 4), (11, 6), (49, 25)]
    )
    def test_classic_quorum(self, n, expected):
        assert classic_quorum_size(n) == expected

    @pytest.mark.parametrize(
        "n,expected", [(3, 3), (5, 4), (7, 5), (11, 8), (49, 33)]
    )
    def test_fast_quorum(self, n, expected):
        assert fast_quorum_size(n) == expected

    @pytest.mark.parametrize(
        "n,expected",
        [(3, 2), (5, 3), (7, 5), (9, 6), (11, 8), (49, 36)],
    )
    def test_epaxos_fast_quorum(self, n, expected):
        # F + floor((F+1)/2), N = 2F+1
        assert epaxos_fast_quorum_size(n) == expected

    def test_epaxos_fast_quorum_equals_majority_up_to_five(self):
        for n in (3, 5):
            assert epaxos_fast_quorum_size(n) == classic_quorum_size(n)
        assert epaxos_fast_quorum_size(7) > classic_quorum_size(7)

    def test_two_classic_quorums_intersect(self):
        for n in range(1, 60):
            assert 2 * classic_quorum_size(n) > n

    def test_invalid_n_rejected(self):
        for fn in (classic_quorum_size, fast_quorum_size, epaxos_fast_quorum_size):
            with pytest.raises(ValueError):
                fn(0)


@dataclass(frozen=True)
class _Simple(Message):
    x: int
    name: str


@dataclass(frozen=True)
class _WithCollections(Message):
    deps: frozenset
    table: dict
    command: Command


class TestMessageSizing:
    def test_simple_fields(self):
        msg = _Simple(x=1, name="abcd")
        assert msg.size_bytes() == Message.TAG_BYTES + 8 + 4

    def test_collections_counted(self):
        command = Command.make(0, 0, ["x"], payload_bytes=16)
        small = _WithCollections(deps=frozenset(), table={}, command=command)
        big = _WithCollections(
            deps=frozenset({(0, 1), (1, 2), (2, 3)}),
            table={("x", 1): 5},
            command=command,
        )
        assert big.size_bytes() > small.size_bytes()

    def test_size_is_cached_and_stable(self):
        msg = _Simple(x=1, name="abcd")
        assert msg.size_bytes() == msg.size_bytes()

    def test_dependency_sets_make_messages_bigger(self):
        # The effect the paper measures: EPaxos-style dependency metadata
        # inflates wire size linearly.
        command = Command.make(0, 0, ["x"])
        sizes = [
            _WithCollections(
                deps=frozenset((i, i) for i in range(n)), table={}, command=command
            ).size_bytes()
            for n in (0, 10, 20)
        ]
        assert sizes[1] - sizes[0] == sizes[2] - sizes[1] > 0


class TestProtocolCosts:
    def test_defaults_sane(self):
        costs = ProtocolCosts()
        assert costs.base_cost > 0
        assert 0 <= costs.serial_fraction <= 1
