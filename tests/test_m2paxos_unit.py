"""Unit tests for M2Paxos state, delivery engine, and SELECT rule."""


from repro.consensus.commands import Command, make_noop
from repro.core.delivery import DeliveryEngine
from repro.core.protocol import M2Paxos
from repro.core.state import M2PaxosState


def cmd(proposer, seq, objs):
    return Command.make(proposer, seq, objs)


class TestObjectState:
    def test_defaults_match_paper(self):
        state = M2PaxosState()
        obj = state.obj("x")
        assert obj.epoch == 0
        assert obj.owner is None
        assert obj.appended == 0
        assert obj.next_slot == 1

    def test_observe_position_keeps_next_slot_ahead(self):
        state = M2PaxosState()
        obj = state.obj("x")
        obj.observe_position(5)
        assert obj.next_slot == 6
        obj.observe_position(2)  # lower positions do not regress it
        assert obj.next_slot == 6

    def test_is_decided_for(self):
        state = M2PaxosState()
        command = cmd(0, 0, ["x"])
        assert not state.is_decided_for("x", command)
        state.obj("x").decided[1] = command
        assert state.is_decided_for("x", command)
        assert not state.is_decided_for("y", command)

    def test_record_ack_counts_unique_voters(self):
        state = M2PaxosState()
        inst = ("x", 1)
        assert state.record_ack(inst, 0, (0, 0), voter=1) == {1}
        assert state.record_ack(inst, 0, (0, 0), voter=1) == {1}  # duplicate
        assert state.record_ack(inst, 0, (0, 0), voter=2) == {1, 2}
        # Different epoch or command is a separate tally.
        assert state.record_ack(inst, 1, (0, 0), voter=3) == {3}
        assert state.record_ack(inst, 0, (9, 9), voter=3) == {3}


class TestDeliveryEngine:
    def make(self):
        state = M2PaxosState()
        delivered = []
        engine = DeliveryEngine(state, delivered.append)
        return state, engine, delivered

    def test_single_object_in_order(self):
        state, engine, delivered = self.make()
        a, b = cmd(0, 0, ["x"]), cmd(0, 1, ["x"])
        engine.record_decision("x", 1, a, now=0.0)
        engine.record_decision("x", 2, b, now=0.0)
        engine.pump()
        assert delivered == [a, b]

    def test_gap_blocks_delivery(self):
        state, engine, delivered = self.make()
        b = cmd(0, 1, ["x"])
        engine.record_decision("x", 2, b, now=0.0)
        engine.pump()
        assert delivered == []
        a = cmd(0, 0, ["x"])
        engine.record_decision("x", 1, a, now=0.0)
        engine.pump()
        assert delivered == [a, b]

    def test_multi_object_waits_for_all_frontiers(self):
        state, engine, delivered = self.make()
        multi = cmd(0, 0, ["x", "y"])
        engine.record_decision("x", 1, multi, now=0.0)
        engine.pump()
        assert delivered == []
        engine.record_decision("y", 1, multi, now=0.0)
        engine.pump(dirty=["y"])
        assert delivered == [multi]

    def test_noop_advances_without_delivering(self):
        state, engine, delivered = self.make()
        noop = make_noop("x", 0, 0)
        real = cmd(0, 0, ["x"])
        engine.record_decision("x", 1, noop, now=0.0)
        engine.record_decision("x", 2, real, now=0.0)
        engine.pump()
        assert delivered == [real]
        assert state.obj("x").appended == 2

    def test_duplicate_position_skipped(self):
        # A command decided at two positions of the same object (retry
        # forced to completion twice) is delivered exactly once.
        state, engine, delivered = self.make()
        a = cmd(0, 0, ["x"])
        engine.record_decision("x", 1, a, now=0.0)
        engine.record_decision("x", 2, a, now=0.0)
        b = cmd(0, 1, ["x"])
        engine.record_decision("x", 3, b, now=0.0)
        engine.pump()
        assert delivered == [a, b]

    def test_decision_is_final(self):
        state, engine, _ = self.make()
        a, b = cmd(0, 0, ["x"]), cmd(1, 0, ["x"])
        assert engine.record_decision("x", 1, a, now=0.0)
        assert not engine.record_decision("x", 1, b, now=0.0)
        assert state.decided_at(("x", 1)).cid == a.cid

    def test_cascading_unblock_across_objects(self):
        state, engine, delivered = self.make()
        ab = cmd(0, 0, ["a", "b"])
        bc = cmd(0, 1, ["b", "c"])
        engine.record_decision("b", 2, bc, now=0.0)
        engine.record_decision("c", 1, bc, now=0.0)
        engine.pump()
        assert delivered == []
        engine.record_decision("a", 1, ab, now=0.0)
        engine.record_decision("b", 1, ab, now=0.0)
        engine.pump(dirty=["a", "b"])
        assert delivered == [ab, bc]

    def test_undelivered_gap_detection(self):
        state, engine, _ = self.make()
        assert engine.undelivered_gap("x") is None  # unknown object
        b = cmd(0, 1, ["x"])
        engine.record_decision("x", 2, b, now=0.0)
        engine.pump()
        assert engine.undelivered_gap("x") == 1

    def test_gap_from_reserved_slot_without_decision(self):
        # Coordinator crashed after reserving: activity seen, nothing
        # decided -- the frontier must be flagged for recovery.
        state, engine, _ = self.make()
        state.obj("x").observe_position(1)
        assert engine.undelivered_gap("x") == 1

    def test_no_gap_when_frontier_decided(self):
        state, engine, _ = self.make()
        engine.record_decision("x", 1, cmd(0, 0, ["x"]), now=0.0)
        assert engine.undelivered_gap("x") is None


class TestSelect:
    def test_empty_replies_force_nothing(self):
        eps = {("x", 1): 3}
        out = M2Paxos._select(eps, {1: {("x", 1): (None, 0, ())}})
        assert out[("x", 1)] == (None, 0, ())

    def test_highest_epoch_wins(self):
        a, b = cmd(0, 0, ["x"]), cmd(1, 0, ["x"])
        eps = {("x", 1): 5}
        replies = {
            1: {("x", 1): (a, 2, (("x", 1),))},
            2: {("x", 1): (b, 4, (("x", 1),))},
        }
        out = M2Paxos._select(eps, replies)
        assert out[("x", 1)] == (b, 4, (("x", 1),))

    def test_per_instance_independent(self):
        a, b = cmd(0, 0, ["x"]), cmd(1, 0, ["y"])
        eps = {("x", 1): 5, ("y", 1): 5}
        replies = {
            1: {("x", 1): (a, 1, (("x", 1),)), ("y", 1): (None, 0, ())},
            2: {("x", 1): (None, 0, ()), ("y", 1): (b, 3, (("y", 1),))},
        }
        out = M2Paxos._select(eps, replies)
        assert out[("x", 1)][0] == a
        assert out[("y", 1)][0] == b

    def test_carries_instance_set_of_winning_round(self):
        a = cmd(0, 0, ["x", "y"])
        fins = (("x", 1), ("y", 2))
        eps = {("x", 1): 5}
        replies = {1: {("x", 1): (a, 2, fins)}}
        out = M2Paxos._select(eps, replies)
        assert out[("x", 1)] == (a, 2, fins)
