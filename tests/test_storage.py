"""The durable storage layer: record framing, the segmented log, crash
recovery, and the Storage API's wiring into both substrates.

Three levels:

- **record framing** -- seeded fuzz over frame/scan round-trips
  (payloads drawn from the same generator family as the codec fuzz),
  plus torn-write and bit-flip boundaries;
- **log engines** -- MemStorage / DiskStorage segment rolls, snapshots,
  group-commit gating, torn-tail truncation on recovery;
- **cluster integration** -- MemStorage with synchronous fsync produces
  *byte-identical* delivery logs to NullStorage (the no-durability
  default), durable crash-restart replays a byte-identical prefix,
  disk-full fail-stops one node while the quorum keeps going, and the
  asyncio runtime recovers over real TCP.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.consensus.base import NULL_STORAGE, StorageFull
from repro.consensus.commands import Command
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.runtime.codec import encode_value_binary
from repro.sim.cluster import Cluster, ClusterConfig
from repro.storage.base import StorageConfig
from repro.storage.disk import DiskStorage
from repro.storage.mem import MemStorage
from repro.storage.record import (
    frame_record,
    frame_snapshot,
    parse_snapshot,
    scan_records,
)

# Chaos-style timeouts: fast enough that recovery completes well inside
# the short simulated runs these tests drive.
_M2 = M2PaxosConfig(
    forward_timeout=0.05,
    supervise_timeout=0.6,
    round_timeout=0.3,
    gap_check_period=0.1,
    gap_timeout=0.3,
    learn_resend_timeout=0.15,
    learn_resend_attempts=80,
)


def _random_payload(rng: random.Random) -> bytes:
    """Record-payload fuzz: the value shapes the durability mixin logs
    (tuple-keyed dicts of commands, nested tuples, unicode object
    names), encoded with the same binary value codec."""
    value = rng.choice(
        [
            (rng.randrange(16), rng.randrange(-5, 1 << 40)),
            {("éléphant", rng.randrange(1 << 20)): rng.randrange(1 << 30)},
            {"o" * rng.randrange(40): (rng.randrange(8), rng.randrange(8))},
            (None, True, rng.random(), "x" * rng.randrange(64)),
            Command(
                cid=(rng.randrange(16), rng.randrange(1 << 20)),
                ls=frozenset({f"w{rng.randrange(9)}.{rng.randrange(9)}"}),
                payload_bytes=rng.randrange(1 << 16),
                proposer=rng.randrange(16),
            ),
        ]
    )
    return encode_value_binary(value)


class TestRecordFraming:
    def test_roundtrip_fuzz(self):
        rng = random.Random(42)
        for _ in range(50):
            records = [
                (seq + 1, rng.randrange(1, 8), _random_payload(rng))
                for seq in range(rng.randrange(1, 30))
            ]
            blob = b"".join(frame_record(*record) for record in records)
            scanned, clean_end = scan_records(blob)
            assert scanned == records
            assert clean_end == len(blob)

    def test_torn_tail_stops_scan(self):
        rng = random.Random(7)
        records = [(s + 1, 1, _random_payload(rng)) for s in range(10)]
        frames = [frame_record(*record) for record in records]
        blob = b"".join(frames)
        intact = len(blob) - len(frames[-1])
        for cut in (1, len(frames[-1]) // 2, len(frames[-1]) - 1):
            scanned, clean_end = scan_records(blob[: intact + cut])
            assert scanned == records[:-1]
            assert clean_end == intact

    def test_bit_flip_stops_scan_at_corruption(self):
        rng = random.Random(9)
        frames = [frame_record(s + 1, 2, _random_payload(rng)) for s in range(6)]
        blob = bytearray(b"".join(frames))
        # Flip a byte inside record 3's payload area.
        offset = sum(len(f) for f in frames[:3]) + len(frames[3]) // 2
        blob[offset] ^= 0x40
        scanned, clean_end = scan_records(bytes(blob))
        assert [seq for seq, _, _ in scanned] == [1, 2, 3]
        assert clean_end == sum(len(f) for f in frames[:3])

    def test_snapshot_roundtrip_and_corruption(self):
        payload = encode_value_binary({"state": (1, 2, 3)})
        framed = frame_snapshot(17, payload)
        assert parse_snapshot(framed) == (17, payload)
        assert parse_snapshot(framed[:-1]) is None  # truncated
        corrupt = bytearray(framed)
        corrupt[len(corrupt) // 2] ^= 0x01
        assert parse_snapshot(bytes(corrupt)) is None
        assert parse_snapshot(b"") is None


class _FakeTimer:
    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class _FakeEnv:
    """Just enough Env for bare-storage tests: captures timers + notes."""

    def __init__(self) -> None:
        self.timers: list = []
        self.notes: list = []

    def set_timer(self, delay, callback):
        timer = _FakeTimer()
        self.timers.append((delay, callback, timer))
        return timer

    def observe(self, kind, **fields):
        self.notes.append((kind, fields))


class TestLogEngines:
    def test_mem_segment_roll_and_recover(self):
        store = MemStorage(StorageConfig(kind="mem", segment_bytes=128))
        payloads = [b"r%03d" % i * 4 for i in range(40)]
        for payload in payloads:
            store.append(1, payload)
        store.commit(lambda: None)
        assert len(store._segments) > 1  # actually rolled
        recovered = MemStorage.recover(store)
        assert recovered.snapshot is None
        assert [p for _, p in recovered.records] == payloads

    def test_mem_torn_tail_truncated_on_recover(self):
        store = MemStorage(StorageConfig(kind="mem", segment_bytes=1 << 20))
        for i in range(10):
            store.append(1, b"payload-%d" % i)
        store.commit(lambda: None)
        # Tear the last record: recovery keeps the clean prefix and the
        # store stays appendable afterwards.
        del store._segments[-1][-3:]
        recovered = store.recover()
        assert [p for _, p in recovered.records] == [
            b"payload-%d" % i for i in range(9)
        ]
        store.append(1, b"after-recovery")
        store.commit(lambda: None)
        assert [p for _, p in store.recover().records][-1] == b"after-recovery"

    def test_group_commit_gates_release_until_fsync(self):
        env = _FakeEnv()
        store = MemStorage(StorageConfig(kind="mem", fsync_wait=0.01))
        store.attach(env, lambda: None)
        released: list[int] = []
        store.append(1, b"a")
        store.commit(lambda: released.append(1))
        store.append(1, b"b")
        store.commit(lambda: released.append(2))
        # Nothing persisted, nothing released: the window is open and
        # one timer covers both events.
        assert released == [] and store.fsyncs == 0
        assert len(env.timers) == 1
        env.timers[0][1]()  # fire the group-commit window
        assert released == [1, 2]
        assert store.fsyncs == 1 and store.records_flushed == 2

    def test_discard_pending_loses_unfsynced_records(self):
        env = _FakeEnv()
        store = MemStorage(StorageConfig(kind="mem", fsync_wait=0.01))
        store.attach(env, lambda: None)
        store.append(1, b"synced")
        store.commit(lambda: None)
        env.timers[0][1]()
        store.append(1, b"torn")
        store.commit(lambda: None)
        store.discard_pending()  # the crash
        assert [p for _, p in store.recover().records] == [b"synced"]
        # Sequence numbers of discarded records are reused, keeping the
        # log gapless for the next incarnation.
        store.append(1, b"next-life")
        store.commit(lambda: None)
        env.timers[-1][1]()  # the new incarnation's window closes
        scanned, _ = scan_records(bytes(store._segments[0]))
        assert [seq for seq, _, _ in scanned] == [1, 2]

    def test_capacity_raises_storage_full(self):
        store = MemStorage(
            StorageConfig(kind="mem", capacity_bytes=256), capacity=256
        )
        with pytest.raises(StorageFull):
            for i in range(100):
                store.append(1, b"x" * 32)
                store.commit(lambda: None)

    def test_disk_recover_snapshot_plus_tail(self, tmp_path):
        config = StorageConfig(kind="disk", dir=str(tmp_path))
        store = DiskStorage(config, str(tmp_path / "node-0"))
        for i in range(6):
            store.append(1, b"pre-%d" % i)
        store.commit(lambda: None)
        store.snapshot(b"snapshot-state")
        for i in range(3):
            store.append(2, b"tail-%d" % i)
        store.commit(lambda: None)
        store.close()
        # A different process (fresh object) reopens the same files.
        reopened = DiskStorage(config, str(tmp_path / "node-0"))
        recovered = reopened.recover()
        assert recovered.snapshot == b"snapshot-state"
        assert [(t, p) for t, p in recovered.records] == [
            (2, b"tail-%d" % i) for i in range(3)
        ]
        reopened.close()

    def test_disk_torn_write_truncated_on_recover(self, tmp_path):
        config = StorageConfig(kind="disk", dir=str(tmp_path))
        store = DiskStorage(config, str(tmp_path / "node-1"))
        for i in range(5):
            store.append(1, b"record-%d" % i)
        store.commit(lambda: None)
        store.close()
        # Tear the active segment's tail, as a crash mid-write would.
        seg = sorted((tmp_path / "node-1").glob("seg-*.log"))[-1]
        data = seg.read_bytes()
        seg.write_bytes(data[:-5])
        reopened = DiskStorage(config, str(tmp_path / "node-1"))
        recovered = reopened.recover()
        assert [p for _, p in recovered.records] == [
            b"record-%d" % i for i in range(4)
        ]
        # The torn bytes were physically truncated and appends continue.
        reopened.append(1, b"after")
        reopened.commit(lambda: None)
        reopened.close()
        final = DiskStorage(config, str(tmp_path / "node-1"))
        assert [p for _, p in final.recover().records][-1] == b"after"
        final.close()


# ----------------------------------------------------------------------
# Cluster integration (simulator)
# ----------------------------------------------------------------------


def _drive(
    storage: StorageConfig | None,
    seed: int,
    crash_node: int | None = None,
    crash_at: float = 0.25,
    restart_at: float = 0.6,
    rounds: int = 20,
    n_nodes: int = 3,
) -> Cluster:
    """One seeded run: every node proposes on its own object plus an
    occasionally-shared one, with an optional durable crash-restart."""
    cluster = Cluster(
        ClusterConfig(n_nodes=n_nodes, seed=seed, storage=storage),
        lambda i, n: M2Paxos(_M2),
    )
    cluster.start()
    for round_nr in range(rounds):
        at = 0.05 + round_nr * 0.02
        for node in range(n_nodes):
            obj = f"obj{node}" if round_nr % 4 else "shared"
            cluster.loop.schedule_at(
                at,
                lambda node=node, round_nr=round_nr, obj=obj: cluster.propose(
                    node, Command.make(node, round_nr, [obj])
                ),
            )
    if crash_node is not None:
        cluster.loop.schedule_at(
            crash_at, lambda: cluster.crash(crash_node)
        )
        cluster.loop.schedule_at(
            restart_at, lambda: cluster.restart(crash_node, "durable")
        )
    cluster.run_until(3.0)
    cluster.check_consistency()
    cluster.close_storage()
    return cluster


def _logs(cluster: Cluster) -> list[list]:
    return [[c.cid for c in node.delivered] for node in cluster.nodes]


class TestClusterIntegration:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_mem_sync_fsync_byte_identical_to_null_storage(self, seed):
        """The API-redesign acceptance bar: a synchronous MemStorage run
        must replay the exact event order of the NullStorage default --
        same decision logs, command for command."""
        baseline = _drive(None, seed)
        durable = _drive(StorageConfig(kind="mem"), seed)
        assert _logs(durable) == _logs(baseline)
        assert all(
            node.env.storage is NULL_STORAGE for node in baseline.nodes
        )

    def test_durable_restart_replays_byte_identical_prefix(self):
        cluster = _drive(
            StorageConfig(kind="mem"), seed=5, crash_node=1
        )
        node = cluster.nodes[1]
        assert node.incarnation == 1
        [pre_crash] = node.delivery_history
        assert pre_crash, "crash landed before any delivery"
        final = node.delivered
        # Synchronous fsync: every pre-crash delivery was persisted, so
        # the new incarnation's log extends the old one exactly.
        assert [c.cid for c in final[: len(pre_crash)]] == [
            c.cid for c in pre_crash
        ]
        assert len(final) > len(pre_crash)  # it caught up afterwards

    def test_snapshot_truncation_still_recovers(self):
        storage = StorageConfig(kind="mem", snapshot_every=25)
        cluster = _drive(storage, seed=5, crash_node=1)
        node = cluster.nodes[1]
        [pre_crash] = node.delivery_history
        assert node.env.storage.fsyncs > 0
        recovered = [c.cid for c in node.delivered[: len(pre_crash)]]
        assert recovered == [c.cid for c in pre_crash]

    def test_group_commit_recovers_every_acked_delivery(self):
        """With an open group-commit window, deliveries are withheld
        until their records are fsynced -- so even though the crash can
        lose the un-fsynced tail, everything the node *delivered* must
        survive into the next incarnation."""
        storage = StorageConfig(kind="mem", fsync_wait=0.004)
        cluster = _drive(storage, seed=7, crash_node=1)
        node = cluster.nodes[1]
        [pre_crash] = node.delivery_history
        recovered = [c.cid for c in node.delivered[: len(pre_crash)]]
        assert recovered == [c.cid for c in pre_crash]

    def test_disk_full_fail_stops_node_quorum_continues(self):
        storage = StorageConfig(
            kind="mem", capacity_bytes=6_000, capacity_nodes=(2,)
        )
        cluster = _drive(storage, seed=13)
        assert cluster.nodes[2].crashed  # fail-stop, not an exception
        for node in (0, 1):
            assert not cluster.nodes[node].crashed
            assert len(cluster.nodes[node].delivered) > 0

    def test_disk_storage_cluster_restart(self, tmp_path):
        storage = StorageConfig(
            kind="disk", dir=str(tmp_path), snapshot_every=40
        )
        cluster = _drive(storage, seed=5, crash_node=1)
        node = cluster.nodes[1]
        [pre_crash] = node.delivery_history
        recovered = [c.cid for c in node.delivered[: len(pre_crash)]]
        assert recovered == [c.cid for c in pre_crash]
        assert any((tmp_path / "node-1").iterdir())


class TestRuntimeRecovery:
    def run(self, coro):
        return asyncio.run(asyncio.wait_for(coro, timeout=30))

    def test_durable_recovery_over_tcp(self):
        from repro.runtime.cluster import LocalCluster

        async def scenario():
            cluster = LocalCluster(
                3,
                lambda i, n: M2Paxos(),
                storage=StorageConfig(kind="mem"),
            )
            await cluster.start()
            try:
                for seq in range(3):
                    cluster.propose(1, Command.make(1, seq, ["x"]))
                await cluster.wait_delivered(3)
                pre_crash = [c.cid for c in cluster.delivered(1)]
                await cluster.crash(1)
                await cluster.restart(1, mode="durable")
                # Recovery is synchronous: the replayed log is already
                # byte-identical to the pre-crash one at this point.
                assert [c.cid for c in cluster.delivered(1)] == pre_crash
                assert cluster.nodes[1].incarnation == 1
                assert len(cluster.nodes[1].delivery_history) == 1
                for seq in range(3, 6):
                    cluster.propose(0, Command.make(0, seq, ["x"]))
                await cluster.wait_delivered(6, timeout=15.0)
                assert [c.cid for c in cluster.delivered(1)[:3]] == pre_crash
            finally:
                await cluster.stop()

        self.run(scenario())
