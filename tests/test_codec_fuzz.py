"""Seeded fuzz over the full codec value vocabulary, both wire paths.

``test_codec_properties`` covers the real message shapes with
hypothesis; this file stress-tests the *value* layer with adversarial
nesting (tuple-keyed dicts, sets of tuples, nested dataclasses, huge
and negative ints, unicode) and pins the cross-path contract: whatever
the binary path encodes, the JSON path must decode to the same message,
and vice versa -- that is what lets mixed-version peers interoperate
frame by frame.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import pytest

from repro.consensus.base import Message
from repro.consensus.commands import Command
from repro.core.messages import Accept, AckAccept, AckPrepare, Decide, Prepare
from repro.runtime import codec


def _random_object(rng: random.Random) -> str:
    return rng.choice(["a", "w1.s3", "obj-42", "éléphant", "x" * 40])


def _random_command(rng: random.Random) -> Command:
    return Command(
        cid=(rng.randrange(16), rng.randrange(-5, 1 << 40)),
        ls=frozenset(
            _random_object(rng) for _ in range(rng.randint(1, 4))
        ),
        payload_bytes=rng.randrange(1 << 16),
        proposer=rng.randrange(16),
        noop=rng.random() < 0.1,
    )


def _random_message(rng: random.Random) -> Message:
    command = _random_command(rng)
    instances = {
        (_random_object(rng), rng.randrange(1 << 20)): command
        for _ in range(rng.randint(1, 5))
    }
    eps = {ins: rng.randrange(-3, 1 << 30) for ins in instances}
    kind = rng.randrange(5)
    if kind == 0:
        return Accept(
            req=rng.randrange(1 << 31),
            to_decide=instances,
            eps=eps,
            cmd_ins={command.cid: tuple(sorted(instances))},
            scoped=rng.random() < 0.5,
        )
    if kind == 1:
        return AckAccept(
            req=rng.randrange(1 << 31),
            coordinator=rng.randrange(16),
            ok=rng.random() < 0.5,
            cids={ins: command.cid for ins in instances},
            eps=eps,
            max_rnd=rng.randrange(1 << 20),
        )
    if kind == 2:
        return Decide(to_decide=instances)
    if kind == 3:
        return Prepare(req=rng.randrange(1 << 31), eps=eps)
    return AckPrepare(
        req=rng.randrange(1 << 31),
        ok=rng.random() < 0.5,
        decs={
            ins: (rng.randrange(1 << 10), command if rng.random() < 0.5 else None)
            for ins in instances
        },
        max_rnd=rng.randrange(1 << 20),
    )


@pytest.mark.parametrize("seed", range(8))
def test_fuzzed_messages_roundtrip_both_paths(seed):
    rng = random.Random(seed * 6151 + 17)
    for i in range(50):
        message = _random_message(rng)
        sender = rng.randrange(64)
        for encode in (codec.encode_payload_binary, codec.encode_payload_json):
            payload = encode(sender, message)
            got_sender, got = codec.decode_payload(payload)
            assert got_sender == sender
            assert got == message, f"iteration {i} via {encode.__name__}"


@pytest.mark.parametrize("seed", range(4))
def test_cross_path_equality(seed):
    """Binary and JSON frames of the same message decode identically,
    and the auto-detecting decoder tells them apart by first byte."""
    rng = random.Random(seed * 92821 + 3)
    for _ in range(30):
        message = _random_message(rng)
        binary = codec.encode_payload_binary(5, message)
        as_json = codec.encode_payload_json(5, message)
        assert binary != as_json
        assert binary[0] == 0xB1
        assert as_json[0] == ord("{")
        assert codec.decode_payload(binary) == codec.decode_payload(as_json)


def test_binary_frames_are_deterministic():
    """Equal messages (even with differently-built sets/dicts) encode to
    identical bytes -- required for the sim's reproducible frame sizes."""
    a = Command(cid=(1, 2), ls=frozenset(["x", "y", "z"]))
    b = Command(cid=(1, 2), ls=frozenset(["z", "y", "x"]))
    assert codec.encode_payload_binary(0, Decide(to_decide={("x", 1): a})) == (
        codec.encode_payload_binary(0, Decide(to_decide={("x", 1): b}))
    )


def test_extreme_ints_roundtrip():
    for n in (0, -1, 1, 2**63 - 1, -(2**63), 2**80, -(2**80)):
        msg = Prepare(req=1, eps={("o", 1): n})
        assert codec.decode_payload(codec.encode_payload_binary(0, msg))[1] == msg


def test_floats_and_none_roundtrip():
    msg = AckPrepare(
        req=1, ok=True, decs={("o", 1): (3, None)}, max_rnd=0
    )
    assert codec.decode_payload(codec.encode_payload_binary(0, msg))[1] == msg


@dataclass(frozen=True)
class _Inner:
    label: str
    weights: tuple = ()


@dataclass(frozen=True)
class _FuzzEnvelope(Message):
    """Unregistered-by-default nested dataclass exercising _T_OBJ."""

    inner: _Inner
    table: dict = field(default_factory=dict)


def test_nested_dataclass_binary_roundtrip():
    codec.register_message(_Inner)
    codec.register_message(_FuzzEnvelope)
    msg = _FuzzEnvelope(
        inner=_Inner(label="deep", weights=(1.5, -2.25, 0.0)),
        table={("k", 1): _Inner(label="v"), ("k", 2): None},
    )
    payload = codec.encode_payload_binary(3, msg)
    assert codec.decode_payload(payload) == (3, msg)


def test_exotic_field_falls_back_to_json():
    """The binary walk dispatches on exact classes; an int *subclass*
    (IntEnum-style) is outside its vocabulary and must fall back to the
    JSON path -- and the class is remembered as JSON-only."""
    import enum

    class _Level(enum.IntEnum):
        HIGH = 3

    @dataclass(frozen=True)
    class _Graded(Message):
        level: int

    codec.register_message(_Graded)
    msg = _Graded(level=_Level.HIGH)
    frame = codec.encode_message(9, msg)
    body = frame[codec.FRAME_HEADER.size:]
    assert body[0] == ord("{")  # fell back
    assert codec.decode_message(body) == (9, msg)  # IntEnum == int
    assert _Graded in codec._JSON_ONLY
