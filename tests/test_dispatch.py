"""Dispatch-table coverage and sim-vs-runtime equivalence.

The :class:`~repro.consensus.base.Dispatcher` mixin replaced every
hand-written isinstance chain.  These tests prove (a) each protocol's
table covers every message type its module defines, so no message can
silently fall through, (b) unknown types still fail loudly, and (c) the
two drivers -- deterministic simulator and asyncio TCP runtime -- decide
the same commands in the same order for the same workload.
"""

import asyncio
from dataclasses import dataclass

import pytest

from repro.consensus import epaxos, genpaxos, mencius, multipaxos, paxos
from repro.consensus.base import Dispatcher, Message, handles
from repro.consensus.commands import Command
from repro.core import messages as m2_messages
from repro.core import switcher
from repro.core.protocol import M2Paxos
from repro.runtime.cluster import LocalCluster
from repro.sim.cluster import Cluster, ClusterConfig


def message_types_in(module):
    """Every concrete Message subclass *defined* in ``module``."""
    return [
        obj
        for obj in vars(module).values()
        if isinstance(obj, type)
        and issubclass(obj, Message)
        and obj is not Message
        and obj.__module__ == module.__name__
    ]


# (protocol class, module whose Message subclasses it must handle)
CASES = [
    (M2Paxos, m2_messages),
    (epaxos.EPaxos, epaxos),
    (genpaxos.GenPaxos, genpaxos),
    (mencius.Mencius, mencius),
    (multipaxos.MultiPaxos, multipaxos),
    (paxos.ClassicPaxos, paxos),
    (switcher.AdaptiveSwitcher, switcher),
]


class TestDispatchTables:
    @pytest.mark.parametrize(
        "protocol_cls,module", CASES, ids=[cls.__name__ for cls, _ in CASES]
    )
    def test_every_message_type_has_a_handler(self, protocol_cls, module):
        declared = message_types_in(module)
        assert declared, f"no Message subclasses found in {module.__name__}"
        for message_type in declared:
            handler = protocol_cls.dispatch_table.get(message_type)
            assert handler is not None, (
                f"{protocol_cls.__name__} has no handler for "
                f"{message_type.__name__}"
            )
            assert callable(handler)

    def test_unknown_message_raises(self):
        @dataclass(frozen=True)
        class Bogus(Message):
            pass

        protocol = M2Paxos()
        with pytest.raises(TypeError, match="unexpected message"):
            protocol.on_message(0, Bogus())

    def test_subclass_overrides_base_handler(self):
        @dataclass(frozen=True)
        class Ping(Message):
            pass

        class BaseProto(Dispatcher):
            @handles(Ping)
            def _on_ping(self, sender, msg):
                return "base"

        class SubProto(BaseProto):
            @handles(Ping)
            def _on_ping(self, sender, msg):
                return "sub"

        assert BaseProto.dispatch_table[Ping] is BaseProto.__dict__["_on_ping"]
        assert SubProto.dispatch_table[Ping] is SubProto.__dict__["_on_ping"]


class TestSimRuntimeEquivalence:
    """The same M2Paxos workload decides identically under both drivers."""

    N_NODES = 3
    N_COMMANDS = 5

    def commands(self):
        return [
            Command.make(0, seq, ["alpha"]) for seq in range(self.N_COMMANDS)
        ]

    def sim_orders(self):
        cluster = Cluster(
            ClusterConfig(n_nodes=self.N_NODES, seed=11),
            lambda i, n: M2Paxos(),
        )
        cluster.start()
        for command in self.commands():
            cluster.propose(0, command)
        cluster.run_for(10.0)
        cluster.check_consistency()
        return [
            tuple(c.cid for c in cluster.delivered(i))
            for i in range(self.N_NODES)
        ]

    def runtime_orders(self):
        async def scenario():
            cluster = LocalCluster(self.N_NODES, lambda i, n: M2Paxos())
            await cluster.start()
            try:
                for command in self.commands():
                    cluster.propose(0, command)
                await cluster.wait_delivered(self.N_COMMANDS)
                return [
                    tuple(c.cid for c in cluster.delivered(i))
                    for i in range(self.N_NODES)
                ]
            finally:
                await cluster.stop()

        return asyncio.run(asyncio.wait_for(scenario(), timeout=30))

    def test_same_decisions_under_both_drivers(self):
        sim = self.sim_orders()
        runtime = self.runtime_orders()
        expected = tuple((0, seq) for seq in range(self.N_COMMANDS))
        assert sim == [expected] * self.N_NODES
        assert runtime == sim
