"""Property tests for the streaming quantile sketch (hypothesis).

The documented contract (``repro.obs.telemetry.sketch``): for samples
inside ``[low, high)``, a quantile estimate lies within a relative error
of ``sqrt(growth) - 1`` of the exact *bracketing order statistic* at the
same rank — the rank-based definition the sketch uses, not the linearly
interpolated percentile (interpolation can land between two samples a
whole bucket apart, which no bucket estimator can hit).  The suite
checks that bound over uniform-random, bimodal, and heavy-tailed
distributions, adversarial bucket-edge values included.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.obs.telemetry import LogSketch

LOW, HIGH = 1e-6, 1e4

# A hair of slack on top of the documented bound: the reference order
# statistic itself is a float, and the edge-nudged bucketing guarantees
# containment only up to rounding at the edges.
EPSILON = 1e-9


def bracketing_rank(count: int, q: float) -> int:
    """0-based index of the order statistic the sketch targets."""
    return math.ceil((count - 1) * q / 100.0)


def assert_quantiles_within_bound(values: list[float]) -> None:
    sketch = LogSketch(LOW, HIGH)
    sketch.extend(values)
    exact = sorted(values)
    bound = sketch.relative_error + EPSILON
    for q in (0, 25, 50, 75, 90, 95, 99, 100):
        estimate = sketch.quantile(q)
        reference = exact[bracketing_rank(len(exact), q)]
        assert abs(estimate - reference) <= bound * reference, (
            f"q={q}: estimate {estimate} vs exact {reference} "
            f"(rel err {abs(estimate - reference) / reference:.4f}, "
            f"bound {bound:.4f}, n={len(values)})"
        )


in_range = st.floats(
    min_value=LOW,
    max_value=HIGH * (1 - 1e-12),
    allow_nan=False,
    allow_infinity=False,
    exclude_max=True,
)


@given(st.lists(in_range, min_size=1, max_size=300))
@settings(max_examples=200, deadline=None)
def test_random_values_within_documented_error(values):
    assert_quantiles_within_bound(values)


@given(
    st.lists(
        st.floats(min_value=1e-4, max_value=2e-4, allow_nan=False),
        min_size=1,
        max_size=150,
    ),
    st.lists(
        st.floats(min_value=1.0, max_value=2.0, allow_nan=False),
        min_size=1,
        max_size=150,
    ),
)
@settings(max_examples=100, deadline=None)
def test_bimodal_mixture_within_bound(fast, slow):
    # Two modes four decades apart: the regime where interpolated
    # percentiles fall into the empty gap but bracketing order
    # statistics stay on real samples.
    assert_quantiles_within_bound(fast + slow)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=100, deadline=None)
def test_heavy_tail_within_bound(uniforms):
    # Pareto-shaped tail via inverse transform: u -> low * (1-u)^(-a).
    values = [1e-4 * (1.0 - u) ** -1.5 for u in uniforms]
    values = [min(v, HIGH * (1 - 1e-12)) for v in values]
    assert_quantiles_within_bound(values)


@given(st.lists(st.integers(0, 259), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_adversarial_bucket_edges_within_bound(indices):
    # Values sitting exactly on bucket edges: the worst case for the
    # float log-index computation (the nudge in LogSketch._index).
    sketch = LogSketch(LOW, HIGH)
    edges = sketch._edges
    values = [edges[min(i, len(edges) - 2)] for i in indices]
    assert_quantiles_within_bound(values)


@given(st.lists(in_range, min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_quantile_is_monotone_in_q(values):
    sketch = LogSketch(LOW, HIGH)
    sketch.extend(values)
    quantiles = [sketch.quantile(q) for q in (0, 10, 50, 90, 99, 100)]
    assert quantiles == sorted(quantiles)
    assert sketch.quantile(0) >= sketch.minimum
    assert sketch.quantile(100) <= sketch.maximum


@given(
    st.lists(in_range, min_size=1, max_size=100),
    st.lists(in_range, min_size=0, max_size=100),
)
@settings(max_examples=100, deadline=None)
def test_interval_delta_matches_fresh_sketch(first, second):
    # since(state) over [state, now) must equal a sketch fed only the
    # second batch — the identity the IntervalSampler's frames rest on.
    sketch = LogSketch(LOW, HIGH)
    sketch.extend(first)
    state = sketch.state()
    sketch.extend(second)
    delta = sketch.since(state)
    fresh = LogSketch(LOW, HIGH)
    fresh.extend(second)
    assert delta.count == fresh.count
    assert delta.counts == fresh.counts
    assert delta.total == sketch.total - state[1]
