"""Fast-path batching: equivalence, safety under faults, retry paths.

The batched Accept round must be an *optimisation only*: positions are
reserved at enqueue time in submission order, so for every object the
decided sequence of commands is identical whether rounds carry one
command or eight.  These tests drive identical seeded workloads through
``max_batch=1`` and ``max_batch=8`` clusters and compare the per-object
delivery projections, then rerun the chaos smoke suite with batching on.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.chaos.runner import _CHAOS_M2, run_scenario
from repro.chaos.scenarios import SMOKE, by_name
from repro.consensus.commands import Command
from repro.core.protocol import M2Paxos, M2PaxosConfig
from tests.conftest import assert_all_delivered, make_cluster, run_workload


def _run(max_batch: int, seed: int, locality: float = 1.0):
    config = M2PaxosConfig(
        max_batch=max_batch,
        batch_wait=1e-3 if max_batch > 1 else 0.0,
    )
    cluster = make_cluster(
        lambda node_id, n: M2Paxos(config), n_nodes=5, seed=seed
    )
    pool = [f"obj{i}" for i in range(10)]

    def picker(rng: random.Random, node: int, round_nr: int):
        if rng.random() < locality:
            return [pool[node % len(pool)]]
        return [rng.choice(pool)]

    proposed = run_workload(
        cluster, commands_per_node=30, object_picker=picker,
        seed=seed, spacing=0.004,
    )
    assert_all_delivered(cluster, proposed)
    return cluster, proposed


def _per_object_orders(cluster) -> dict[int, dict[str, list[tuple[int, int]]]]:
    """For each node: object -> the cid sequence delivered touching it."""
    orders: dict[int, dict[str, list[tuple[int, int]]]] = {}
    for node in range(cluster.config.n_nodes):
        by_object: dict[str, list[tuple[int, int]]] = {}
        for command in cluster.delivered(node):
            for obj in command.ls:
                by_object.setdefault(obj, []).append(command.cid)
        orders[node] = by_object
    return orders


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_batched_per_object_order_matches_unbatched(seed):
    plain, _ = _run(max_batch=1, seed=seed)
    batched, _ = _run(max_batch=8, seed=seed)
    assert _per_object_orders(plain) == _per_object_orders(batched)


def _run_burst(max_batch: int):
    """Each node fires 16 fast-path commands back to back -- the
    saturation shape batching exists for."""
    config = M2PaxosConfig(
        max_batch=max_batch, batch_wait=1e-3 if max_batch > 1 else 0.0
    )
    cluster = make_cluster(
        lambda node_id, n: M2Paxos(config), n_nodes=5, seed=3
    )
    proposed = []
    for node in range(5):
        for i in range(16):
            command = Command.make(node, i, [f"mine{node}"])
            proposed.append(command)
            cluster.propose(node, command)
    cluster.run_for(10.0)
    assert_all_delivered(cluster, proposed)
    return cluster


def test_batching_reduces_messages_on_bursty_workload():
    plain = _run_burst(max_batch=1)
    batched = _run_burst(max_batch=8)
    assert batched.network.messages_sent < plain.network.messages_sent
    assert _per_object_orders(plain) == _per_object_orders(batched)


@pytest.mark.parametrize("seed", [5, 11])
def test_mixed_locality_stays_equivalent(seed):
    """Forward/acquisition traffic interleaved with batched fast-path
    rounds must not perturb any per-object order."""
    plain, _ = _run(max_batch=1, seed=seed, locality=0.6)
    batched, _ = _run(max_batch=8, seed=seed, locality=0.6)
    assert _per_object_orders(plain) == _per_object_orders(batched)


def test_batched_run_is_deterministic():
    first, _ = _run(max_batch=8, seed=9)
    second, _ = _run(max_batch=8, seed=9)
    assert [c.cid for c in first.delivered(0)] == [
        c.cid for c in second.delivered(0)
    ]


_BATCHED_CHAOS = replace(_CHAOS_M2, max_batch=8, batch_wait=1e-3)


@pytest.mark.parametrize("name", SMOKE)
def test_chaos_smoke_passes_with_batching(name):
    """Crash/partition/wire-fault scenarios stay safe and deterministic
    with multi-command Accept rounds in flight."""
    scenario = by_name(name)
    first = run_scenario(scenario, config=_BATCHED_CHAOS)
    second = run_scenario(scenario, config=_BATCHED_CHAOS)
    assert first.ok, first.report.violations
    assert second.ok, second.report.violations
    assert first.fingerprint == second.fingerprint


def test_batch_wait_timer_flushes_partial_batch():
    """A lone command must not wait for the batch to fill: the
    batch_wait timer flushes it."""
    config = M2PaxosConfig(max_batch=64, batch_wait=2e-3)
    cluster = make_cluster(
        lambda node_id, n: M2Paxos(config), n_nodes=3, seed=0
    )
    command = Command.make(0, 1, ["solo"])
    cluster.propose(0, command)
    cluster.run_for(0.5)
    assert command.cid in {c.cid for c in cluster.delivered(0)}


def test_nack_retries_every_batch_member():
    """If a batched round is NACKed, every command in it must still be
    decided eventually (the retry path walks the whole batch)."""
    config = M2PaxosConfig(max_batch=4, batch_wait=1e-3)
    cluster = make_cluster(
        lambda node_id, n: M2Paxos(config), n_nodes=5, seed=2
    )
    # Two nodes race batches on the same objects: the losers' rounds see
    # epoch NACKs and must re-drive each batched command.
    proposed = []
    for node in (0, 1):
        for i in range(8):
            command = Command.make(node, i, [f"hot{i % 2}"])
            proposed.append(command)
            cluster.propose(node, command)
    cluster.run_for(10.0)
    assert_all_delivered(cluster, proposed)
