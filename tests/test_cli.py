"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_run_single_point(self, capsys):
        code = main(
            [
                "run",
                "--protocol",
                "m2paxos",
                "--nodes",
                "3",
                "--duration",
                "0.05",
                "--warmup",
                "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "m2paxos" in out
        assert "throughput" in out

    def test_run_prints_final_telemetry_frame(self, capsys):
        code = main(
            [
                "run",
                "--protocol",
                "m2paxos",
                "--nodes",
                "3",
                "--duration",
                "0.05",
                "--warmup",
                "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry (final interval frame)" in out
        assert "fast%" in out

    def test_top_sim_smoke(self, tmp_path, capsys):
        jsonl = tmp_path / "frames.jsonl"
        code = main(
            [
                "top",
                "--protocol",
                "m2paxos",
                "--nodes",
                "3",
                "--duration",
                "0.1",
                "--warmup",
                "0.05",
                "--interval",
                "0.05",
                "--jsonl",
                str(jsonl),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "cps" in out
        lines = jsonl.read_text().splitlines()
        assert lines
        frame = json.loads(lines[-1])
        assert "decides" in frame and "p50" in frame

    def test_run_tpcc(self, capsys):
        code = main(
            [
                "run",
                "--protocol",
                "multipaxos",
                "--workload",
                "tpcc",
                "--nodes",
                "3",
                "--duration",
                "0.05",
                "--warmup",
                "0.05",
            ]
        )
        assert code == 0
        assert "tpcc" in capsys.readouterr().out

    def test_trace_exports_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        code = main(
            [
                "trace",
                "--protocol",
                "m2paxos",
                "--nodes",
                "3",
                "--duration",
                "0.05",
                "--warmup",
                "0.05",
                "--out",
                str(out),
                "--jsonl",
                str(jsonl),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        command_spans = [
            e for e in payload["traceEvents"] if e.get("cat") == "command"
        ]
        assert any(e["args"]["path"] == "fast" for e in command_spans)
        records = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert any(r["kind"] == "summary" for r in records)
        stdout = capsys.readouterr().out
        assert "decision paths" in stdout
        assert "perfetto" in stdout

    def test_modelcheck(self, capsys):
        code = main(["modelcheck", "--ballots", "1"])
        assert code == 0
        assert "no violation" in capsys.readouterr().out

    def test_modelcheck_bounded(self, capsys):
        code = main(["modelcheck", "--ballots", "1", "--max-states", "50"])
        assert code == 0
        assert "bounded" in capsys.readouterr().out

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--protocol", "raft"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
