"""Network-partition fault injection across protocols.

The safety obligation under partitions is absolute (no divergent
decisions on either side); liveness belongs only to the majority side,
and must resume for everyone once the partition heals.
"""


from repro.consensus.commands import Command
from repro.consensus.multipaxos import MultiPaxos, MultiPaxosConfig
from repro.core.protocol import M2Paxos, M2PaxosConfig

from tests.conftest import make_cluster


class TestM2PaxosPartitions:
    def config(self):
        return M2PaxosConfig(
            forward_timeout=0.1, gap_timeout=0.2, gap_check_period=0.1
        )

    def test_minority_side_cannot_decide(self):
        cluster = make_cluster(
            lambda i, n: M2Paxos(self.config()), n_nodes=5, seed=1
        )
        cluster.partition({0, 1}, {2, 3, 4})
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(3.0)
        cluster.check_consistency()
        assert len(cluster.delivered(0)) == 0
        assert len(cluster.delivered(1)) == 0

    def test_majority_side_keeps_deciding(self):
        cluster = make_cluster(
            lambda i, n: M2Paxos(self.config()), n_nodes=5, seed=2
        )
        cluster.partition({0, 1}, {2, 3, 4})
        cluster.propose(2, Command.make(2, 0, ["y"]))
        cluster.run_for(3.0)
        cluster.check_consistency()
        for node in (2, 3, 4):
            assert len(cluster.delivered(node)) == 1

    def test_heal_delivers_minority_proposal_everywhere(self):
        cluster = make_cluster(
            lambda i, n: M2Paxos(self.config()), n_nodes=5, seed=3
        )
        cluster.partition({0, 1}, {2, 3, 4})
        blocked = Command.make(0, 0, ["x"])
        cluster.propose(0, blocked)
        majority = Command.make(2, 0, ["x"])
        cluster.propose(2, majority)
        cluster.run_for(2.0)
        cluster.heal_partitions()
        cluster.run_for(10.0)
        cluster.check_consistency()
        for node in range(5):
            cids = {c.cid for c in cluster.delivered(node)}
            assert cids == {blocked.cid, majority.cid}, node

    def test_ownership_survives_partition_of_owner(self):
        cluster = make_cluster(
            lambda i, n: M2Paxos(self.config()), n_nodes=5, seed=4
        )
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        # Cut the owner off; a majority-side node takes the object over.
        cluster.partition({0}, {1, 2, 3, 4})
        cluster.propose(1, Command.make(1, 0, ["x"]))
        cluster.run_for(5.0)
        cluster.check_consistency()
        assert any(c.cid == (1, 0) for c in cluster.delivered(2))
        # Heal: the old owner learns it was dethroned and catches up.
        cluster.heal_partitions()
        cluster.propose(0, Command.make(0, 99, ["x"]))
        cluster.run_for(10.0)
        cluster.check_consistency()
        cids = {c.cid for c in cluster.delivered(0)}
        assert {(0, 0), (1, 0), (0, 99)} <= cids


class TestMultiPaxosPartitions:
    def test_leader_partitioned_majority_elects(self):
        config = MultiPaxosConfig(leader_timeout=0.15)
        cluster = make_cluster(
            lambda i, n: MultiPaxos(config), n_nodes=5, seed=5
        )
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        cluster.partition({0}, {1, 2, 3, 4})
        cluster.propose(1, Command.make(1, 0, ["x"]))
        cluster.run_for(5.0)
        cluster.check_consistency()
        assert any(c.cid == (1, 0) for c in cluster.delivered(1))
        # No split brain: the old leader decided nothing alone.
        assert all(
            c.cid in {(0, 0)} for c in cluster.delivered(0)
        )
