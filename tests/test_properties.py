"""Property-based tests (hypothesis).

Two layers:

- data-structure properties: C-struct compatibility, percentile
  invariants, CPU-model monotonicity;
- whole-protocol properties: for randomly generated workloads and
  network schedules, every protocol satisfies the Generalized Consensus
  safety properties and (given quiet time) delivers everything.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.consensus.commands import Command, CStruct
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.metrics.stats import percentile
from repro.sim.cpu import CpuConfig, CpuModel
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.latency import UniformLatency
from repro.sim.network import NetworkConfig

from tests.conftest import PROTOCOL_FACTORIES

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

OBJECTS = ["a", "b", "c"]


def command_strategy(proposers=3):
    return st.builds(
        lambda proposer, seq, objs: Command.make(proposer, seq, objs),
        st.integers(0, proposers - 1),
        st.integers(0, 10_000),
        st.sets(st.sampled_from(OBJECTS), min_size=1, max_size=2),
    )


# ----------------------------------------------------------------------
# Data-structure properties
# ----------------------------------------------------------------------


class TestCStructProperties:
    @given(st.lists(command_strategy(), max_size=12, unique_by=lambda c: c.cid))
    def test_restriction_preserves_relative_order(self, commands):
        cs = CStruct()
        for command in commands:
            cs.append(command)
        for obj in OBJECTS:
            restricted = cs.restricted_to(obj)
            indices = [cs.commands.index(c) for c in restricted]
            assert indices == sorted(indices)

    @given(st.lists(command_strategy(), max_size=10, unique_by=lambda c: c.cid))
    def test_compatibility_is_reflexive_and_symmetric(self, commands):
        cs = CStruct()
        for command in commands:
            cs.append(command)
        assert cs.is_prefix_compatible(cs)
        other = CStruct()
        for command in commands[: len(commands) // 2]:
            other.append(command)
        assert cs.is_prefix_compatible(other) == other.is_prefix_compatible(cs)

    @given(
        st.lists(command_strategy(), min_size=2, max_size=10, unique_by=lambda c: c.cid)
    )
    def test_swapping_adjacent_commuting_commands_stays_compatible(self, commands):
        cs1 = CStruct()
        for command in commands:
            cs1.append(command)
        # Find an adjacent commuting pair and swap it.
        order = list(commands)
        for i in range(len(order) - 1):
            if not order[i].conflicts(order[i + 1]):
                order[i], order[i + 1] = order[i + 1], order[i]
                break
        cs2 = CStruct()
        for command in order:
            cs2.append(command)
        assert cs1.is_prefix_compatible(cs2)


class TestStatsProperties:
    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200), st.floats(0, 100))
    def test_percentile_bounded_by_min_max(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=200))
    def test_percentile_monotone_in_q(self, values):
        qs = [0, 25, 50, 75, 100]
        results = [percentile(values, q) for q in qs]
        assert results == sorted(results)


class TestCpuModelProperties:
    @given(
        st.lists(st.floats(1e-6, 1e-3), min_size=1, max_size=50),
        st.integers(1, 32),
        st.floats(0, 1),
    )
    def test_completion_never_before_arrival_plus_cost(self, costs, cores, serial):
        cpu = CpuModel(CpuConfig(cores=cores))
        now = 0.0
        for cost in costs:
            done = cpu.submit(now, cost, serial)
            assert done >= now + cost - 1e-12

    @given(st.lists(st.floats(1e-6, 1e-3), min_size=1, max_size=50))
    def test_more_cores_never_slower(self, costs):
        few = CpuModel(CpuConfig(cores=2))
        many = CpuModel(CpuConfig(cores=8))
        few_done = max(few.submit(0.0, c, 0.0) for c in costs)
        many_done = max(many.submit(0.0, c, 0.0) for c in costs)
        assert many_done <= few_done + 1e-12


# ----------------------------------------------------------------------
# Whole-protocol properties
# ----------------------------------------------------------------------


def run_random_schedule(factory, commands, seed, jitter):
    """Drive a 5-node cluster with a random proposal schedule."""
    cluster = Cluster(
        ClusterConfig(
            n_nodes=5,
            seed=seed,
            network=NetworkConfig(
                latency=UniformLatency(50e-6, 50e-6 + jitter), batching=True
            ),
        ),
        factory,
    )
    cluster.start()
    rng = random.Random(seed)
    for command in commands:
        cluster.propose(command.proposer, command)
        cluster.run_for(rng.random() * 0.01)
    cluster.run_for(30.0)
    return cluster


protocol_names = st.sampled_from(sorted(PROTOCOL_FACTORIES))


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    name=protocol_names,
    seed=st.integers(0, 2**16),
    commands=st.lists(
        command_strategy(proposers=5),
        min_size=1,
        max_size=12,
        unique_by=lambda c: c.cid,
    ),
    jitter=st.floats(0, 200e-6),
)
def test_generalized_consensus_properties(name, seed, commands, jitter):
    """Non-triviality, Stability (implied by append-only delivery logs),
    Consistency, and quiet-time liveness for random workloads."""
    factory = PROTOCOL_FACTORIES[name]
    cluster = run_random_schedule(factory, commands, seed, jitter)

    # Consistency (raises on violation).
    cluster.check_consistency()

    proposed_cids = {c.cid for c in commands}
    for node in range(5):
        delivered = cluster.delivered(node)
        # Non-triviality: only proposed commands are delivered.
        assert {c.cid for c in delivered} <= proposed_cids
        # No duplicates.
        assert len({c.cid for c in delivered}) == len(delivered)
    # Liveness after quiet time: everything proposed was delivered
    # everywhere.
    for node in range(5):
        assert {c.cid for c in cluster.delivered(node)} == proposed_cids


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2**16),
    commands=st.lists(
        command_strategy(proposers=5),
        min_size=1,
        max_size=10,
        unique_by=lambda c: c.cid,
    ),
)
def test_m2paxos_safety_under_message_loss(seed, commands):
    """With transient message drops, M2Paxos stays safe and -- thanks to
    retries and gap recovery -- still delivers everything."""
    config = M2PaxosConfig(gap_timeout=0.3, gap_check_period=0.15)
    cluster = Cluster(
        ClusterConfig(
            n_nodes=5,
            seed=seed,
            network=NetworkConfig(drop_probability=0.03),
        ),
        lambda i, n: M2Paxos(config),
    )
    cluster.start()
    rng = random.Random(seed)
    for command in commands:
        cluster.propose(command.proposer, command)
        cluster.run_for(rng.random() * 0.01)
    cluster.run_for(60.0)
    cluster.check_consistency()
    proposed_cids = {c.cid for c in commands}
    for node in range(5):
        assert {c.cid for c in cluster.delivered(node)} == proposed_cids
