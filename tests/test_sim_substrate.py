"""Unit tests for RNG streams, latency models, CPU model, and network."""

import random

import pytest

from repro.sim.cpu import CpuConfig, CpuModel
from repro.sim.event_loop import EventLoop
from repro.sim.latency import (
    FixedLatency,
    GaussianLatency,
    TopologyLatency,
    UniformLatency,
)
from repro.sim.network import Network, NetworkConfig
from repro.sim.rng import RngRegistry


class TestRng:
    def test_streams_are_deterministic(self):
        a = RngRegistry(42).stream("x").random()
        b = RngRegistry(42).stream("x").random()
        assert a == b

    def test_streams_are_independent_by_name(self):
        reg = RngRegistry(42)
        assert reg.stream("x").random() != reg.stream("y").random()

    def test_same_name_returns_same_stream(self):
        reg = RngRegistry(42)
        assert reg.stream("x") is reg.stream("x")

    def test_fork_decorrelates(self):
        reg = RngRegistry(42)
        forked = reg.fork(1)
        assert reg.stream("x").random() != forked.stream("x").random()

    def test_adding_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(7)
        s = reg1.stream("work")
        first = [s.random() for _ in range(3)]

        reg2 = RngRegistry(7)
        reg2.stream("other")  # extra stream created first
        s2 = reg2.stream("work")
        assert [s2.random() for _ in range(3)] == first


class TestLatencyModels:
    def test_fixed(self):
        model = FixedLatency(0.01)
        assert model.sample(0, 1, random.Random(0)) == 0.01
        assert model.sample(0, 0, random.Random(0)) == 0.0  # loopback

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-1.0)

    def test_uniform_within_bounds(self):
        model = UniformLatency(0.001, 0.002)
        rng = random.Random(1)
        for _ in range(100):
            assert 0.001 <= model.sample(0, 1, rng) <= 0.002

    def test_gaussian_respects_floor(self):
        model = GaussianLatency(mean=1e-4, stddev=1e-3, floor=1e-6)
        rng = random.Random(2)
        assert all(model.sample(0, 1, rng) >= 1e-6 for _ in range(200))

    def test_topology_matrix(self):
        matrix = [[0.0, 0.05], [0.08, 0.0]]
        model = TopologyLatency(matrix)
        rng = random.Random(3)
        assert model.sample(0, 1, rng) == 0.05
        assert model.sample(1, 0, rng) == 0.08

    def test_topology_jitter_is_symmetric_half_width(self):
        # The docstring promises a half-width perturbation: samples land
        # in [base - jitter, base + jitter], not [base, base + jitter].
        model = TopologyLatency([[0.0, 0.01], [0.01, 0.0]], jitter=0.005)
        rng = random.Random(4)
        samples = [model.sample(0, 1, rng) for _ in range(400)]
        assert all(0.005 <= s <= 0.015 for s in samples)
        assert min(samples) < 0.01 < max(samples)  # both sides exercised
        mean = sum(samples) / len(samples)
        assert abs(mean - 0.01) < 0.001  # unbiased, not +jitter/2

    def test_topology_jitter_floors_at_zero(self):
        model = TopologyLatency([[0.0, 0.001], [0.001, 0.0]], jitter=0.01)
        rng = random.Random(7)
        assert all(model.sample(0, 1, rng) >= 0.0 for _ in range(200))

    def test_topology_zero_jitter_draws_no_rng(self):
        # Byte-identity guard: the jitter=0 path must not consume RNG.
        model = TopologyLatency([[0.0, 0.01], [0.01, 0.0]], jitter=0.0)
        rng = random.Random(11)
        before = rng.getstate()
        assert model.sample(0, 1, rng) == 0.01
        assert rng.getstate() == before

    def test_from_zones_builds_intra_inter_matrix(self):
        model = TopologyLatency.from_zones(
            (0, 0, 1, 1, 2), intra=0.001, inter=0.04
        )
        rng = random.Random(0)
        assert model.sample(0, 1, rng) == 0.001  # same zone
        assert model.sample(0, 2, rng) == 0.04  # cross zone
        assert model.sample(4, 0, rng) == 0.04
        assert model.sample(3, 3, rng) == 0.0  # loopback

    def test_topology_rejects_non_square(self):
        with pytest.raises(ValueError):
            TopologyLatency([[0.0, 0.1]])


class TestCpuModel:
    def test_sequential_jobs_queue_on_one_core(self):
        cpu = CpuModel(CpuConfig(cores=1))
        first = cpu.submit(0.0, 1.0, 0.0)
        second = cpu.submit(0.0, 1.0, 0.0)
        assert first == 1.0
        assert second == 2.0

    def test_parallel_jobs_spread_across_cores(self):
        cpu = CpuModel(CpuConfig(cores=4))
        ends = [cpu.submit(0.0, 1.0, 0.0) for _ in range(4)]
        assert ends == [1.0, 1.0, 1.0, 1.0]

    def test_serial_fraction_caps_throughput(self):
        # With serial fraction 0.5, 10 jobs of 1s need >= 5s of lock time
        # no matter how many cores exist.
        cpu = CpuModel(CpuConfig(cores=64))
        last = max(cpu.submit(0.0, 1.0, 0.5) for _ in range(10))
        assert last >= 5.0

    def test_zero_serial_scales_linearly(self):
        cpu = CpuModel(CpuConfig(cores=8))
        last = max(cpu.submit(0.0, 1.0, 0.0) for _ in range(8))
        assert last == 1.0

    def test_speed_divides_cost(self):
        cpu = CpuModel(CpuConfig(cores=1, speed=2.0))
        assert cpu.submit(0.0, 1.0, 0.0) == 0.5

    def test_late_arrival_starts_at_arrival(self):
        cpu = CpuModel(CpuConfig(cores=1))
        assert cpu.submit(10.0, 1.0, 0.0) == 11.0

    def test_utilisation(self):
        cpu = CpuModel(CpuConfig(cores=2))
        cpu.submit(0.0, 1.0, 0.0)
        assert cpu.utilisation(1.0) == pytest.approx(0.5)

    def test_invalid_args_rejected(self):
        cpu = CpuModel(CpuConfig(cores=1))
        with pytest.raises(ValueError):
            cpu.submit(0.0, -1.0, 0.0)
        with pytest.raises(ValueError):
            cpu.submit(0.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            CpuConfig(cores=0)


def make_network(n=3, **overrides):
    loop = EventLoop()
    defaults = dict(latency=FixedLatency(0.001), batching=False)
    defaults.update(overrides)
    config = NetworkConfig(**defaults)
    network = Network(loop, n, config, RngRegistry(0))
    return loop, network


class TestNetwork:
    def test_delivers_with_latency(self):
        loop, network = make_network()
        got = []
        network.register(1, lambda src, msg, size: got.append((loop.now, src, msg)))
        network.send(0, 1, "hello", 100)
        loop.run()
        assert len(got) == 1
        t, src, msg = got[0]
        assert src == 0 and msg == "hello"
        assert t > 0.001  # latency + transmission

    def test_transmission_delay_scales_with_size(self):
        _, network = make_network(bandwidth=1000.0, header_bytes=0)
        assert network.transmission_delay(500) == pytest.approx(0.5)

    def test_batching_amortises_header(self):
        _, full = make_network(bandwidth=1000.0, header_bytes=64, batching=False)
        _, batched = make_network(
            bandwidth=1000.0, header_bytes=64, batching=True, batch_factor=16
        )
        assert batched.transmission_delay(0) < full.transmission_delay(0)

    def test_fifo_per_link(self):
        loop, network = make_network(
            latency=UniformLatency(0.001, 0.010), fifo_links=True
        )
        got = []
        network.register(1, lambda src, msg, size: got.append(msg))
        for i in range(50):
            network.send(0, 1, i, 10)
        loop.run()
        assert got == list(range(50))

    def test_crashed_node_receives_nothing(self):
        loop, network = make_network()
        got = []
        network.register(1, lambda src, msg, size: got.append(msg))
        network.crash(1)
        network.send(0, 1, "x", 10)
        loop.run()
        assert got == []
        assert network.messages_dropped == 1

    def test_crash_during_flight_drops_message(self):
        loop, network = make_network()
        got = []
        network.register(1, lambda src, msg, size: got.append(msg))
        network.send(0, 1, "x", 10)
        loop.schedule(0.0001, lambda: network.crash(1))
        loop.run()
        assert got == []

    def test_recover_restores_delivery(self):
        loop, network = make_network()
        got = []
        network.register(1, lambda src, msg, size: got.append(msg))
        network.crash(1)
        network.recover(1)
        network.send(0, 1, "x", 10)
        loop.run()
        assert got == ["x"]

    def test_partition_blocks_both_directions(self):
        loop, network = make_network()
        got = []
        network.register(0, lambda src, msg, size: got.append(("to0", msg)))
        network.register(2, lambda src, msg, size: got.append(("to2", msg)))
        network.partition({0}, {2})
        network.send(0, 2, "a", 10)
        network.send(2, 0, "b", 10)
        loop.run()
        assert got == []
        network.heal_partitions()
        network.send(0, 2, "c", 10)
        loop.run()
        assert got == [("to2", "c")]

    def test_drop_probability(self):
        loop, network = make_network(drop_probability=0.5)
        got = []
        network.register(1, lambda src, msg, size: got.append(msg))
        for i in range(200):
            network.send(0, 1, i, 10)
        loop.run()
        assert 40 < len(got) < 160  # roughly half, seeded

    def test_duplicate_registration_rejected(self):
        _, network = make_network()
        network.register(0, lambda *a: None)
        with pytest.raises(ValueError):
            network.register(0, lambda *a: None)

    def test_counters(self):
        loop, network = make_network()
        network.register(1, lambda *a: None)
        network.send(0, 1, "x", 10)
        loop.run()
        assert network.messages_sent == 1
        assert network.messages_delivered == 1
        assert network.bytes_sent == 10
