"""Tests for the simplified Mencius baseline."""

from repro.consensus.commands import Command
from repro.consensus.mencius import Mencius
from repro.sim.latency import UniformLatency
from repro.sim.network import NetworkConfig

from tests.conftest import assert_all_delivered, make_cluster, run_workload


def mn(config=None):
    return lambda node_id, n: Mencius(config)


class TestOrdering:
    def test_single_proposer_with_skips(self):
        cluster = make_cluster(mn(), n_nodes=3, seed=1)
        for seq in range(5):
            cluster.propose(1, Command.make(1, seq, ["x"]))
        cluster.run_for(2.0)
        cluster.check_consistency()
        # Other nodes' empty slots were skipped so delivery advanced.
        for node in range(3):
            assert [c.cid for c in cluster.delivered(node)] == [
                (1, s) for s in range(5)
            ]
        assert cluster.nodes[0].protocol.stats["skips"] > 0

    def test_all_proposers_total_order(self):
        cluster = make_cluster(mn(), n_nodes=5, seed=2)
        proposed = run_workload(
            cluster, 8, lambda rng, node, r: ["hot"], spacing=0.01, settle=5.0
        )
        assert_all_delivered(cluster, proposed)
        orders = {tuple(c.cid for c in cluster.delivered(i)) for i in range(5)}
        assert len(orders) == 1  # global slot order is total

    def test_slots_partitioned_round_robin(self):
        cluster = make_cluster(mn(), n_nodes=3, seed=3)
        cluster.propose(2, Command.make(2, 0, ["x"]))
        cluster.run_for(1.0)
        protocol = cluster.nodes[0].protocol
        decided_slots = [
            slot for slot, value in protocol.decided.items() if value is not None
        ]
        assert decided_slots and all(slot % 3 == 2 for slot in decided_slots)

    def test_own_slot_two_delay_latency(self):
        latency = 0.01
        cluster = make_cluster(
            mn(),
            n_nodes=3,
            seed=4,
            network=NetworkConfig(latency=UniformLatency(latency, latency)),
        )
        times = {}
        for node in cluster.nodes:
            node.deliver_listeners.append(
                lambda nid, c, t: times.setdefault((nid, c.cid), t)
            )
        # Slot 0 belongs to node 0: no skips needed ahead of it.
        t0 = cluster.loop.now
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        elapsed = times[(0, (0, 0))] - t0
        assert 2 * latency <= elapsed < 3 * latency

    def test_interleaved_proposers_preserve_slot_order(self):
        cluster = make_cluster(mn(), n_nodes=3, seed=5)
        for seq in range(6):
            cluster.propose(seq % 3, Command.make(seq % 3, seq, ["k"]))
            cluster.run_for(0.02)
        cluster.run_for(2.0)
        cluster.check_consistency()
        assert len(cluster.delivered(0)) == 6

    def test_foreign_slot_proposal_rejected(self):
        import pytest

        cluster = make_cluster(mn(), n_nodes=3, seed=6)
        protocol = cluster.nodes[1].protocol
        from repro.consensus.mencius import MnAccept

        with pytest.raises(AssertionError):
            # Node 0 claiming slot 1 (owned by node 1) must be caught.
            protocol.on_message(0, MnAccept(slot=1, command=Command.make(0, 0, ["x"])))
