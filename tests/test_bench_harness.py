"""Unit tests for the benchmark harness and reporting helpers."""

import pytest

from repro.bench.harness import (
    PROTOCOLS,
    PointSpec,
    build_workload,
    protocol_factory,
    run_point,
    saturated_spec,
)
from repro.bench.report import format_table, series_by
from repro.sim.rng import RngRegistry
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.tpcc import TpccWorkload


class TestProtocolFactory:
    @pytest.mark.parametrize("name", PROTOCOLS)
    def test_every_protocol_constructs(self, name):
        factory = protocol_factory(name)
        protocol = factory(0, 5)
        assert protocol is not None

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            protocol_factory("zab")

    def test_home_hint_threaded_to_m2paxos(self):
        hint = lambda name: 1
        protocol = protocol_factory("m2paxos", home_hint=hint)(0, 3)
        assert protocol.config.home_hint is hint


class TestWorkloadBuilder:
    def test_synthetic(self):
        spec = PointSpec(protocol="m2paxos", n_nodes=3)
        workload = build_workload(spec, RngRegistry(1))
        assert isinstance(workload, SyntheticWorkload)

    def test_tpcc(self):
        spec = PointSpec(protocol="m2paxos", n_nodes=3, workload="tpcc")
        workload = build_workload(spec, RngRegistry(1))
        assert isinstance(workload, TpccWorkload)

    def test_unknown_workload_rejected(self):
        spec = PointSpec(protocol="m2paxos", n_nodes=3, workload="ycsb")
        with pytest.raises(ValueError):
            build_workload(spec, RngRegistry(1))


class TestRunPoint:
    def test_small_point_produces_metrics(self):
        spec = PointSpec(
            protocol="m2paxos",
            n_nodes=3,
            clients_per_node=4,
            think_time=0.01,
            max_inflight=8,
            warmup=0.05,
            duration=0.1,
        )
        result = run_point(spec)
        assert result.throughput > 0
        assert result.latency is not None
        assert result.messages_sent > 0
        assert "protocol_stats" in result.extra

    def test_saturated_spec_stretches_warmup(self):
        spec = PointSpec(protocol="m2paxos", n_nodes=3, warmup=0.1)
        stretched = saturated_spec(spec)
        assert stretched.warmup >= 0.5
        assert stretched.clients_per_node == 64

    def test_deterministic_given_seed(self):
        spec = PointSpec(
            protocol="multipaxos",
            n_nodes=3,
            clients_per_node=4,
            think_time=0.01,
            warmup=0.05,
            duration=0.1,
            seed=7,
        )
        a = run_point(spec)
        b = run_point(spec)
        assert a.throughput == b.throughput
        assert a.messages_sent == b.messages_sent


class TestReport:
    def test_format_table_aligns_columns(self):
        rows = [
            {"proto": "m2paxos", "tp": 1234.5},
            {"proto": "mp", "tp": 9.25},
        ]
        out = format_table(rows, ["proto", "tp"])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "1,234.5" in out
        assert "9.250" in out

    def test_series_by_groups_and_sorts(self):
        rows = [
            {"p": "a", "x": 2, "y": 20},
            {"p": "a", "x": 1, "y": 10},
            {"p": "b", "x": 1, "y": 5},
        ]
        series = series_by(rows, "p", "x", "y")
        assert series["a"] == [(1, 10), (2, 20)]
        assert series["b"] == [(1, 5)]
