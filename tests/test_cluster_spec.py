"""ClusterSpec: the one config object both substrates consume.

Covers validated construction from dicts (every error names the bad
key path), compilation down to the per-layer configs, and building a
running cluster on each substrate from one spec.
"""

import pytest

from repro.sim.cluster import Cluster
from repro.sim.cpu import CpuConfig
from repro.sim.network import NetworkConfig
from repro.spec import CODECS, PROTOCOLS, ClusterSpec, ConfigError
from repro.storage.base import StorageConfig


class TestConstruction:
    def test_defaults(self):
        spec = ClusterSpec()
        assert spec.protocol == "m2paxos"
        assert spec.n_nodes == 3
        assert spec.codec == "binary"
        assert spec.storage is None

    def test_bad_protocol(self):
        with pytest.raises(ConfigError, match="protocol"):
            ClusterSpec(protocol="raft")

    def test_bad_codec(self):
        with pytest.raises(ConfigError, match="codec"):
            ClusterSpec(codec="msgpack")

    def test_bad_n_nodes(self):
        with pytest.raises(ConfigError, match="n_nodes"):
            ClusterSpec(n_nodes=0)

    def test_with_storage_replaces_only_storage(self):
        spec = ClusterSpec(n_nodes=5)
        durable = spec.with_storage(StorageConfig(kind="mem"))
        assert durable.storage.kind == "mem"
        assert durable.n_nodes == 5
        assert spec.storage is None  # original untouched (frozen)


class TestFromDict:
    def test_empty_dict_is_defaults(self):
        spec = ClusterSpec.from_dict({})
        defaults = ClusterSpec()
        # The network default carries a LatencyModel instance without
        # structural equality, so compare the scalar fields.
        assert (spec.protocol, spec.n_nodes, spec.seed, spec.codec) == (
            defaults.protocol,
            defaults.n_nodes,
            defaults.seed,
            defaults.codec,
        )
        assert spec.m2 is None and spec.storage is None

    def test_happy_path_full(self):
        spec = ClusterSpec.from_dict(
            {
                "protocol": "multipaxos",
                "n_nodes": 5,
                "seed": 42,
                "codec": "json",
                "network": {"bandwidth": 1e9, "batching": False},
                "cpu": {"cores": 4, "speed": 2.0},
                "storage": {"kind": "mem", "snapshot_every": 100},
            }
        )
        assert spec.protocol == "multipaxos"
        assert spec.n_nodes == 5
        assert spec.network.bandwidth == 1e9
        assert spec.network.batching is False
        assert spec.cpu.cores == 4
        assert spec.storage.kind == "mem"
        assert spec.storage.snapshot_every == 100

    def test_m2_section(self):
        spec = ClusterSpec.from_dict({"m2": {"batch_wait": 0.002}})
        assert spec.m2.batch_wait == 0.002

    def test_not_a_dict(self):
        with pytest.raises(ConfigError, match="must be a dict"):
            ClusterSpec.from_dict([("n_nodes", 3)])

    def test_unknown_top_level_key_named(self):
        with pytest.raises(ConfigError, match="'protcol'"):
            ClusterSpec.from_dict({"protcol": "m2paxos"})

    def test_unknown_nested_key_named_with_path(self):
        with pytest.raises(ConfigError, match="'network.bandwith'"):
            ClusterSpec.from_dict({"network": {"bandwith": 1e9}})

    def test_non_scalar_fields_rejected_by_path(self):
        with pytest.raises(ConfigError, match="network.latency"):
            ClusterSpec.from_dict({"network": {"latency": 0.0001}})
        with pytest.raises(ConfigError, match="m2.home_hint"):
            ClusterSpec.from_dict({"m2": {"home_hint": "x"}})

    def test_scalar_type_error_names_path(self):
        with pytest.raises(ConfigError, match="n_nodes"):
            ClusterSpec.from_dict({"n_nodes": "three"})
        with pytest.raises(ConfigError, match="cpu.cores"):
            ClusterSpec.from_dict({"cpu": {"cores": "many"}})

    def test_bool_is_not_an_int(self):
        with pytest.raises(ConfigError, match="n_nodes"):
            ClusterSpec.from_dict({"n_nodes": True})

    def test_int_promotes_to_float(self):
        # JSON has no int/float distinction; 2 must satisfy a float field.
        spec = ClusterSpec.from_dict({"cpu": {"speed": 2}})
        assert spec.cpu.speed == 2.0

    def test_capacity_nodes_list_coerced_to_tuple(self):
        spec = ClusterSpec.from_dict(
            {"storage": {"kind": "mem", "capacity_nodes": [0, 2]}}
        )
        assert spec.storage.capacity_nodes == (0, 2)

    def test_capacity_nodes_rejects_non_ints(self):
        with pytest.raises(ConfigError, match="storage.capacity_nodes"):
            ClusterSpec.from_dict(
                {"storage": {"kind": "mem", "capacity_nodes": ["a"]}}
            )

    def test_section_post_init_error_wrapped(self):
        # StorageConfig's own __post_init__ rejects bad kinds; from_dict
        # must surface that as a ConfigError naming the section.
        with pytest.raises(ConfigError, match="storage"):
            ClusterSpec.from_dict({"storage": {"kind": "tape"}})
        with pytest.raises(ConfigError, match="cpu"):
            ClusterSpec.from_dict({"cpu": {"cores": 0}})

    def test_section_must_be_dict(self):
        with pytest.raises(ConfigError, match="network"):
            ClusterSpec.from_dict({"network": "fast"})

    def test_bad_choice_propagates_from_post_init(self):
        with pytest.raises(ConfigError, match="protocol"):
            ClusterSpec.from_dict({"protocol": "raft"})


class TestCompilation:
    def test_sim_cluster_config_carries_fields(self):
        storage = StorageConfig(kind="mem")
        spec = ClusterSpec(
            n_nodes=7,
            seed=9,
            network=NetworkConfig(bandwidth=1e9),
            cpu=CpuConfig(cores=2),
            storage=storage,
        )
        config = spec.sim_cluster_config()
        assert config.n_nodes == 7
        assert config.seed == 9
        assert config.network.bandwidth == 1e9
        assert config.cpu.cores == 2
        assert config.storage is storage

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_protocol_factory_builds_each_protocol(self, protocol):
        spec = ClusterSpec(protocol=protocol)
        proto = spec.protocol_factory()(0, 3)
        assert hasattr(proto, "bind")

    def test_m2_tunables_reach_the_protocol(self):
        from repro.core.protocol import M2PaxosConfig

        spec = ClusterSpec(m2=M2PaxosConfig(batch_wait=0.007))
        proto = spec.protocol_factory()(0, 3)
        assert proto.config.batch_wait == 0.007


class TestClusterFromSpec:
    def test_sim_cluster_runs_from_spec(self):
        from repro.consensus.commands import Command

        spec = ClusterSpec(n_nodes=3, seed=5)
        cluster = Cluster.from_spec(spec)
        for i in range(6):
            cluster.loop.schedule_at(
                0.001 * (i + 1),
                lambda i=i: cluster.propose(
                    i % 3, Command.make(i % 3, i, (f"obj-{i % 2}",))
                ),
            )
        cluster.run_until(2.0)
        cluster.check_consistency()
        assert all(len(n.delivered) == 6 for n in cluster.nodes)

    def test_storage_from_spec_is_attached(self):
        spec = ClusterSpec(storage=StorageConfig(kind="mem"))
        cluster = Cluster.from_spec(spec)
        assert all(n.env.storage.durable for n in cluster.nodes)
        cluster.close_storage()

    def test_codec_choices_exported(self):
        assert set(CODECS) == {"binary", "json"}
