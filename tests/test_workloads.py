"""Unit tests for the synthetic and TPC-C workload generators and the
open-loop client model."""

import random

import pytest

from repro.core.protocol import M2Paxos
from repro.sim.cluster import Cluster, ClusterConfig
from repro.workloads.client import ClientConfig, OpenLoopClients
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from repro.workloads.tpcc import MIX, TpccConfig, TpccWorkload


class TestSyntheticWorkload:
    def make(self, n_nodes=5, **kwargs):
        return SyntheticWorkload(
            SyntheticConfig(**kwargs), n_nodes, random.Random(42)
        )

    def test_full_locality_stays_in_local_set(self):
        wl = self.make(locality=1.0, local_set_size=10)
        for _ in range(200):
            command = wl.next_command(2)
            (obj,) = command.ls
            assert obj.startswith("o2.")

    def test_zero_locality_spreads_uniformly(self):
        wl = self.make(locality=0.0, local_set_size=10)
        owners = set()
        for _ in range(500):
            (obj,) = wl.next_command(2).ls
            owners.add(obj.split(".")[0])
        assert len(owners) == 5  # commands hit every node's objects

    def test_intermediate_locality_fraction(self):
        wl = self.make(locality=0.7, local_set_size=100)
        local = sum(
            1
            for _ in range(2000)
            if next(iter(wl.next_command(1).ls)).startswith("o1.")
        )
        # 70% explicit locality + ~1/5 of the uniform remainder.
        expected = 0.7 + 0.3 / 5
        assert abs(local / 2000 - expected) < 0.05

    def test_complex_commands_access_two_objects(self):
        wl = self.make(complex_fraction=1.0, local_set_size=1000)
        sizes = {len(wl.next_command(0).ls) for _ in range(100)}
        assert sizes <= {1, 2}  # 1 only when both picks collide
        assert 2 in sizes

    def test_sequence_numbers_unique_per_node(self):
        wl = self.make()
        cids = {wl.next_command(1).cid for _ in range(100)}
        assert len(cids) == 100

    def test_payload_bytes_honoured(self):
        wl = self.make()
        assert wl.next_command(0).payload_bytes == 16

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(locality=1.5)
        with pytest.raises(ValueError):
            SyntheticConfig(local_set_size=0)
        with pytest.raises(ValueError):
            SyntheticConfig(complex_fraction=-0.1)


class TestTpccWorkload:
    def make(self, n_nodes=3, **kwargs):
        return TpccWorkload(TpccConfig(**kwargs), n_nodes, random.Random(7))

    def test_warehouse_count_is_ten_per_node(self):
        wl = self.make(n_nodes=9)
        assert wl.n_warehouses == 90

    def test_home_node_round_robin(self):
        wl = self.make(n_nodes=3)
        assert [wl.home_node(w) for w in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_local_commands_touch_local_warehouses(self):
        wl = self.make(remote_warehouse_prob=0.0)
        for _ in range(100):
            command = wl.next_command(1)
            warehouses = {
                int(obj[1:].split(".")[0])
                for obj in command.ls
                if obj.startswith("w")
            }
            # The *home* warehouse is local; Payment may add a remote
            # customer and New-Order a remote stock row (per spec).
            assert any(wl.home_node(w) == 1 for w in warehouses)

    def test_transaction_mix_roughly_matches_spec(self):
        wl = self.make()
        # Classify by object-set shape: Delivery touches exactly one
        # warehouse and all ten of its districts (and nothing else).
        deliveries = 0
        total = 4000
        for _ in range(total):
            command = wl.next_command(0)
            districts = sum(1 for obj in command.ls if ".d" in obj)
            others = sum(
                1 for obj in command.ls if ".s" in obj or ".c" in obj
            )
            if districts == 10 and others == 0:
                deliveries += 1
        assert abs(deliveries / total - 0.04) < 0.02

    def test_new_order_touches_stock_rows(self):
        wl = self.make()
        found = False
        for _ in range(200):
            command = wl.next_command(0)
            if any(".s" in obj for obj in command.ls):
                found = True
                stock_lines = sum(1 for obj in command.ls if ".s" in obj)
                assert 1 <= stock_lines <= 15
        assert found

    def test_commands_have_bigger_payloads_than_synthetic(self):
        wl = self.make()
        assert all(wl.next_command(0).payload_bytes > 16 for _ in range(50))

    def test_mix_weights_sum_to_one(self):
        assert abs(sum(w for _name, w in MIX) - 1.0) < 1e-9


class TestOpenLoopClients:
    def test_inflight_cap_respected(self):
        # A cluster that never decides (majority crashed) accumulates
        # in-flight commands only up to the cap.
        cluster = Cluster(
            ClusterConfig(n_nodes=3, seed=0), lambda i, n: M2Paxos()
        )
        cluster.crash(1)
        cluster.crash(2)
        wl = SyntheticWorkload(SyntheticConfig(), 3, random.Random(0))
        clients = OpenLoopClients(
            cluster,
            wl,
            ClientConfig(clients_per_node=8, think_time=0.001, max_inflight_per_node=5),
        )
        cluster.start()
        clients.start()
        cluster.run_for(1.0)
        assert clients._inflight[0] == 5

    def test_think_time_paces_submission(self):
        cluster = Cluster(
            ClusterConfig(n_nodes=3, seed=0), lambda i, n: M2Paxos()
        )
        wl = SyntheticWorkload(SyntheticConfig(), 3, random.Random(0))
        proposed = []
        orig = wl.next_command

        def counting(node):
            command = orig(node)
            proposed.append(command)
            return command

        wl.next_command = counting
        clients = OpenLoopClients(
            cluster,
            wl,
            ClientConfig(
                clients_per_node=1, think_time=0.1, max_inflight_per_node=100
            ),
        )
        cluster.start()
        clients.start()
        cluster.run_for(1.05)
        # 1 client/node, 100 ms think time, ~1 s: about 10 per node.
        per_node = sum(1 for c in proposed if c.proposer == 0)
        assert 8 <= per_node <= 12

    def test_stop_halts_submission(self):
        cluster = Cluster(
            ClusterConfig(n_nodes=3, seed=0), lambda i, n: M2Paxos()
        )
        wl = SyntheticWorkload(SyntheticConfig(), 3, random.Random(0))
        clients = OpenLoopClients(
            cluster, wl, ClientConfig(clients_per_node=1, think_time=0.01)
        )
        cluster.start()
        clients.start()
        cluster.run_for(0.1)
        clients.stop()
        before = len(cluster.nodes[0].delivered)
        cluster.run_for(1.0)
        after_settle = len(cluster.nodes[0].delivered)
        cluster.run_for(1.0)
        assert len(cluster.nodes[0].delivered) == after_settle
        assert after_settle >= before
