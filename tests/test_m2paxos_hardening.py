"""Tests for the protocol-hardening mechanisms (DESIGN.md list).

Each test targets one of the decisions that went beyond the paper's
pseudocode, in the smallest scenario that exercises it.
"""

from repro.consensus.commands import Command
from repro.core.messages import Prepare
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.sim.latency import UniformLatency
from repro.sim.network import NetworkConfig

from tests.conftest import assert_all_delivered, make_cluster


def m2(config=None):
    return lambda node_id, n: M2Paxos(config)


class TestUniqueEpochs:
    def test_epochs_striped_by_node_id(self):
        cluster = make_cluster(m2(), n_nodes=5, seed=1)
        for node in range(5):
            protocol = cluster.nodes[node].protocol
            for floor in (0, 3, 17, 100):
                epoch = protocol._next_epoch(floor)
                assert epoch > floor
                assert epoch % 5 == node

    def test_two_nodes_never_share_an_epoch(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=2)
        a = {cluster.nodes[0].protocol._next_epoch(f) for f in range(50)}
        b = {cluster.nodes[1].protocol._next_epoch(f) for f in range(50)}
        assert not (a & b)


class TestObjectLeadership:
    def test_prepare_dethrones_owner_for_future_instances(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=3)
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        assert cluster.nodes[0].protocol._is_current_owner("x")
        # Node 1 acquires x; after its round, node 0 must notice it is
        # no longer the current owner.
        cluster.propose(1, Command.make(1, 0, ["x", "y"]))
        cluster.run_for(2.0)
        assert not cluster.nodes[0].protocol._is_current_owner("x")
        assert cluster.nodes[1].protocol._is_current_owner("x")

    def test_home_hint_gives_epoch_zero_fast_path(self):
        config = M2PaxosConfig(home_hint=lambda name: int(name[-1]) % 3)
        cluster = make_cluster(m2(config), n_nodes=3, seed=4)
        # obj0 is homed at node 0: its very first command skips the
        # acquisition phase entirely.
        cluster.propose(0, Command.make(0, 0, ["obj0"]))
        cluster.run_for(1.0)
        stats = cluster.nodes[0].protocol.stats
        assert stats["fast_path"] == 1
        assert stats["acquisitions"] == 0
        assert len(cluster.delivered(2)) == 1

    def test_home_hint_single_owner_forwards(self):
        config = M2PaxosConfig(home_hint=lambda name: 0)
        cluster = make_cluster(m2(config), n_nodes=3, seed=5)
        # Both objects are homed at node 0: node 1 forwards rather than
        # acquiring -- the hint behaves exactly like learned ownership.
        cluster.propose(1, Command.make(1, 0, ["k", "k2"]))
        cluster.run_for(2.0)
        cluster.check_consistency()
        assert len(cluster.delivered(0)) == 1
        assert cluster.nodes[1].protocol.stats["forwarded"] == 1
        assert cluster.nodes[0].protocol.state.obj("k").owner == 0

    def test_home_hint_overridable_by_acquisition(self):
        # Objects homed at *different* nodes: the proposer must acquire,
        # overriding both epoch-0 assignments.
        config = M2PaxosConfig(home_hint=lambda name: 0 if name == "k" else 1)
        cluster = make_cluster(m2(config), n_nodes=3, seed=5)
        cluster.propose(2, Command.make(2, 0, ["k", "j"]))
        cluster.run_for(2.0)
        cluster.check_consistency()
        assert len(cluster.delivered(0)) == 1
        assert cluster.nodes[0].protocol.state.obj("k").owner == 2
        assert cluster.nodes[0].protocol.state.obj("j").owner == 2


class TestPositionPinning:
    def test_retry_keeps_assigned_positions(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=6)
        protocol = cluster.nodes[0].protocol
        command = Command.make(0, 0, ["p", "q"])
        cluster.propose(0, command)
        cluster.run_for(0.001)  # assignment made, round in flight
        first = dict(protocol._assigned[command.cid])
        eps = protocol._pick_instances(command)  # a retry's pick
        again = dict(protocol._assigned[command.cid])
        assert first == again
        assert {(l, p) for l, (p, _e) in again.items()} == set(eps)

    def test_dead_round_reassigns(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=7)
        protocol = cluster.nodes[0].protocol
        command = Command.make(0, 0, ["p"])
        cluster.propose(0, command)
        cluster.run_for(0.001)
        (position, _epoch) = protocol._assigned[command.cid]["p"]
        # Burn the assigned position with a different command.
        other = Command.make(1, 0, ["p"])
        protocol.delivery.record_decision("p", position, other, now=0.0)
        eps = protocol._pick_instances(command)
        ((_l, new_position),) = list(eps)
        assert new_position != position


class TestScopedRounds:
    def test_gap_recovery_does_not_dethrone_owner(self):
        config = M2PaxosConfig(gap_timeout=0.1, gap_check_period=0.05)
        cluster = make_cluster(m2(config), n_nodes=3, seed=8)
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        owner_epoch = cluster.nodes[0].protocol.state.obj("x").owner_epoch
        # Manufacture a hole: reserve a position that will never decide,
        # then decide one above it so the gap checker fires.
        protocol = cluster.nodes[1].protocol
        protocol.state.obj("x").observe_position(5)
        cluster.run_for(2.0)  # recoveries run (as no-ops)
        # Node 0 is still the current owner at its original epoch.
        obj = cluster.nodes[0].protocol.state.obj("x")
        assert obj.owner == 0
        assert obj.owner_epoch == owner_epoch
        cluster.propose(0, Command.make(0, 1, ["x"]))
        cluster.run_for(1.0)
        assert cluster.nodes[0].protocol.stats["acquisitions"] == 1  # initial only

    def test_scoped_prepare_does_not_raise_object_promise(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=9)
        protocol = cluster.nodes[1].protocol
        before = protocol.state.obj("z").promised
        protocol.on_message(
            2, Prepare(req=99, eps={("z", 1): 100}, scoped=True)
        )
        assert protocol.state.obj("z").promised == before
        assert protocol.state.inst(("z", 1)).rnd == 100


class TestTailReporting:
    def test_acquisition_learns_previous_owners_tail(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=10)
        for seq in range(5):
            cluster.propose(0, Command.make(0, seq, ["t"]))
        cluster.run_for(1.0)
        # Node 1 has decided everything; wipe its view of positions 2-5
        # to force phase 1 to resupply them... instead, simply verify the
        # reply-side helper reports the full active tail.
        reporter = cluster.nodes[2].protocol
        tail = reporter.state.positions_with_activity("t", 1)
        assert tail == [1, 2, 3, 4, 5]
        assert reporter.state.positions_with_activity("t", 4) == [4, 5]

    def test_ownership_change_mid_pipeline_stays_safe(self):
        # The scenario that motivated tail reporting: an owner pipelines
        # many commands; another node steals the object mid-stream; no
        # instance may end up decided with two different commands.
        cluster = make_cluster(
            m2(),
            n_nodes=5,
            seed=11,
            network=NetworkConfig(latency=UniformLatency(1e-4, 3e-4)),
        )
        commands = [Command.make(0, s, ["s"]) for s in range(20)]
        for c in commands[:10]:
            cluster.propose(0, c)
        cluster.run_for(0.0005)  # pipeline in flight
        thief = Command.make(1, 0, ["s", "s2"])
        cluster.propose(1, thief)
        for c in commands[10:]:
            cluster.propose(0, c)
        cluster.run_for(10.0)
        cluster.check_consistency()
        assert_all_delivered(cluster, commands + [thief])


class TestDeadRounds:
    def test_round_is_dead_detection(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=12)
        protocol = cluster.nodes[0].protocol
        command = Command.make(0, 0, ["a", "b"])
        other = Command.make(1, 0, ["a"])
        fins = {("a", 1), ("b", 1)}
        assert not protocol._round_is_dead(command, fins)
        protocol.delivery.record_decision("a", 1, other, now=0.0)
        assert protocol._round_is_dead(command, fins)
        # Decided with the command itself is not death.
        protocol.delivery.record_decision("b", 1, command, now=0.0)
        assert protocol._round_is_dead(command, fins)  # 'a' still foreign


class TestTailPromise:
    def test_prepare_promises_every_reported_instance(self):
        # Regression: a reported (tail) instance must have its rnd
        # raised by the prepare, or a lower-ballot scoped round could
        # slip in between the report and the hole-filling accept,
        # deciding a second value there.
        cluster = make_cluster(m2(), n_nodes=3, seed=20)
        acceptor = cluster.nodes[1].protocol
        # Manufacture tail activity above the requested position.
        for position in (2, 3, 5):
            acceptor.state.inst(("q", position))
        cluster.run_for(0.01)
        epoch = 50 * 3  # a striped epoch of node 0
        acceptor.on_message(0, Prepare(req=77, eps={("q", 1): epoch}))
        for position in (1, 2, 3, 5):
            assert acceptor.state.inst(("q", position)).rnd >= epoch, position

    def test_noop_vs_noop_decision_is_not_a_violation(self):
        from repro.consensus.commands import make_noop

        cluster = make_cluster(m2(), n_nodes=3, seed=21)
        protocol = cluster.nodes[0].protocol
        protocol._decide(("q", 1), make_noop("q", 0, 1))
        protocol._decide(("q", 1), make_noop("q", 2, 9))  # different id: ok
        with __import__("pytest").raises(Exception):
            protocol._decide(("q", 1), Command.make(1, 0, ["q"]))
