"""Unit tests for commands, conflicts, C-structs, and no-ops."""

import pytest

from repro.consensus.commands import Command, CStruct, conflict, make_noop


def cmd(proposer, seq, objs, **kwargs):
    return Command.make(proposer, seq, objs, **kwargs)


class TestCommand:
    def test_conflict_iff_shared_object(self):
        a = cmd(0, 0, ["x", "y"])
        b = cmd(1, 0, ["y", "z"])
        c = cmd(2, 0, ["w"])
        assert a.conflicts(b)
        assert not a.conflicts(c)
        assert conflict(a, b)

    def test_conflict_is_symmetric(self):
        a = cmd(0, 0, ["x"])
        b = cmd(1, 0, ["x"])
        assert a.conflicts(b) == b.conflicts(a)

    def test_empty_ls_rejected(self):
        with pytest.raises(ValueError):
            Command(cid=(0, 0), ls=frozenset())

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            cmd(0, 0, ["x"], payload_bytes=-1)

    def test_size_grows_with_objects_and_payload(self):
        small = cmd(0, 0, ["x"], payload_bytes=16)
        more_objects = cmd(0, 1, ["x", "y", "z"], payload_bytes=16)
        bigger_payload = cmd(0, 2, ["x"], payload_bytes=160)
        assert more_objects.size_bytes() > small.size_bytes()
        assert bigger_payload.size_bytes() > small.size_bytes()

    def test_hashable_and_equal_by_value(self):
        a = cmd(0, 0, ["x"])
        b = cmd(0, 0, ["x"])
        assert a == b
        assert hash(a) == hash(b)

    def test_make_sets_proposer(self):
        c = cmd(3, 7, ["x"])
        assert c.proposer == 3
        assert c.cid == (3, 7)


class TestNoop:
    def test_noop_flags_and_single_object(self):
        noop = make_noop("x", node_id=2, seq=5)
        assert noop.noop
        assert noop.ls == frozenset({"x"})
        assert noop.payload_bytes == 0

    def test_noop_ids_disjoint_from_real_commands(self):
        noop = make_noop("x", node_id=2, seq=0)
        real = cmd(2, 0, ["x"])
        assert noop.cid != real.cid
        assert noop.cid[1] < 0

    def test_distinct_noops_have_distinct_ids(self):
        assert make_noop("x", 1, 1).cid != make_noop("x", 1, 2).cid


class TestCStruct:
    def test_append_and_membership(self):
        cs = CStruct()
        a = cmd(0, 0, ["x"])
        cs.append(a)
        assert a in cs
        assert len(cs) == 1

    def test_duplicate_append_rejected(self):
        cs = CStruct()
        a = cmd(0, 0, ["x"])
        cs.append(a)
        with pytest.raises(ValueError):
            cs.append(a)

    def test_restricted_to_preserves_order(self):
        cs = CStruct()
        a = cmd(0, 0, ["x"])
        b = cmd(0, 1, ["y"])
        c = cmd(0, 2, ["x", "y"])
        for command in (a, b, c):
            cs.append(command)
        assert cs.restricted_to("x") == [a, c]
        assert cs.restricted_to("y") == [b, c]

    def test_compatible_when_commuting_reordered(self):
        a = cmd(0, 0, ["x"])
        b = cmd(1, 0, ["y"])
        cs1, cs2 = CStruct(), CStruct()
        cs1.append(a)
        cs1.append(b)
        cs2.append(b)
        cs2.append(a)
        assert cs1.is_prefix_compatible(cs2)

    def test_incompatible_when_conflicting_reordered(self):
        a = cmd(0, 0, ["x"])
        b = cmd(1, 0, ["x"])
        cs1, cs2 = CStruct(), CStruct()
        cs1.append(a)
        cs1.append(b)
        cs2.append(b)
        cs2.append(a)
        assert not cs1.is_prefix_compatible(cs2)

    def test_prefix_is_compatible(self):
        a = cmd(0, 0, ["x"])
        b = cmd(1, 0, ["x"])
        cs1, cs2 = CStruct(), CStruct()
        cs1.append(a)
        cs2.append(a)
        cs2.append(b)
        assert cs1.is_prefix_compatible(cs2)
        assert cs2.is_prefix_compatible(cs1)

    def test_empty_cstructs_compatible(self):
        assert CStruct().is_prefix_compatible(CStruct())
