"""High-jitter (heavily reordering) network chaos tests.

Links are FIFO individually, but with one-way delays spread over 50x,
messages between different node pairs interleave almost arbitrarily --
the asynchronous-network model of the paper's Section III.
"""

import pytest

from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.sim.latency import UniformLatency
from repro.sim.network import NetworkConfig

from tests.conftest import (
    PROTOCOL_FACTORIES,
    assert_all_delivered,
    make_cluster,
    run_workload,
)

CHAOS = NetworkConfig(latency=UniformLatency(100e-6, 5e-3))


class TestM2PaxosUnderJitter:
    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_contention(self, seed):
        config = M2PaxosConfig(gap_timeout=0.3, gap_check_period=0.15)
        cluster = make_cluster(
            lambda i, n: M2Paxos(config), n_nodes=5, seed=seed, network=CHAOS
        )
        proposed = run_workload(
            cluster,
            6,
            lambda rng, node, r: (
                [rng.choice("abc")] if rng.random() < 0.5 else rng.sample("abc", 2)
            ),
            spacing=0.004,
            settle=40.0,
            seed=seed,
        )
        assert_all_delivered(cluster, proposed)


class TestAllProtocolsUnderJitter:
    @pytest.mark.parametrize("name", sorted(PROTOCOL_FACTORIES))
    def test_partitioned_workload(self, name):
        cluster = make_cluster(
            PROTOCOL_FACTORIES[name], n_nodes=5, seed=3, network=CHAOS
        )
        proposed = run_workload(
            cluster,
            5,
            lambda rng, node, r: [f"o{node}"],
            spacing=0.01,
            settle=30.0,
        )
        assert_all_delivered(cluster, proposed)
