"""Tests for classic Paxos and the adaptive M2Paxos/Multi-Paxos switcher."""


from repro.consensus.commands import Command
from repro.consensus.paxos import ClassicPaxos
from repro.core.switcher import AdaptiveSwitcher, SwitcherConfig, MODE_M2, MODE_MP

from tests.conftest import assert_all_delivered, make_cluster, run_workload


def px(config=None):
    return lambda node_id, n: ClassicPaxos(config)


def switcher(config=None):
    return lambda node_id, n: AdaptiveSwitcher(config)


class TestClassicPaxos:
    def test_single_proposer_decides(self):
        cluster = make_cluster(px(), n_nodes=3, seed=1)
        cluster.propose(1, Command.make(1, 0, ["x"]))
        cluster.run_for(1.0)
        cluster.check_consistency()
        assert all(len(cluster.delivered(i)) == 1 for i in range(3))

    def test_total_order_across_nodes(self):
        cluster = make_cluster(px(), n_nodes=5, seed=2)
        proposed = run_workload(
            cluster, 8, lambda rng, node, r: ["hot"], spacing=0.01, settle=10.0
        )
        assert_all_delivered(cluster, proposed)
        orders = {tuple(c.cid for c in cluster.delivered(i)) for i in range(5)}
        assert len(orders) == 1

    def test_duelling_proposers_converge(self):
        cluster = make_cluster(px(), n_nodes=3, seed=3)
        a = Command.make(0, 0, ["x"])
        b = Command.make(1, 0, ["x"])
        cluster.propose(0, a)
        cluster.propose(1, b)  # same instant: ballot duel on slot 1
        cluster.run_for(10.0)
        cluster.check_consistency()
        cids = {c.cid for c in cluster.delivered(2)}
        assert cids == {a.cid, b.cid}

    def test_four_delay_latency(self):
        from repro.sim.latency import UniformLatency
        from repro.sim.network import NetworkConfig

        latency = 0.01
        cluster = make_cluster(
            px(),
            n_nodes=3,
            seed=4,
            network=NetworkConfig(latency=UniformLatency(latency, latency)),
        )
        times = {}
        for node in cluster.nodes:
            node.deliver_listeners.append(
                lambda nid, c, t: times.setdefault((nid, c.cid), t)
            )
        t0 = cluster.loop.now
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        elapsed = times[(0, (0, 0))] - t0
        # prepare + promise + accept + accepted = 4 one-way delays.
        assert 4 * latency <= elapsed < 6 * latency

    def test_minority_crash_liveness(self):
        cluster = make_cluster(px(), n_nodes=5, seed=5)
        cluster.crash(3)
        cluster.crash(4)
        proposed = run_workload(
            cluster, 4, lambda rng, node, r: ["x"], spacing=0.02, settle=10.0
        )
        cluster.check_consistency()
        live = [c for c in proposed if c.proposer < 3]
        delivered = {c.cid for c in cluster.delivered(0)}
        assert {c.cid for c in live} <= delivered


class TestAdaptiveSwitcher:
    def test_partitionable_workload_stays_in_m2(self):
        cluster = make_cluster(switcher(), n_nodes=3, seed=6)
        proposed = run_workload(
            cluster, 10, lambda rng, node, r: [f"o{node}"], spacing=0.01, settle=5.0
        )
        assert_all_delivered(cluster, proposed)
        assert all(
            cluster.nodes[i].protocol.mode == MODE_M2 for i in range(3)
        )
        assert cluster.nodes[0].protocol.stats["switches"] == 0

    def test_adverse_workload_switches_to_multipaxos(self):
        config = SwitcherConfig(window=10, to_fallback=0.3, check_period=0.1)
        cluster = make_cluster(switcher(config), n_nodes=3, seed=7)
        # Ring-overlapping pairs: node i always touches its own object
        # and its neighbour's, so no ownership assignment is ever stable
        # and most proposals need the acquisition path.
        proposed = run_workload(
            cluster,
            15,
            lambda rng, node, r: [f"o{node}", f"o{(node + 1) % 3}"],
            spacing=0.004,
            settle=20.0,
        )
        assert_all_delivered(cluster, proposed)
        assert any(
            cluster.nodes[i].protocol.stats["switches"] > 0 for i in range(3)
        )
        assert all(
            cluster.nodes[i].protocol.mode == MODE_MP for i in range(3)
        )

    def test_all_nodes_switch_at_same_delivery_point(self):
        config = SwitcherConfig(window=10, to_fallback=0.3, check_period=0.1)
        cluster = make_cluster(switcher(config), n_nodes=3, seed=8)
        proposed = run_workload(
            cluster,
            12,
            lambda rng, node, r: rng.sample(["h1", "h2", "h3"], k=2),
            spacing=0.004,
            settle=20.0,
        )
        assert_all_delivered(cluster, proposed)
        modes = {cluster.nodes[i].protocol.mode for i in range(3)}
        assert len(modes) == 1  # nobody is stranded in the old mode

    def test_no_duplicate_deliveries_across_modes(self):
        config = SwitcherConfig(window=8, to_fallback=0.25, check_period=0.1)
        cluster = make_cluster(switcher(config), n_nodes=3, seed=9)
        proposed = run_workload(
            cluster,
            12,
            lambda rng, node, r: rng.sample(["h1", "h2"], k=2),
            spacing=0.004,
            settle=20.0,
        )
        # assert_all_delivered checks per-node exact-set equality, which
        # rules out duplicates even for commands re-proposed in the new
        # mode.
        assert_all_delivered(cluster, proposed)
