"""Adversarial multi-seed stress tests for every protocol.

These are the regression net for the two hardest classes of bug found
while building the repo: (a) split decisions of a multi-object command
across positions chosen at different times (which can knot per-object
delivery orders into an undeliverable cycle) and (b) same-epoch duelling
coordinators.  Each scenario runs over several seeds and asserts both
safety (consistent per-object orders) and liveness (everything proposed
is delivered everywhere).
"""

import pytest

from repro.consensus.epaxos import EPaxos
from repro.consensus.genpaxos import GenPaxos
from repro.consensus.multipaxos import MultiPaxos
from repro.core.protocol import M2Paxos, M2PaxosConfig

from tests.conftest import assert_all_delivered, make_cluster, run_workload

SEEDS = range(6)


def multiobj(rng, node, r):
    return rng.sample(["a", "b", "c", "d"], k=2)


def hot(rng, node, r):
    return ["hot"]


def mixed(rng, node, r):
    if rng.random() < 0.5:
        return [rng.choice("abcd")]
    return rng.sample("abcd", 2)


PICKERS = {"multiobj": multiobj, "hot": hot, "mixed": mixed}


class TestM2PaxosStress:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("scenario", sorted(PICKERS))
    def test_contention(self, scenario, seed):
        config = M2PaxosConfig(gap_timeout=0.2, gap_check_period=0.1)
        cluster = make_cluster(
            lambda i, n: M2Paxos(config), n_nodes=5, seed=seed
        )
        proposed = run_workload(
            cluster, 8, PICKERS[scenario], spacing=0.003, settle=25.0, seed=seed
        )
        assert_all_delivered(cluster, proposed)

    @pytest.mark.parametrize("seed", range(3))
    def test_seven_nodes_mixed(self, seed):
        config = M2PaxosConfig(gap_timeout=0.2, gap_check_period=0.1)
        cluster = make_cluster(
            lambda i, n: M2Paxos(config), n_nodes=7, seed=seed
        )
        proposed = run_workload(
            cluster, 6, mixed, spacing=0.003, settle=25.0, seed=seed
        )
        assert_all_delivered(cluster, proposed)


class TestBaselineStress:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize(
        "factory",
        [
            lambda i, n: MultiPaxos(),
            lambda i, n: GenPaxos(),
            lambda i, n: EPaxos(),
        ],
        ids=["multipaxos", "genpaxos", "epaxos"],
    )
    def test_mixed_contention(self, factory, seed):
        cluster = make_cluster(factory, n_nodes=5, seed=seed)
        proposed = run_workload(
            cluster, 8, mixed, spacing=0.003, settle=25.0, seed=seed
        )
        assert_all_delivered(cluster, proposed)
