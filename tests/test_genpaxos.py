"""Integration tests for the Generalized Paxos baseline."""

from repro.consensus.commands import Command
from repro.consensus.genpaxos import GenPaxos, GenPaxosConfig

from tests.conftest import assert_all_delivered, make_cluster, run_workload


def gp(config=None):
    return lambda node_id, n: GenPaxos(config)


class TestFastRounds:
    def test_partitioned_workload_learns_fast(self):
        cluster = make_cluster(gp(), n_nodes=5, seed=1)
        proposed = run_workload(
            cluster, 10, lambda rng, node, r: [f"o{node}"], settle=5.0
        )
        assert_all_delivered(cluster, proposed)
        leader = cluster.nodes[0].protocol
        assert leader.stats["fast_learned"] == len(proposed)
        assert leader.stats["classic_rounds"] == 0

    def test_commuting_concurrent_proposals_no_collision(self):
        cluster = make_cluster(gp(), n_nodes=5, seed=2)
        a = Command.make(0, 0, ["x"])
        b = Command.make(1, 0, ["y"])
        cluster.propose(0, a)
        cluster.propose(1, b)  # same instant, different objects
        cluster.run_for(2.0)
        cluster.check_consistency()
        assert cluster.nodes[0].protocol.stats["collisions"] == 0
        assert len(cluster.delivered(4)) == 2

    def test_fast_quorum_size_used(self):
        cluster = make_cluster(gp(), n_nodes=7, seed=3)
        assert cluster.nodes[0].protocol.fast_quorum == 5  # floor(14/3)+1

    def test_recovery_quorum_exceeds_majority_for_n7(self):
        cluster = make_cluster(gp(), n_nodes=7, seed=3)
        protocol = cluster.nodes[0].protocol
        assert protocol.recovery_quorum == 5 > protocol.quorum


class TestCollisions:
    def test_conflicting_proposals_resolved_by_leader(self):
        cluster = make_cluster(gp(), n_nodes=5, seed=4)
        proposed = run_workload(
            cluster, 10, lambda rng, node, r: ["hot"], spacing=0.002, settle=10.0
        )
        assert_all_delivered(cluster, proposed)
        leader = cluster.nodes[0].protocol
        assert leader.stats["classic_rounds"] > 0

    def test_multi_object_commands_serialised_via_leader(self):
        cluster = make_cluster(gp(), n_nodes=5, seed=5)
        proposed = run_workload(
            cluster,
            10,
            lambda rng, node, r: rng.sample(["a", "b", "c", "d"], k=2),
            settle=10.0,
        )
        assert_all_delivered(cluster, proposed)

    def test_mixed_single_and_multi_object(self):
        cluster = make_cluster(gp(), n_nodes=5, seed=6)
        proposed = run_workload(
            cluster,
            15,
            lambda rng, node, r: (
                [rng.choice("abcd")] if rng.random() < 0.5 else rng.sample("abcd", 2)
            ),
            settle=15.0,
        )
        assert_all_delivered(cluster, proposed)

    def test_mixed_workload_larger_cluster(self):
        cluster = make_cluster(gp(), n_nodes=9, seed=7)
        proposed = run_workload(
            cluster,
            8,
            lambda rng, node, r: (
                [rng.choice("abcde")] if rng.random() < 0.5 else rng.sample("abcde", 2)
            ),
            settle=15.0,
        )
        assert_all_delivered(cluster, proposed)

    def test_retry_does_not_duplicate_delivery(self):
        config = GenPaxosConfig(retry_timeout=0.05)
        cluster = make_cluster(gp(config), n_nodes=5, seed=8)
        proposed = run_workload(
            cluster, 10, lambda rng, node, r: ["hot"], spacing=0.001, settle=10.0
        )
        assert_all_delivered(cluster, proposed)
        # assert_all_delivered already checks exact set equality per node,
        # which rules out duplicates.
