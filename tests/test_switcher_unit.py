"""Unit tests for the adaptive switcher's decision machinery."""

from repro.consensus.commands import Command
from repro.core.switcher import (
    AdaptiveSwitcher,
    SwitcherConfig,
    SwitchVote,
    MODE_M2,
    MODE_MP,
)

from tests.conftest import make_cluster


def build(config=None, n=3, seed=0):
    cluster = make_cluster(
        lambda i, nn: AdaptiveSwitcher(config), n_nodes=n, seed=seed
    )
    return cluster


class TestConflictRate:
    def test_empty_window_is_zero(self):
        cluster = build()
        assert cluster.nodes[0].protocol.conflict_rate() == 0.0

    def test_rate_reflects_samples(self):
        cluster = build()
        protocol = cluster.nodes[0].protocol
        now = protocol.env.now()
        protocol._samples.extend([(now, 1), (now, 1), (now, 0), (now, 0)])
        assert protocol.conflict_rate() == 0.5

    def test_stale_samples_expire(self):
        cluster = build()
        protocol = cluster.nodes[0].protocol
        protocol._samples.append((protocol.env.now(), 1))
        cluster.run_for(protocol.SAMPLE_TTL + 1.0)
        assert protocol.conflict_rate() == 0.0


class TestVoting:
    def test_non_coordinator_ignores_votes(self):
        cluster = build()
        protocol = cluster.nodes[1].protocol
        protocol.on_message(2, SwitchVote(want=MODE_MP, conflict_rate=0.9))
        cluster.run_for(1.0)
        assert protocol.mode == MODE_M2
        assert protocol.stats["switches"] == 0

    def test_vote_for_current_mode_is_noop(self):
        cluster = build()
        coordinator = cluster.nodes[0].protocol
        coordinator.on_message(1, SwitchVote(want=MODE_M2, conflict_rate=0.9))
        cluster.run_for(1.0)
        assert coordinator.stats["switches"] == 0

    def test_coordinator_vote_triggers_consensus_marker(self):
        cluster = build()
        coordinator = cluster.nodes[0].protocol
        coordinator.on_message(1, SwitchVote(want=MODE_MP, conflict_rate=0.9))
        cluster.run_for(2.0)
        # Every node switched, through the delivered marker.
        assert all(
            cluster.nodes[i].protocol.mode == MODE_MP for i in range(3)
        )
        # The marker itself is not delivered to the application.
        assert all(len(cluster.delivered(i)) == 0 for i in range(3))

    def test_duplicate_votes_produce_single_switch(self):
        cluster = build()
        coordinator = cluster.nodes[0].protocol
        coordinator.on_message(1, SwitchVote(want=MODE_MP, conflict_rate=0.9))
        coordinator.on_message(2, SwitchVote(want=MODE_MP, conflict_rate=0.8))
        cluster.run_for(2.0)
        assert all(
            cluster.nodes[i].protocol.stats["switches"] == 1 for i in range(3)
        )


class TestCrossModeDelivery:
    def test_commands_of_both_modes_interleave_correctly(self):
        cluster = build(SwitcherConfig(window=4, to_fallback=0.9))
        # Deliver a few in M2 mode.
        for seq in range(3):
            cluster.propose(0, Command.make(0, seq, ["x"]))
            cluster.run_for(0.2)
        # Force the switch.
        cluster.nodes[0].protocol.on_message(
            1, SwitchVote(want=MODE_MP, conflict_rate=1.0)
        )
        cluster.run_for(2.0)
        for seq in range(3, 6):
            cluster.propose(0, Command.make(0, seq, ["x"]))
            cluster.run_for(0.2)
        cluster.run_for(2.0)
        cluster.check_consistency()
        for node in range(3):
            assert [c.cid for c in cluster.delivered(node)] == [
                (0, s) for s in range(6)
            ]
