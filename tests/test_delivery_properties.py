"""Property-based tests for the C-struct delivery engine.

The engine's contract: feed per-instance decisions in ANY order and the
delivered sequence (a) contains each non-no-op command at most once,
(b) respects every object's position order, and (c) is invariant to the
order decisions arrive in, whenever the decision set is deliverable at
all.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.consensus.commands import Command, make_noop
from repro.core.delivery import DeliveryEngine
from repro.core.state import M2PaxosState

OBJECTS = ["a", "b", "c"]


def build_engine():
    state = M2PaxosState()
    delivered = []
    engine = DeliveryEngine(state, delivered.append)
    return state, engine, delivered


@st.composite
def decision_sets(draw):
    """A consistent set of decisions: commands packed contiguously into
    per-object logs, multi-object commands aligned by construction (one
    atomic round each), with occasional no-ops."""
    n_commands = draw(st.integers(1, 10))
    positions = {obj: 0 for obj in OBJECTS}
    decisions = []  # (obj, position, command)
    for seq in range(n_commands):
        objs = draw(
            st.sets(st.sampled_from(OBJECTS), min_size=1, max_size=2)
        )
        if draw(st.booleans()) and len(objs) == 1:
            command = make_noop(next(iter(objs)), 0, seq)
        else:
            command = Command.make(0, seq, objs)
        for obj in sorted(command.ls):
            positions[obj] += 1
            decisions.append((obj, positions[obj], command))
    return decisions


@settings(max_examples=120, deadline=None)
@given(decisions=decision_sets(), seed=st.integers(0, 2**16))
def test_delivery_respects_positions_any_arrival_order(decisions, seed):
    state, engine, delivered = build_engine()
    shuffled = list(decisions)
    random.Random(seed).shuffle(shuffled)
    for obj, position, command in shuffled:
        engine.record_decision(obj, position, command, now=0.0)
        engine.pump(dirty=[obj])
    engine.pump()

    # (a) no duplicates, no no-ops delivered.
    cids = [c.cid for c in delivered]
    assert len(cids) == len(set(cids))
    assert all(not c.noop for c in delivered)

    # (b) per-object delivered order matches decided position order.
    for obj in OBJECTS:
        expected = [
            command.cid
            for (o, position, command) in sorted(
                decisions, key=lambda d: d[1]
            )
            if o == obj and not command.noop
        ]
        got = [c.cid for c in delivered if obj in c.ls]
        assert got == expected

    # (c) with contiguous aligned decisions, everything deliverable.
    non_noop = {c.cid for (_o, _p, c) in decisions if not c.noop}
    assert set(cids) == non_noop


@settings(max_examples=60, deadline=None)
@given(decisions=decision_sets(), seed_a=st.integers(0, 999), seed_b=st.integers(0, 999))
def test_arrival_order_invariance(decisions, seed_a, seed_b):
    outcomes = []
    for seed in (seed_a, seed_b):
        _state, engine, delivered = build_engine()
        shuffled = list(decisions)
        random.Random(seed).shuffle(shuffled)
        for obj, position, command in shuffled:
            engine.record_decision(obj, position, command, now=0.0)
        engine.pump()
        # Compare per-object restrictions (commuting commands may
        # interleave differently, conflicting ones may not).
        outcomes.append(
            {
                obj: tuple(c.cid for c in delivered if obj in c.ls)
                for obj in OBJECTS
            }
        )
    assert outcomes[0] == outcomes[1]
