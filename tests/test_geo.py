"""Tests for the geo/WAN deployment: workload, bench arms, telemetry
labels, and the zone-boundary chaos scenario.

The full three-arm ``bench_geo`` with CI floors runs under
``repro perf``; here a single shrunk arm per interesting configuration
keeps the suite fast while still proving the moving parts: migrations
happen, per-zone telemetry labels are populated, and the migration arm
beats the pinned arm on remote-region latency even at smoke scale.
"""

import random

import pytest

from repro.bench.geo import GEO_ZONES, HOME_NODE, GeoZipfWorkload, run_geo_arm
from repro.bench.perf import PerfConfig
from repro.chaos import run_scenario
from repro.chaos.scenarios import by_name
from repro.core.policy import ZoneAffinityPolicy
from repro.core.quorum import FlexibleQuorums


def _mini_config() -> PerfConfig:
    # Small but big enough for the hot objects to earn their migration
    # during warmup and for the measured window to register decides in
    # every zone.
    return PerfConfig(geo_warmup=0.4, geo_duration=0.3)


class TestGeoZipfWorkload:
    def test_deterministic_per_seed(self):
        def stream(seed):
            wl = GeoZipfWorkload(GEO_ZONES, random.Random(seed))
            return [
                (node, tuple(wl.next_command(node).ls))
                for _ in range(50)
                for node in range(5)
            ]

        assert stream(7) == stream(7)
        assert stream(7) != stream(8)

    def test_affinity_keeps_traffic_zone_local(self):
        wl = GeoZipfWorkload(GEO_ZONES, random.Random(3), affinity=0.9)
        local = total = 0
        for _ in range(400):
            for node in range(5):
                (obj,) = wl.next_command(node).ls
                total += 1
                if obj.startswith(f"z{GEO_ZONES[node]}."):
                    local += 1
        assert local / total > 0.8

    def test_pool_namespaces_per_zone(self):
        wl = GeoZipfWorkload(GEO_ZONES, random.Random(1), objects_per_zone=4)
        names = wl.all_objects()
        assert len(names) == 12
        assert all(name[1] in "012" for name in names)


@pytest.fixture(scope="module")
def pinned_arm():
    return run_geo_arm(_mini_config())


@pytest.fixture(scope="module")
def affinity_flex_arm():
    return run_geo_arm(
        _mini_config(),
        policy=lambda: ZoneAffinityPolicy(GEO_ZONES),
        quorum=FlexibleQuorums(prepare=4, accept=2),
    )


class TestGeoArms:
    def test_pinned_arm_never_migrates(self, pinned_arm):
        assert pinned_arm["migrations"] == 0
        # Remote regions pay WAN forwarding against the home region.
        assert pinned_arm["remote_p50_ms"] > pinned_arm["home_p50_ms"]

    def test_per_zone_telemetry_labels_populated(self, pinned_arm):
        per_zone = pinned_arm["per_zone"]
        assert set(per_zone) == {"0", "1", "2"}
        for row in per_zone.values():
            assert row["decides"] > 0
            assert row["p50_ms"] > 0

    def test_affinity_flex_arm_migrates_and_wins(
        self, pinned_arm, affinity_flex_arm
    ):
        assert affinity_flex_arm["migrations"] > 0
        # After migration + intra-zone accept quorums, the remote
        # regions' p50 must beat static home placement outright.
        assert (
            affinity_flex_arm["remote_p50_ms"] < pinned_arm["remote_p50_ms"]
        )

    def test_all_zones_keep_deciding_after_migration(self, affinity_flex_arm):
        for row in affinity_flex_arm["per_zone"].values():
            assert row["decides"] > 0

    def test_cross_zone_accounting_populated(self, pinned_arm):
        # The network layer attributes WAN traffic: with 3 zones some
        # but not all messages cross a boundary.  (Message *share* is
        # not asserted to drop under migration: Decide broadcasts still
        # go cluster-wide, so the win shows up in latency, not count.)
        assert 0 < pinned_arm["cross_zone_messages"] < pinned_arm["messages_sent"]
        assert 0 < pinned_arm["cross_zone_bytes"]


class TestGeoChaosScenario:
    def test_zone_partition_scenario_safe_and_deterministic(self):
        scenario = by_name("geo-zone-partition")
        assert scenario.zones == GEO_ZONES
        first = run_scenario(scenario)
        assert first.ok, first.report.violations
        second = run_scenario(scenario)
        assert second.fingerprint == first.fingerprint

    def test_zone_affinity_scenarios_require_zones(self):
        from dataclasses import replace

        scenario = replace(
            by_name("geo-zone-partition"), zones=None, zone_latency=None
        )
        with pytest.raises(ValueError, match="require zones"):
            run_scenario(scenario)


def test_home_node_is_in_home_zone():
    assert GEO_ZONES[HOME_NODE] == GEO_ZONES[0]
