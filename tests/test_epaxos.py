"""Integration tests for the EPaxos baseline."""

from repro.consensus.commands import Command
from repro.consensus.epaxos import EPaxos, EPaxosConfig

from tests.conftest import assert_all_delivered, make_cluster, run_workload


def ep(config=None):
    return lambda node_id, n: EPaxos(config)


class TestFastPath:
    def test_non_conflicting_commands_commit_fast(self):
        cluster = make_cluster(ep(), n_nodes=5, seed=1)
        proposed = run_workload(
            cluster, 10, lambda rng, node, r: [f"o{node}"], settle=3.0
        )
        assert_all_delivered(cluster, proposed)
        total_fast = sum(
            cluster.nodes[i].protocol.stats["fast_path"] for i in range(5)
        )
        assert total_fast == len(proposed)

    def test_sequential_conflicts_still_fast(self):
        # Conflicting commands proposed far apart in time: deps settle,
        # attributes agree, fast path holds.
        cluster = make_cluster(ep(), n_nodes=5, seed=2)
        for seq in range(10):
            cluster.propose(0, Command.make(0, seq, ["x"]))
            cluster.run_for(0.1)
        cluster.run_for(2.0)
        cluster.check_consistency()
        assert cluster.nodes[0].protocol.stats["fast_path"] == 10


class TestSlowPath:
    def test_concurrent_conflicts_take_slow_path(self):
        cluster = make_cluster(ep(), n_nodes=5, seed=3)
        proposed = run_workload(
            cluster, 10, lambda rng, node, r: ["hot"], spacing=0.0005, settle=5.0
        )
        assert_all_delivered(cluster, proposed)
        total_slow = sum(
            cluster.nodes[i].protocol.stats["slow_path"] for i in range(5)
        )
        assert total_slow > 0

    def test_conflicting_order_agrees_across_nodes(self):
        cluster = make_cluster(ep(), n_nodes=5, seed=4)
        proposed = run_workload(
            cluster, 20, lambda rng, node, r: ["hot"], spacing=0.001, settle=5.0
        )
        assert_all_delivered(cluster, proposed)
        orders = {
            tuple(c.cid for c in cluster.delivered(i)) for i in range(5)
        }
        # All commands conflict, so the execution order must be total.
        assert len(orders) == 1

    def test_multi_object_commands(self):
        cluster = make_cluster(ep(), n_nodes=5, seed=5)
        proposed = run_workload(
            cluster,
            10,
            lambda rng, node, r: rng.sample(["a", "b", "c", "d"], k=2),
            settle=5.0,
        )
        assert_all_delivered(cluster, proposed)

    def test_dependency_cycle_broken_by_seq(self):
        # Two conflicting commands proposed simultaneously at two nodes
        # can each end up in the other's deps (an SCC); execution must
        # still agree everywhere.
        cluster = make_cluster(ep(), n_nodes=3, seed=6)
        a = Command.make(0, 0, ["x"])
        b = Command.make(1, 0, ["x"])
        cluster.propose(0, a)
        cluster.propose(1, b)
        cluster.run_for(3.0)
        cluster.check_consistency()
        orders = {tuple(c.cid for c in cluster.delivered(i)) for i in range(3)}
        assert len(orders) == 1
        assert len(next(iter(orders))) == 2


class TestRecovery:
    def test_leader_crash_after_accept_recovers(self):
        config = EPaxosConfig(commit_timeout=0.2)
        cluster = make_cluster(ep(config), n_nodes=5, seed=7)
        # Warm up: one command commits normally.
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        # Crash the command leader right after it broadcasts PreAccept:
        # acceptors have preaccepted, nobody committed.
        cluster.propose(0, Command.make(0, 1, ["x"]))
        cluster.run_for(0.0008)
        cluster.crash(0)
        cluster.run_for(5.0)
        cluster.check_consistency()
        survivors = [{c.cid for c in cluster.delivered(i)} for i in range(1, 5)]
        for cids in survivors:
            assert (0, 1) in cids

    def test_no_recovery_when_disabled(self):
        config = EPaxosConfig(commit_timeout=0.1, enable_recovery=False)
        cluster = make_cluster(ep(config), n_nodes=5, seed=8)
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(0.0008)
        cluster.crash(0)
        cluster.run_for(2.0)
        assert all(len(cluster.delivered(i)) == 0 for i in range(1, 5))


class TestQuorums:
    def test_fast_quorum_grows_past_five_nodes(self):
        small = make_cluster(ep(), n_nodes=5, seed=9)
        large = make_cluster(ep(), n_nodes=11, seed=9)
        assert small.nodes[0].protocol.fast_quorum == 3  # == majority
        assert large.nodes[0].protocol.fast_quorum == 8  # > majority (6)

    def test_dependency_messages_grow_with_conflicts(self):
        from repro.consensus.epaxos import EpPreAccept

        lean = EpPreAccept(
            instance=(0, 1),
            ballot=0,
            command=Command.make(0, 0, ["x"]),
            seq=1,
            deps=frozenset(),
        )
        fat = EpPreAccept(
            instance=(0, 2),
            ballot=0,
            command=Command.make(0, 1, ["x"]),
            seq=9,
            deps=frozenset((i, i) for i in range(20)),
        )
        assert fat.size_bytes() > lean.size_bytes()
